//! Umbrella crate for the reproduction of *"Exact Synthesis Based on
//! Semi-Tensor Product Circuit Solver"* (Pan & Chu, DATE 2023).
//!
//! Re-exports every workspace crate under one namespace so the examples
//! and integration tests can depend on a single package:
//!
//! * [`matrix`] — semi-tensor product, logic matrices, canonical forms.
//! * [`tt`] — truth tables, NPN classification, DSD workload generators.
//! * [`chain`] — Boolean chains of 2-input LUT nodes.
//! * [`fence`] — Boolean fence topology families and DAG generation.
//! * [`network`] — multi-output 2-LUT networks, cut enumeration, and
//!   exact-synthesis rewriting.
//! * [`sat`] — the CDCL SAT solver used by the CNF baselines.
//! * [`store`] — the shared, persistent NPN-class solution store.
//! * [`synth`] — the paper's STP-based exact synthesis engine.
//! * [`serve`] — the `stpd` synthesis daemon: wire protocol, admission
//!   control, deadlines, graceful drain.
//! * [`baselines`] — the BMS / FEN / ABC-like CNF baselines.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use stp_baselines as baselines;
pub use stp_chain as chain;
pub use stp_fence as fence;
pub use stp_matrix as matrix;
pub use stp_network as network;
pub use stp_sat as sat;
pub use stp_serve as serve;
pub use stp_store as store;
pub use stp_synth as synth;
pub use stp_tt as tt;
