//! `stpsynth` — command-line STP exact synthesis.
//!
//! ```text
//! Usage: stpsynth <hex-truth-table> <num-vars> [options]
//!
//! Options:
//!   --all              print every optimum chain (default: first only)
//!   --engine <name>    stp | stp-npn | bms | fen | abc   (default stp)
//!   --timeout <secs>   per-instance timeout (default 60)
//!   --verilog          emit structural Verilog for the chosen chain
//!   --dot              emit Graphviz DOT for the chosen chain
//! ```
//!
//! Example: `stpsynth 8ff8 4 --all` reproduces the paper's Example 7.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use stp_repro::baselines::{abc_synthesize, bms_synthesize, fen_synthesize, BaselineConfig};
use stp_repro::synth::{synthesize, synthesize_npn, SynthesisConfig};
use stp_repro::tt::TruthTable;

fn usage() -> ExitCode {
    eprintln!(
        "usage: stpsynth <hex-truth-table> <num-vars> [--all] [--engine stp|stp-npn|bms|fen|abc] \
         [--timeout <secs>] [--verilog] [--dot]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    let hex = &args[0];
    let Ok(num_vars) = args[1].parse::<usize>() else {
        return usage();
    };
    let spec = match TruthTable::from_hex(num_vars, hex.trim_start_matches("0x")) {
        Ok(tt) => tt,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut engine = "stp".to_string();
    let mut all = false;
    let mut timeout = 60.0f64;
    let mut emit_verilog = false;
    let mut emit_dot = false;
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--verilog" => emit_verilog = true,
            "--dot" => emit_dot = true,
            "--engine" => engine = it.next().cloned().unwrap_or_default(),
            "--timeout" => {
                timeout = it.next().and_then(|v| v.parse().ok()).unwrap_or(timeout);
            }
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }
    let start = Instant::now();
    let deadline = Some(start + Duration::from_secs_f64(timeout));

    let chains = match engine.as_str() {
        "stp" | "stp-npn" => {
            let config = SynthesisConfig { deadline, ..SynthesisConfig::default() };
            let result = if engine == "stp" {
                synthesize(&spec, &config)
            } else {
                synthesize_npn(&spec, &config)
            };
            match result {
                Ok(r) => {
                    println!(
                        "optimum: {} gates, {} solution(s), {:.3} s",
                        r.gate_count,
                        r.chains.len(),
                        start.elapsed().as_secs_f64()
                    );
                    r.chains
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "bms" | "fen" | "abc" => {
            let config = BaselineConfig { deadline, ..BaselineConfig::default() };
            let result = match engine.as_str() {
                "bms" => bms_synthesize(&spec, &config),
                "fen" => fen_synthesize(&spec, &config),
                _ => abc_synthesize(&spec, &config),
            };
            match result {
                Ok(r) => {
                    println!(
                        "optimum: {} gates (single solution), {:.3} s",
                        r.gate_count,
                        start.elapsed().as_secs_f64()
                    );
                    vec![r.chain]
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        other => {
            eprintln!("unknown engine {other}");
            return usage();
        }
    };

    let shown: &[_] = if all { &chains } else { &chains[..1.min(chains.len())] };
    for (i, chain) in shown.iter().enumerate() {
        println!("\nsolution {}:", i + 1);
        print!("{chain}");
        if emit_verilog {
            println!("{}", chain.to_verilog(&format!("sol{}", i + 1)));
        }
        if emit_dot {
            println!("{}", chain.to_dot(&format!("sol{}", i + 1)));
        }
    }
    ExitCode::SUCCESS
}
