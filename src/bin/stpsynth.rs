//! `stpsynth` — command-line STP exact synthesis.
//!
//! ```text
//! Usage: stpsynth <hex-truth-table>... [options]
//!        stpsynth <hex-truth-table> <num-vars> [options]   (legacy)
//!
//! Passing several truth tables synthesizes them as one shared
//! multi-output chain. The arity of each table is inferred from its hex
//! digit count (1 digit = 2 vars, 2 = 3, 4 = 4, ...) unless --vars is
//! given. The legacy two-argument form (second argument an integer
//! <= 16, no --vars) still reads `<hex> <num-vars>`.
//!
//! Options:
//!   --all              print every optimum chain (default: first only)
//!   --vars <n>         common input arity of all truth tables
//!   --objective <o>    gates | depth | profile:<tt2hex>=<w>,...[,default=<w>]
//!                      (default gates; depth/profile require --engine
//!                      stp without a store)
//!   --engine <name>    stp | stp-npn | bms | fen | abc   (default stp)
//!   --timeout <secs>   per-instance timeout (default 60)
//!   --jobs <n>         STP worker threads; 0 = one per CPU (default
//!                      from STP_JOBS, else 1; baselines ignore it)
//!   --verilog          emit structural Verilog for the chosen chain
//!   --dot              emit Graphviz DOT for the chosen chain
//!   --store <path>     load the NPN solution store from <path> (when it
//!                      exists) and persist it back after the run; the
//!                      stp/stp-npn engines answer repeated NPN classes
//!                      from the store
//!   --warm-npn4        pre-synthesize every NPN class of arity <= 4
//!                      into the store before solving (implies a store;
//!                      combine with --store to persist the warmed set)
//!   --log <level>      off|error|warn|info|debug|trace (default info,
//!                      or the STP_LOG environment variable)
//!   --stats            append a JSON RunReport as the final stdout line
//!   --trace-json <p>   write Chrome-trace-style span events to <p>
//!   --profile          aggregate the span profile tree, print it to
//!                      stderr and embed it in the --stats RunReport
//!   --profile-folded <p>
//!                      also write flamegraph folded stacks to <p>
//! ```
//!
//! Example: `stpsynth 8ff8 4 --all` reproduces the paper's Example 7.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use stp_repro::baselines::{abc_synthesize, bms_synthesize, fen_synthesize, BaselineConfig};
use stp_repro::store::Store;
use stp_repro::synth::{
    synthesize_multi, synthesize_multi_npn_with_store, synthesize_npn, synthesize_npn_with_store,
    synthesize_with_objective, warm_npn4, MultiSpec, SynthesisConfig,
};
use stp_repro::tt::TruthTable;
use stp_telemetry::{Json, RunReport};

// With --features alloc-profile, heap traffic is attributed to the
// innermost open profile span (an extra bytes column under --profile).
#[cfg(feature = "alloc-profile")]
stp_telemetry::install_alloc_profiler!();

fn usage() -> ExitCode {
    eprintln!(
        "usage: stpsynth <hex-truth-table>... [--vars <n>] \
         [--objective gates|depth|profile:<weights>] [--all] \
         [--engine stp|stp-npn|bms|fen|abc] \
         [--timeout <secs>] [--jobs <n>] [--verilog] [--dot] [--store <path>] [--warm-npn4] \
         [--log <level>] [--stats] [--trace-json <path>] [--profile] [--profile-folded <path>]\n\
         (legacy form: stpsynth <hex-truth-table> <num-vars> [options])"
    );
    ExitCode::FAILURE
}

/// Infers the input arity of a bare hex truth table: `d` hex digits
/// hold `4·d` bits, which must be a power of two.
fn infer_num_vars(raw: &str, hex: &str) -> Result<usize, ExitCode> {
    let bits = hex.len().saturating_mul(4);
    if hex.is_empty() || !bits.is_power_of_two() {
        return Err(flag_error(format!(
            "truth table `{raw}` has {} hex digit(s); cannot infer its arity (pass --vars <n>)",
            hex.len()
        )));
    }
    Ok(bits.trailing_zeros() as usize)
}

/// A malformed or missing flag value: report it and exit 2, so scripts
/// can tell usage errors from synthesis failures (exit 1).
fn flag_error(message: String) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

/// Parses the value of a `--flag <value>` pair, failing loudly: a
/// missing or unparsable value is an error, never a silent fallback to
/// the default.
fn parse_flag_value<T: std::str::FromStr>(
    flag: &str,
    value: Option<&String>,
    expects: &str,
) -> Result<T, ExitCode> {
    let Some(raw) = value else {
        return Err(flag_error(format!("{flag} expects {expects}")));
    };
    raw.parse().map_err(|_| flag_error(format!("{flag} expects {expects}, got `{raw}`")))
}

/// Opens the store rooted at `path` — snapshot plus crash journal (see
/// `Store::open`) — or a plain in-memory store when no path was given.
/// Returns `None` (and prints the error) on a corrupt file.
fn open_store(path: Option<&str>) -> Option<Store> {
    match path {
        Some(p) => match Store::open(p) {
            Ok(store) => {
                if !store.is_empty() {
                    eprintln!("store: loaded {} classes from {p}", store.len());
                }
                Some(store)
            }
            Err(e) => {
                eprintln!("error loading store: {e}");
                None
            }
        },
        None => Some(Store::new()),
    }
}

/// Persists the store back to `path` when one was requested.
fn save_store(store: &Store, path: Option<&str>) -> bool {
    let Some(p) = path else { return true };
    match store.save(p) {
        Ok(()) => {
            eprintln!("store: saved {} classes to {p}", store.len());
            true
        }
        Err(e) => {
            eprintln!("error saving store {p}: {e}");
            false
        }
    }
}

/// Emits the RunReport (when requested) and flushes the trace and
/// profile sinks. Called on every exit path so `--stats` reports
/// failures too; under `--profile` the aggregated span tree is printed
/// to stderr and embedded in the report.
fn finish(
    stats: bool,
    args: &[String],
    outcome: &str,
    start: Instant,
    extra: Vec<(String, Json)>,
    folded: Option<&str>,
) {
    let profile = stp_telemetry::profile::finish(folded.map(std::path::Path::new));
    if let Some(tree) = &profile {
        eprint!("{}", tree.render_text());
    }
    if stats {
        let snapshot = stp_telemetry::metrics_global().snapshot();
        let mut report = RunReport::from_snapshot(
            "stpsynth",
            args,
            outcome,
            start.elapsed().as_secs_f64(),
            &snapshot,
        );
        for (key, value) in extra {
            report = report.with_extra(&key, value);
        }
        if let Some(tree) = profile {
            report = report.with_profile(tree);
        }
        println!("{}", report.to_json_string());
    }
    stp_telemetry::trace::finish();
}

fn main() -> ExitCode {
    stp_telemetry::init_from_env();
    // A malformed STP_JOBS is a usage error, diagnosed before any other
    // argument handling — not a silent fall-back to sequential.
    let env_jobs = match stp_repro::synth::jobs_from_env_checked() {
        Ok(jobs) => jobs,
        Err(message) => return flag_error(message),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut engine = "stp".to_string();
    let mut all = false;
    let mut timeout = 60.0f64;
    let mut jobs = env_jobs;
    let mut emit_verilog = false;
    let mut emit_dot = false;
    let mut stats = false;
    let mut store_path: Option<String> = None;
    let mut warm = false;
    let mut folded: Option<String> = None;
    let mut positionals: Vec<String> = Vec::new();
    let mut vars: Option<usize> = None;
    let mut objective_spec = "gates".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--vars" => {
                vars = match parse_flag_value(a, it.next(), "an input count") {
                    Ok(v) => Some(v),
                    Err(code) => return code,
                };
            }
            "--objective" => {
                let Some(spec) = it.next() else {
                    return flag_error(
                        "--objective expects gates|depth|profile:<weights>".to_string(),
                    );
                };
                objective_spec = spec.clone();
            }
            "--verilog" => emit_verilog = true,
            "--dot" => emit_dot = true,
            "--stats" => stats = true,
            "--warm-npn4" => warm = true,
            "--profile" => stp_telemetry::profile::set_enabled(true),
            "--profile-folded" => {
                let Some(path) = it.next() else {
                    return flag_error("--profile-folded expects a path".to_string());
                };
                folded = Some(path.clone());
                stp_telemetry::profile::set_enabled(true);
            }
            "--store" => {
                let Some(path) = it.next() else {
                    eprintln!("--store expects a path");
                    return usage();
                };
                store_path = Some(path.clone());
            }
            "--engine" => {
                let Some(name) = it.next() else {
                    return flag_error("--engine expects stp|stp-npn|bms|fen|abc".to_string());
                };
                engine = name.clone();
            }
            "--timeout" => {
                timeout = match parse_flag_value(a, it.next(), "a number of seconds") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
            }
            "--jobs" => {
                jobs = match parse_flag_value(a, it.next(), "a thread count (0 = one per CPU)") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
            }
            "--log" => {
                let Some(level) = it.next().and_then(|v| stp_telemetry::Level::parse(v)) else {
                    eprintln!("--log expects off|error|warn|info|debug|trace");
                    return usage();
                };
                stp_telemetry::set_level(level);
            }
            "--trace-json" => {
                let Some(path) = it.next() else {
                    eprintln!("--trace-json expects a path");
                    return usage();
                };
                if let Err(e) = stp_telemetry::trace::install_writer(path.as_ref()) {
                    eprintln!("error opening trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            other if other.starts_with('-') && other.len() > 1 => {
                eprintln!("unknown option {other}");
                return usage();
            }
            _ => positionals.push(a.clone()),
        }
    }
    if positionals.is_empty() {
        return usage();
    }

    // The legacy form `stpsynth <hex> <num-vars>` is kept alive: exactly
    // two positionals whose second parses as an arity and no --vars.
    let legacy_vars = (positionals.len() == 2 && vars.is_none())
        .then(|| positionals[1].parse::<usize>().ok().filter(|n| *n <= 16))
        .flatten();
    let specs: Vec<TruthTable> = if let Some(num_vars) = legacy_vars {
        let hex = &positionals[0];
        match TruthTable::from_hex(num_vars, hex.trim_start_matches("0x")) {
            Ok(tt) => vec![tt],
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut specs = Vec::with_capacity(positionals.len());
        for raw in &positionals {
            let hex = raw.trim_start_matches("0x");
            let num_vars = match vars {
                Some(n) => n,
                None => match infer_num_vars(raw, hex) {
                    Ok(n) => n,
                    Err(code) => return code,
                },
            };
            match TruthTable::from_hex(num_vars, hex) {
                Ok(tt) => specs.push(tt),
                Err(e) => return flag_error(format!("truth table `{raw}`: {e}")),
            }
        }
        specs
    };

    let objective = match stp_repro::synth::objective_from_spec(&objective_spec) {
        Ok(objective) => objective,
        Err(message) => return flag_error(format!("--objective: {message}")),
    };
    if !objective.is_gate_count() {
        // The store and the baselines cache/report gate-count optima
        // only; other objectives run the direct STP engine.
        if engine != "stp" {
            return flag_error(format!(
                "--objective {objective_spec} requires --engine stp (got {engine})"
            ));
        }
        if store_path.is_some() || warm {
            return flag_error(format!(
                "--objective {objective_spec} cannot use a store (it caches gate-count optima)"
            ));
        }
    }
    if specs.len() > 1 && matches!(engine.as_str(), "bms" | "fen" | "abc") {
        return flag_error(format!(
            "--engine {engine} synthesizes a single output; pass one truth table"
        ));
    }
    let start = Instant::now();
    let deadline = Some(start + Duration::from_secs_f64(timeout));

    // The NPN solution store: loaded from disk when --store names an
    // existing file, pre-warmed with every arity-<=4 class when
    // --warm-npn4 is set, and persisted back after the run.
    let store = if store_path.is_some() || warm {
        let Some(store) = open_store(store_path.as_deref()) else {
            return ExitCode::FAILURE;
        };
        if warm {
            let config = SynthesisConfig { jobs, ..SynthesisConfig::default() };
            match warm_npn4(&store, &config, Some(Duration::from_secs_f64(timeout))) {
                Ok(r) => eprintln!(
                    "store: warmed {} classes ({} solved, {} cached, {} exhausted)",
                    r.classes, r.solved, r.cached, r.exhausted
                ),
                Err(e) => {
                    eprintln!("error warming store: {e}");
                    return ExitCode::FAILURE;
                }
            }
            // Persist immediately so the warm work survives a failed
            // instance below.
            if !save_store(&store, store_path.as_deref()) {
                return ExitCode::FAILURE;
            }
        }
        Some(store)
    } else {
        None
    };

    let (chains, gate_count) = if specs.len() > 1 {
        if !matches!(engine.as_str(), "stp" | "stp-npn") {
            eprintln!("unknown engine {engine}");
            return usage();
        }
        let multi = match MultiSpec::new(specs.clone()) {
            Ok(multi) => multi,
            Err(e) => return flag_error(format!("truth tables: {e}")),
        };
        let config = SynthesisConfig { deadline, jobs, ..SynthesisConfig::default() };
        let result = if store.is_some() || engine == "stp-npn" {
            // Through the multi-output NPN class store (gate-count
            // objective — the one the store caches); stp-npn without
            // --store canonicalizes against a throwaway store.
            let fresh;
            let backing = match &store {
                Some(store) => store,
                None => {
                    fresh = Store::new();
                    &fresh
                }
            };
            synthesize_multi_npn_with_store(&multi, &config, backing).map(|chain| {
                let gates = chain.num_gates();
                println!(
                    "optimum: {} gates shared across {} outputs, {:.3} s",
                    gates,
                    specs.len(),
                    start.elapsed().as_secs_f64()
                );
                (vec![chain], gates)
            })
        } else {
            synthesize_multi(&multi, objective.as_ref(), &config).map(|r| {
                let gates = r.chain.num_gates();
                println!(
                    "optimum: {} gates shared across {} outputs ({} saved vs per-output sum), \
                     {:.3} s",
                    gates,
                    specs.len(),
                    r.gates_saved,
                    start.elapsed().as_secs_f64()
                );
                (vec![r.chain], gates)
            })
        };
        match result {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("error: {e}");
                finish(stats, &args, &format!("error: {e}"), start, Vec::new(), folded.as_deref());
                return ExitCode::FAILURE;
            }
        }
    } else {
        let spec = &specs[0];
        match engine.as_str() {
            "stp" | "stp-npn" => {
                let config = SynthesisConfig { deadline, jobs, ..SynthesisConfig::default() };
                let result = match &store {
                    Some(store) => synthesize_npn_with_store(spec, &config, store),
                    None if engine == "stp" => {
                        synthesize_with_objective(spec, objective.as_ref(), &config)
                    }
                    None => synthesize_npn(spec, &config),
                };
                match result {
                    Ok(r) => {
                        println!(
                            "optimum: {} gates, {} solution(s), {:.3} s",
                            r.gate_count,
                            r.chains.len(),
                            start.elapsed().as_secs_f64()
                        );
                        (r.chains, r.gate_count)
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        finish(
                            stats,
                            &args,
                            &format!("error: {e}"),
                            start,
                            Vec::new(),
                            folded.as_deref(),
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "bms" | "fen" | "abc" => {
                let config = BaselineConfig { deadline, ..BaselineConfig::default() };
                let result = match engine.as_str() {
                    "bms" => bms_synthesize(spec, &config),
                    "fen" => fen_synthesize(spec, &config),
                    _ => abc_synthesize(spec, &config),
                };
                match result {
                    Ok(r) => {
                        println!(
                            "optimum: {} gates (single solution), {:.3} s",
                            r.gate_count,
                            start.elapsed().as_secs_f64()
                        );
                        let gates = r.gate_count;
                        (vec![r.chain], gates)
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        finish(
                            stats,
                            &args,
                            &format!("error: {e}"),
                            start,
                            Vec::new(),
                            folded.as_deref(),
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown engine {other}");
                return usage();
            }
        }
    };

    if let Some(store) = &store {
        if !save_store(store, store_path.as_deref()) {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "store: {} hits, {} misses, {} trivial",
            store.hits(),
            store.misses(),
            store.trivial_hits()
        );
    }

    let shown: &[_] = if all { &chains } else { &chains[..1.min(chains.len())] };
    for (i, chain) in shown.iter().enumerate() {
        println!("\nsolution {}:", i + 1);
        print!("{chain}");
        if emit_verilog {
            println!("{}", chain.to_verilog(&format!("sol{}", i + 1)));
        }
        if emit_dot {
            println!("{}", chain.to_dot(&format!("sol{}", i + 1)));
        }
    }
    finish(
        stats,
        &args,
        "ok",
        start,
        vec![
            ("gate_count".to_string(), Json::UInt(gate_count as u64)),
            ("num_solutions".to_string(), Json::UInt(chains.len() as u64)),
            ("outputs".to_string(), Json::UInt(specs.len() as u64)),
        ],
        folded.as_deref(),
    );
    ExitCode::SUCCESS
}
