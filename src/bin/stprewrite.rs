//! `stprewrite` — optimize a BLIF network with exact-synthesis
//! rewriting.
//!
//! ```text
//! Usage: stprewrite <input.blif> [-o <output.blif>] [--passes <n>]
//! ```
//!
//! Reads a 2-LUT BLIF network, rewrites it by replacing 4-cut cones
//! with STP-exact-synthesis optima (cached per NPN class), verifies
//! functional equivalence by exhaustive simulation when the input count
//! allows it, and writes the optimized BLIF.

use std::process::ExitCode;

use stp_repro::network::{rewrite, Network, RewriteConfig, SynthesisCache};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: stprewrite <input.blif> [-o <output.blif>] [--passes <n>]");
        return ExitCode::FAILURE;
    }
    let input = &args[0];
    let mut output: Option<String> = None;
    let mut config = RewriteConfig::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "--passes" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.max_passes = v;
                }
            }
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let net = match Network::from_blif(&text) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error parsing {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let checkable = net.num_inputs() <= 16;
    let before = if checkable { net.simulate_outputs().ok() } else { None };
    let mut cache = SynthesisCache::new();
    let result = match rewrite(&net, &config, &mut cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rewriting failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(before) = before {
        match result.network.simulate_outputs() {
            Ok(after) if after == before => eprintln!("equivalence: verified exhaustively"),
            Ok(_) => {
                eprintln!("equivalence check FAILED — refusing to write output");
                return ExitCode::FAILURE;
            }
            Err(e) => eprintln!("equivalence check skipped: {e}"),
        }
    } else {
        eprintln!("equivalence check skipped: more than 16 inputs");
    }
    eprintln!(
        "gates: {} -> {} ({} replacements, {} passes; {} classes synthesized, {} cache hits)",
        result.gates_before,
        result.gates_after,
        result.replacements.len(),
        result.passes,
        cache.misses(),
        cache.hits()
    );
    let blif = result.network.to_blif("rewritten");
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, blif) {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{blif}"),
    }
    ExitCode::SUCCESS
}
