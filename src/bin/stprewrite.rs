//! `stprewrite` — optimize a BLIF network with exact-synthesis
//! rewriting.
//!
//! ```text
//! Usage: stprewrite <input.blif> [-o <output.blif>] [--passes <n>]
//!                   [--jobs <n>] [--store <path>] [--warm-npn4]
//!                   [--log <level>] [--stats] [--trace-json <path>]
//!                   [--profile] [--profile-folded <path>]
//! ```
//!
//! Reads a 2-LUT BLIF network, rewrites it by replacing 4-cut cones
//! with STP-exact-synthesis optima (cached per NPN class), verifies
//! functional equivalence by exhaustive simulation when the input count
//! allows it, and writes the optimized BLIF.
//!
//! `--store <path>` loads the persistent NPN solution store from
//! `<path>` (when it exists) and saves it back afterwards, so every
//! rewrite run shares one store; `--warm-npn4` pre-synthesizes all NPN
//! classes of arity ≤ 4 first — a warmed store answers every 4-cut
//! lookup with zero synthesis calls. `--stats` appends a JSON
//! [`RunReport`](stp_telemetry::RunReport) as the final stdout line;
//! `--trace-json` records span events; `--log` sets the stderr
//! diagnostic level (also via `STP_LOG`). `--profile` aggregates the
//! span profile tree over the run, prints it to stderr and embeds it
//! in the `--stats` report; `--profile-folded <path>` also writes
//! flamegraph-compatible folded stacks.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use stp_repro::network::{rewrite, Network, RewriteConfig, SynthesisCache};
use stp_repro::store::Store;
use stp_repro::synth::{warm_npn4, SynthesisConfig};
use stp_telemetry::{Json, RunReport};

// With --features alloc-profile, heap traffic is attributed to the
// innermost open profile span (an extra bytes column under --profile).
#[cfg(feature = "alloc-profile")]
stp_telemetry::install_alloc_profiler!();

fn usage() -> ExitCode {
    eprintln!(
        "usage: stprewrite <input.blif> [-o <output.blif>] [--passes <n>] [--jobs <n>] \
         [--store <path>] [--warm-npn4] [--log <level>] [--stats] [--trace-json <path>] \
         [--profile] [--profile-folded <path>]"
    );
    ExitCode::FAILURE
}

/// A malformed or missing flag value: report it and exit 2, so scripts
/// can tell usage errors from rewrite failures (exit 1).
fn flag_error(message: String) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

/// Parses the value of a `--flag <value>` pair, failing loudly: a
/// missing or unparsable value is an error, never a silent fallback to
/// the default.
fn parse_flag_value<T: std::str::FromStr>(
    flag: &str,
    value: Option<&String>,
    expects: &str,
) -> Result<T, ExitCode> {
    let Some(raw) = value else {
        return Err(flag_error(format!("{flag} expects {expects}")));
    };
    raw.parse().map_err(|_| flag_error(format!("{flag} expects {expects}, got `{raw}`")))
}

/// Emits the RunReport (when requested) and flushes the trace and
/// profile sinks; under `--profile` the aggregated span tree is
/// printed to stderr and embedded in the report.
fn finish(
    stats: bool,
    args: &[String],
    outcome: &str,
    start: Instant,
    extra: Vec<(String, Json)>,
    folded: Option<&str>,
) {
    let profile = stp_telemetry::profile::finish(folded.map(std::path::Path::new));
    if let Some(tree) = &profile {
        eprint!("{}", tree.render_text());
    }
    if stats {
        let snapshot = stp_telemetry::metrics_global().snapshot();
        let mut report = RunReport::from_snapshot(
            "stprewrite",
            args,
            outcome,
            start.elapsed().as_secs_f64(),
            &snapshot,
        );
        for (key, value) in extra {
            report = report.with_extra(&key, value);
        }
        if let Some(tree) = profile {
            report = report.with_profile(tree);
        }
        println!("{}", report.to_json_string());
    }
    stp_telemetry::trace::finish();
}

fn main() -> ExitCode {
    stp_telemetry::init_from_env();
    // A malformed STP_JOBS is a usage error, diagnosed before any other
    // argument handling — not a silent fall-back to sequential (the
    // value feeds `RewriteConfig::default()`).
    if let Err(message) = stp_repro::synth::jobs_from_env_checked() {
        return flag_error(message);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let input = &args[0];
    let mut output: Option<String> = None;
    let mut config = RewriteConfig::default();
    let mut stats = false;
    let mut store_path: Option<String> = None;
    let mut warm = false;
    let mut folded: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "--warm-npn4" => warm = true,
            "--profile" => stp_telemetry::profile::set_enabled(true),
            "--profile-folded" => {
                let Some(path) = it.next() else {
                    return flag_error("--profile-folded expects a path".to_string());
                };
                folded = Some(path.clone());
                stp_telemetry::profile::set_enabled(true);
            }
            "--store" => {
                let Some(path) = it.next() else {
                    eprintln!("--store expects a path");
                    return usage();
                };
                store_path = Some(path.clone());
            }
            "--passes" => {
                config.max_passes = match parse_flag_value(a, it.next(), "a pass count") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
            }
            "--jobs" => {
                config.jobs =
                    match parse_flag_value(a, it.next(), "a thread count (0 = one per CPU)") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
            }
            "--stats" => stats = true,
            "--log" => {
                let Some(level) = it.next().and_then(|v| stp_telemetry::Level::parse(v)) else {
                    eprintln!("--log expects off|error|warn|info|debug|trace");
                    return usage();
                };
                stp_telemetry::set_level(level);
            }
            "--trace-json" => {
                let Some(path) = it.next() else {
                    eprintln!("--trace-json expects a path");
                    return usage();
                };
                if let Err(e) = stp_telemetry::trace::install_writer(path.as_ref()) {
                    eprintln!("error opening trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }
    let start = Instant::now();
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let net = match Network::from_blif(&text) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error parsing {input}: {e}");
            finish(
                stats,
                &args,
                &format!("parse error: {e}"),
                start,
                Vec::new(),
                folded.as_deref(),
            );
            return ExitCode::FAILURE;
        }
    };
    // The NPN solution store: opened with its crash journal when
    // --store names a path (snapshot loaded and journal replayed when
    // present), optionally pre-warmed, persisted back after the run.
    // Without the flags the cache still routes through a private
    // in-memory store.
    let store = match &store_path {
        Some(p) => match Store::open(p) {
            Ok(store) => {
                if !store.is_empty() {
                    eprintln!("store: loaded {} classes from {p}", store.len());
                }
                Arc::new(store)
            }
            Err(e) => {
                eprintln!("error loading store: {e}");
                finish(
                    stats,
                    &args,
                    &format!("store error: {e}"),
                    start,
                    Vec::new(),
                    folded.as_deref(),
                );
                return ExitCode::FAILURE;
            }
        },
        None => Arc::new(Store::new()),
    };
    if warm {
        let synth_config = SynthesisConfig { jobs: config.jobs, ..SynthesisConfig::default() };
        match warm_npn4(&store, &synth_config, Some(config.synthesis_budget)) {
            Ok(r) => eprintln!(
                "store: warmed {} classes ({} solved, {} cached, {} exhausted)",
                r.classes, r.solved, r.cached, r.exhausted
            ),
            Err(e) => {
                eprintln!("error warming store: {e}");
                finish(
                    stats,
                    &args,
                    &format!("store error: {e}"),
                    start,
                    Vec::new(),
                    folded.as_deref(),
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let checkable = net.num_inputs() <= 16;
    let before = if checkable { net.simulate_outputs().ok() } else { None };
    let cache = SynthesisCache::with_store(Arc::clone(&store));
    let result = match rewrite(&net, &config, &cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rewriting failed: {e}");
            finish(stats, &args, &format!("error: {e}"), start, Vec::new(), folded.as_deref());
            return ExitCode::FAILURE;
        }
    };
    if let Some(before) = before {
        match result.network.simulate_outputs() {
            Ok(after) if after == before => eprintln!("equivalence: verified exhaustively"),
            Ok(_) => {
                eprintln!("equivalence check FAILED — refusing to write output");
                finish(
                    stats,
                    &args,
                    "equivalence check failed",
                    start,
                    Vec::new(),
                    folded.as_deref(),
                );
                return ExitCode::FAILURE;
            }
            Err(e) => eprintln!("equivalence check skipped: {e}"),
        }
    } else {
        eprintln!("equivalence check skipped: more than 16 inputs");
    }
    eprintln!(
        "gates: {} -> {} ({} replacements, {} passes; {} classes synthesized, {} cache hits)",
        result.gates_before,
        result.gates_after,
        result.replacements.len(),
        result.passes,
        cache.misses(),
        cache.hits()
    );
    if let Some(p) = &store_path {
        match store.save(p) {
            Ok(()) => eprintln!("store: saved {} classes to {p}", store.len()),
            Err(e) => {
                eprintln!("error saving store {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let blif = result.network.to_blif("rewritten");
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, blif) {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{blif}"),
    }
    finish(
        stats,
        &args,
        "ok",
        start,
        vec![
            ("gates_before".to_string(), Json::UInt(result.gates_before as u64)),
            ("gates_after".to_string(), Json::UInt(result.gates_after as u64)),
            ("replacements".to_string(), Json::UInt(result.replacements.len() as u64)),
            ("passes".to_string(), Json::UInt(result.passes as u64)),
        ],
        folded.as_deref(),
    );
    ExitCode::SUCCESS
}
