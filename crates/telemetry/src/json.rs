//! A hand-rolled JSON value type, serializer, and parser.
//!
//! The workspace is dependency-free by construction (the build
//! environment is offline), so run reports and trace events serialize
//! through this module instead of serde. The subset is full JSON minus
//! exotic number forms: integers are kept exact through `u64`, other
//! numbers go through `f64`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, serialized without a decimal point.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on serialization.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem and
    /// its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no NaN/Inf; null is the least-wrong spelling.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's reports; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if !is_float && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: "invalid number".to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_and_reparses() {
        let doc = Json::obj(vec![
            ("tool", Json::Str("stpsynth".into())),
            ("wall_s", Json::Num(0.125)),
            ("counters", Json::obj(vec![("fence.shapes_generated", Json::UInt(42))])),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("tool").unwrap().as_str(), Some("stpsynth"));
        assert_eq!(
            back.get("counters").unwrap().get("fence.shapes_generated").unwrap().as_u64(),
            Some(42)
        );
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into()).to_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&s).unwrap(), Json::Str("a\"b\\c\nd\te\u{1}".into()));
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = u64::MAX - 1;
        let text = Json::UInt(v).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v));
    }

    #[test]
    fn parses_nested_documents() {
        let back = Json::parse(r#" {"a": [1, 2.5, {"b": null}], "c": false} "#).unwrap();
        assert_eq!(back.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(back.get("c"), Some(&Json::Bool(false)));
        assert_eq!(back.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("12").unwrap(), Json::UInt(12));
    }
}
