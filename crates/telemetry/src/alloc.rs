//! Counting global allocator for span-level allocation attribution
//! (`alloc-profile` feature).
//!
//! [`SpanProfilingAlloc`] wraps the system allocator and tallies every
//! allocation into process-wide atomics plus per-thread counters. The
//! profile layer ([`crate::profile`]) snapshots the thread counters at
//! span start/drop, so the delta — bytes and allocation count — is
//! attributed to the innermost open span. That is what turns "the memo
//! table feels big" into a bytes/entry number in EXPERIMENTS.md.
//!
//! The allocator type lives here, but the `#[global_allocator]` item
//! does **not**: a crate can only have one, and test binaries (e.g.
//! `crates/core/tests/memo_alloc.rs`) declare their own. Each binary
//! that wants attribution opts in with
//! [`install_alloc_profiler!`](crate::install_alloc_profiler), usually
//! behind its own `alloc-profile` feature:
//!
//! ```ignore
//! #[cfg(feature = "alloc-profile")]
//! stp_telemetry::install_alloc_profiler!();
//! ```
//!
//! Accounting rules:
//!
//! - `alloc` / `alloc_zeroed` count the requested size, once.
//! - `realloc` counts the *new* size as a fresh allocation (the simple
//!   rule that keeps growing-vector costs visible; freed bytes are
//!   never subtracted — totals are cumulative, deltas do the rest).
//! - `dealloc` is not counted.
//!
//! The thread-local counters are `const`-initialized `Cell`s: reading
//! and bumping them never allocates and never runs a destructor, which
//! is mandatory inside a global allocator. `try_with` guards the
//! thread-teardown window where the TLS slot is gone; those late
//! allocations still reach the process totals.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// This thread's cumulative (bytes, allocations) since it started.
/// Monotone; callers diff two readings to cost a region.
#[inline]
pub fn thread_totals() -> (u64, u64) {
    let bytes = THREAD_BYTES.try_with(Cell::get).unwrap_or(0);
    let allocs = THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0);
    (bytes, allocs)
}

/// Process-wide cumulative (bytes, allocations) across all threads.
#[inline]
pub fn process_totals() -> (u64, u64) {
    (TOTAL_BYTES.load(Ordering::Relaxed), TOTAL_ALLOCS.load(Ordering::Relaxed))
}

#[inline]
fn note(size: usize) {
    let size = size as u64;
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let _ = THREAD_BYTES.try_with(|b| b.set(b.get() + size));
    let _ = THREAD_ALLOCS.try_with(|a| a.set(a.get() + 1));
}

/// A [`System`]-backed allocator that counts allocations; see the
/// module docs for the accounting rules and how to install it.
pub struct SpanProfilingAlloc;

// SAFETY: every method delegates to `System` with the caller's layout
// unchanged, so the GlobalAlloc contract is exactly System's. The
// bookkeeping on the side only touches atomics and const-initialized
// TLS cells, neither of which can allocate or unwind.
unsafe impl GlobalAlloc for SpanProfilingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Installs [`SpanProfilingAlloc`] as the binary's global allocator.
/// Invoke at most once per binary, at module scope.
#[macro_export]
macro_rules! install_alloc_profiler {
    () => {
        #[global_allocator]
        static STP_ALLOC_PROFILER: $crate::alloc::SpanProfilingAlloc =
            $crate::alloc::SpanProfilingAlloc;
    };
}

#[cfg(test)]
mod tests {
    //! The test binary for this crate does not install the allocator
    //! (lib tests share a process; the interesting installed-allocator
    //! coverage lives in `crates/core/tests/memo_alloc.rs`), so these
    //! exercise the counting logic directly.

    use super::*;

    #[test]
    fn note_reaches_thread_and_process_totals() {
        let (tb0, ta0) = thread_totals();
        let (pb0, pa0) = process_totals();
        note(128);
        note(64);
        let (tb1, ta1) = thread_totals();
        let (pb1, pa1) = process_totals();
        assert_eq!(tb1 - tb0, 192);
        assert_eq!(ta1 - ta0, 2);
        assert!(pb1 - pb0 >= 192, "other test threads may add more");
        assert!(pa1 - pa0 >= 2);
    }

    #[test]
    fn allocator_roundtrip_counts_and_preserves_data() {
        let a = SpanProfilingAlloc;
        let layout = Layout::from_size_align(64, 8).expect("layout");
        let (b0, n0) = thread_totals();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            p.write(42);
            let p = a.realloc(p, layout, 128);
            assert!(!p.is_null());
            assert_eq!(p.read(), 42);
            a.dealloc(p, Layout::from_size_align(128, 8).expect("layout"));
            let z = a.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(z.read(), 0);
            a.dealloc(z, layout);
        }
        let (b1, n1) = thread_totals();
        assert_eq!(b1 - b0, 64 + 128 + 64);
        assert_eq!(n1 - n0, 3, "dealloc is not counted");
    }
}
