//! RAII timing spans.
//!
//! A [`Span`] starts a stopwatch on creation and, when dropped, records
//! the elapsed time into the histogram of the same name, emits a JSONL
//! trace event if a trace writer is installed, and logs at
//! [`Level::Trace`](crate::log::Level). Spans nest: a thread-local depth
//! counter tracks lexical nesting, which the trace sink records so
//! flame-style views can be reconstructed offline.
//!
//! When profiling is enabled ([`crate::profile::set_enabled`], the
//! CLIs' `--profile`), each span additionally pushes its label onto the
//! thread's open-span path at start and, at drop, folds its elapsed
//! time (and, under the `alloc-profile` feature, the bytes/allocations
//! that happened while it ran) into the global profile tree at that
//! path. Span names are interned `&'static str`s — a dynamic label
//! ([`Span::enter_owned`], the `span!` format arm) allocates at most
//! once per *unique* label text for the life of the process, so
//! profiling stays allocation-free on hot paths once labels are warm.

use std::cell::Cell;
use std::time::Instant;

use crate::metrics;
use crate::profile;
use crate::trace;

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The current thread's span nesting depth (0 outside any span).
pub fn current_depth() -> u32 {
    DEPTH.with(|d| d.get())
}

/// A running stopwatch tied to a named histogram; see the module docs.
#[must_use = "a span measures until it is dropped; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Instant,
    depth: u32,
    /// True when this span observed profiling enabled at start (and is
    /// not untracked): it pushed a path frame it must pop at drop. The
    /// decision is latched so toggling profiling mid-span stays
    /// balanced.
    profiled: bool,
    start_bytes: u64,
    start_allocs: u64,
}

impl Span {
    /// Starts a span with a static name (the common, zero-alloc case).
    pub fn enter(name: &'static str) -> Span {
        Span::start(name, true)
    }

    /// Starts a span with a computed name, e.g. one per synthesis
    /// round. The name is interned: the first occurrence of a label
    /// text leaks one copy, every later occurrence is lookup-only.
    pub fn enter_owned(name: String) -> Span {
        Span::start(profile::intern_label(&name), true)
    }

    /// Starts a span that records its histogram and trace event as
    /// usual but never enters the profile tree. For bookkeeping spans
    /// whose placement depends on the execution strategy (e.g. a
    /// worker-loop busy span that only exists at `jobs > 1`), so
    /// profile trees stay structurally identical across worker counts.
    pub fn enter_untracked(name: &'static str) -> Span {
        Span::start(name, false)
    }

    fn start(name: &'static str, track: bool) -> Span {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let profiled = track && profile::enabled();
        let (start_bytes, start_allocs) = if profiled {
            profile::push_label(name);
            profile::alloc_totals()
        } else {
            (0, 0)
        };
        Span { name, start: Instant::now(), depth, profiled, start_bytes, start_allocs }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        self.name
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if self.profiled {
            let (bytes, allocs) = profile::alloc_totals();
            profile::pop_and_record(
                self.name,
                elapsed.as_nanos() as u64,
                bytes.saturating_sub(self.start_bytes),
                allocs.saturating_sub(self.start_allocs),
            );
        }
        metrics::global().histogram(self.name).record(elapsed);
        if trace::trace_enabled() {
            trace::emit_span(self.name, self.start, elapsed, self.depth);
        }
        crate::trace!("span {} {:.6}s (depth {})", self.name, elapsed.as_secs_f64(), self.depth);
    }
}

/// Starts a [`Span`]; accepts a `'static` name or a format string.
///
/// ```
/// let _guard = stp_telemetry::span!("phase.fence_enum");
/// let _per_round = stp_telemetry::span!("synth.round.r{}", 3);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::Span::enter($name)
    };
    ($($arg:tt)*) => {
        $crate::span::Span::enter_owned(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_into_histograms() {
        {
            let _s = Span::enter("telemetry.test.span");
        }
        let snap = metrics::global().snapshot();
        assert!(snap.histograms["telemetry.test.span"].count >= 1);
    }

    #[test]
    fn spans_nest_and_unwind() {
        assert_eq!(current_depth(), 0);
        let outer = Span::enter("telemetry.test.outer");
        assert_eq!(current_depth(), 1);
        assert_eq!(outer.depth, 0);
        {
            let inner = Span::enter("telemetry.test.inner");
            assert_eq!(current_depth(), 2);
            assert_eq!(inner.depth, 1);
        }
        assert_eq!(current_depth(), 1);
        drop(outer);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn span_macro_accepts_both_forms() {
        let a = crate::span!("telemetry.test.lit");
        let b = crate::span!("telemetry.test.dyn.r{}", 7);
        assert_eq!(a.name(), "telemetry.test.lit");
        assert_eq!(b.name(), "telemetry.test.dyn.r7");
        assert!(b.elapsed().as_nanos() < u128::MAX);
    }

    #[test]
    fn owned_names_are_interned_to_one_pointer() {
        let a = Span::enter_owned(format!("telemetry.test.intern.r{}", 1));
        let b = Span::enter_owned(format!("telemetry.test.intern.r{}", 1));
        assert!(std::ptr::eq(a.name, b.name));
    }
}
