//! RAII timing spans.
//!
//! A [`Span`] starts a stopwatch on creation and, when dropped, records
//! the elapsed time into the histogram of the same name, emits a JSONL
//! trace event if a trace writer is installed, and logs at
//! [`Level::Trace`](crate::log::Level). Spans nest: a thread-local depth
//! counter tracks lexical nesting, which the trace sink records so
//! flame-style views can be reconstructed offline.

use std::borrow::Cow;
use std::cell::Cell;
use std::time::Instant;

use crate::metrics;
use crate::trace;

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The current thread's span nesting depth (0 outside any span).
pub fn current_depth() -> u32 {
    DEPTH.with(|d| d.get())
}

/// A running stopwatch tied to a named histogram; see the module docs.
#[must_use = "a span measures until it is dropped; binding it to `_` drops it immediately"]
pub struct Span {
    name: Cow<'static, str>,
    start: Instant,
    depth: u32,
}

impl Span {
    /// Starts a span with a static name (the common, zero-alloc case).
    pub fn enter(name: &'static str) -> Span {
        Span::start(Cow::Borrowed(name))
    }

    /// Starts a span with a computed name, e.g. one per gate count.
    pub fn enter_owned(name: String) -> Span {
        Span::start(Cow::Owned(name))
    }

    fn start(name: Cow<'static, str>) -> Span {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span { name, start: Instant::now(), depth }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        metrics::global().histogram(&self.name).record(elapsed);
        if trace::trace_enabled() {
            trace::emit_span(&self.name, self.start, elapsed, self.depth);
        }
        crate::trace!("span {} {:.6}s (depth {})", self.name, elapsed.as_secs_f64(), self.depth);
    }
}

/// Starts a [`Span`]; accepts a `'static` name or a format string.
///
/// ```
/// let _guard = stp_telemetry::span!("phase.fence_enum");
/// let _per_round = stp_telemetry::span!("synth.round.r{}", 3);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::Span::enter($name)
    };
    ($($arg:tt)*) => {
        $crate::span::Span::enter_owned(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_into_histograms() {
        {
            let _s = Span::enter("telemetry.test.span");
        }
        let snap = metrics::global().snapshot();
        assert!(snap.histograms["telemetry.test.span"].count >= 1);
    }

    #[test]
    fn spans_nest_and_unwind() {
        assert_eq!(current_depth(), 0);
        let outer = Span::enter("telemetry.test.outer");
        assert_eq!(current_depth(), 1);
        assert_eq!(outer.depth, 0);
        {
            let inner = Span::enter("telemetry.test.inner");
            assert_eq!(current_depth(), 2);
            assert_eq!(inner.depth, 1);
        }
        assert_eq!(current_depth(), 1);
        drop(outer);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn span_macro_accepts_both_forms() {
        let a = crate::span!("telemetry.test.lit");
        let b = crate::span!("telemetry.test.dyn.r{}", 7);
        assert_eq!(a.name(), "telemetry.test.lit");
        assert_eq!(b.name(), "telemetry.test.dyn.r7");
        assert!(b.elapsed().as_nanos() < u128::MAX);
    }
}
