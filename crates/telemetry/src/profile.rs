//! Aggregated span-tree profiles.
//!
//! The second telemetry layer: when profiling is enabled (CLI flag
//! `--profile` / `--profile-folded`, or [`set_enabled`]), every
//! completed [`Span`](crate::span::Span) is folded into a global
//! **profile tree** — one node per distinct label *path* (the stack of
//! open span labels at the time the span ran), carrying call counts,
//! total wall time, and (with the `alloc-profile` feature and an
//! installed [`crate::install_alloc_profiler!`]) bytes and allocation
//! counts attributed to that span.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The only cost a span pays with
//!    profiling off is one relaxed atomic load. Enabling profiling
//!    never changes what the pipeline computes — only what is measured.
//! 2. **Deterministic across workers.** Worker threads inherit the
//!    spawner's open-span path ([`current_path`] / [`inherit_path`]),
//!    so a span recorded on a worker lands at the same tree path as the
//!    sequential execution would record it. All trees merge into one
//!    global accumulator keyed by interned labels in `BTreeMap`s, so
//!    structure and counts are identical at any `--jobs` (times and
//!    bytes are measurements and may of course vary).
//! 3. **Allocation-free on hot paths once warm.** Labels are interned
//!    (`&'static str`, see [`intern_label`]), the per-thread path stack
//!    reuses its buffer, and recording into an existing node performs
//!    map lookups only — pinned by `crates/core/tests/memo_alloc.rs`.
//!
//! Exports: a self/total text table ([`ProfileNode::render_text`]),
//! flamegraph-compatible folded stacks (`a;b;c <micros>`,
//! [`ProfileNode::folded`]), and a JSON form embedded in
//! [`RunReport`](crate::report::RunReport)s under `--stats`
//! ([`ProfileNode::to_json`] / [`ProfileNode::from_json`]).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::Json;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether spans currently feed the profile tree (fast path for the
/// span instrumentation: one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profile collection on or off. Spans already open keep the
/// decision made when they started, so toggling mid-span is safe (a
/// span never pops a path frame it did not push).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Label interning
// ---------------------------------------------------------------------

static LABELS: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Interns `label`, returning a `'static` reference that compares (and
/// hashes) like the string itself.
///
/// Each distinct label leaks exactly once; repeated calls with the same
/// text perform a lookup and allocate nothing. This caps what dynamic
/// span labels (`span!("synth.round.r{}", r)`) can allocate: one leak
/// per unique label for the life of the process, not one `String` per
/// span kept alive in the profile.
pub fn intern_label(label: &str) -> &'static str {
    let mut set = LABELS.lock().expect("label interner lock");
    if let Some(&interned) = set.get(label) {
        return interned;
    }
    let interned: &'static str = Box::leak(label.to_string().into_boxed_str());
    set.insert(interned);
    interned
}

// ---------------------------------------------------------------------
// Per-thread open-span path
// ---------------------------------------------------------------------

thread_local! {
    static PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The current thread's open-span label path, outermost first. Empty
/// when profiling is disabled (spans only push while enabled).
pub fn current_path() -> Vec<&'static str> {
    PATH.with(|p| p.borrow().clone())
}

/// Guard returned by [`inherit_path`]; pops the inherited frames when
/// dropped.
#[must_use = "the inherited path lasts until the guard is dropped"]
pub struct PathGuard {
    frames: usize,
}

/// Pushes `base` onto this thread's open-span path, so spans recorded
/// here land under the spawner's tree position. Worker pools call this
/// once per worker with the path captured (via [`current_path`]) on the
/// spawning thread — that is what makes `jobs=1` and `jobs=N` profile
/// trees structurally identical.
pub fn inherit_path(base: &[&'static str]) -> PathGuard {
    PATH.with(|p| p.borrow_mut().extend_from_slice(base));
    PathGuard { frames: base.len() }
}

impl Drop for PathGuard {
    fn drop(&mut self) {
        PATH.with(|p| {
            let mut path = p.borrow_mut();
            let keep = path.len().saturating_sub(self.frames);
            path.truncate(keep);
        });
    }
}

/// Span start hook: extends the thread's path. Called only for spans
/// that observed `enabled()` at start.
pub(crate) fn push_label(label: &'static str) {
    PATH.with(|p| p.borrow_mut().push(label));
}

/// Span drop hook: pops the thread's path and folds the measurement
/// into the global tree at the popped position.
pub(crate) fn pop_and_record(label: &'static str, elapsed_ns: u64, bytes: u64, allocs: u64) {
    PATH.with(|p| {
        let mut path = p.borrow_mut();
        // The span pushed `label` at start; tolerate a mismatch (e.g. a
        // span crossing threads) by recording at the current position.
        if path.last() == Some(&label) {
            path.pop();
        }
        record(&path, label, elapsed_ns, bytes, allocs);
    });
}

// ---------------------------------------------------------------------
// Allocation accounting hooks
// ---------------------------------------------------------------------

/// This thread's cumulative (bytes, allocations) tally from the
/// counting allocator; `(0, 0)` unless the `alloc-profile` feature is
/// enabled *and* [`crate::install_alloc_profiler!`] was invoked in the
/// binary. Spans snapshot it at start and attribute the delta at drop.
#[inline]
pub fn alloc_totals() -> (u64, u64) {
    #[cfg(feature = "alloc-profile")]
    {
        crate::alloc::thread_totals()
    }
    #[cfg(not(feature = "alloc-profile"))]
    {
        (0, 0)
    }
}

// ---------------------------------------------------------------------
// The global tree
// ---------------------------------------------------------------------

struct Node {
    calls: u64,
    total_ns: u64,
    alloc_bytes: u64,
    allocs: u64,
    children: BTreeMap<&'static str, Node>,
}

impl Node {
    const fn new() -> Node {
        Node { calls: 0, total_ns: 0, alloc_bytes: 0, allocs: 0, children: BTreeMap::new() }
    }
}

static ROOT: Mutex<Node> = Mutex::new(Node::new());

fn record(path: &[&'static str], label: &'static str, elapsed_ns: u64, bytes: u64, allocs: u64) {
    let mut root = ROOT.lock().expect("profile tree lock");
    let mut node = &mut *root;
    for frame in path {
        node = node.children.entry(frame).or_insert_with(Node::new);
    }
    let leaf = node.children.entry(label).or_insert_with(Node::new);
    leaf.calls += 1;
    leaf.total_ns += elapsed_ns;
    leaf.alloc_bytes += bytes;
    leaf.allocs += allocs;
}

/// Clears the collected tree (the enabled flag is untouched).
pub fn reset() {
    *ROOT.lock().expect("profile tree lock") = Node::new();
}

/// Copies the collected tree. The synthetic root is labeled `profile`;
/// its totals are the sums over its children (top-level spans).
pub fn snapshot() -> ProfileNode {
    let root = ROOT.lock().expect("profile tree lock");
    let mut out = copy_node("profile", &root);
    out.calls = out.children.iter().map(|c| c.calls).sum();
    out.total_ns = out.children.iter().map(|c| c.total_ns).sum();
    out.alloc_bytes = out.children.iter().map(|c| c.alloc_bytes).sum();
    out.allocs = out.children.iter().map(|c| c.allocs).sum();
    out
}

/// [`snapshot`], then [`reset`] — one atomic "harvest" under the tree
/// lock would be nicer, but profile reads only happen at run boundaries
/// where no spans are in flight.
pub fn take() -> ProfileNode {
    let snap = snapshot();
    reset();
    snap
}

/// Runs `f` with profiling enabled against a fresh tree and returns its
/// result together with the harvested profile; the enabled flag is
/// restored afterwards.
pub fn profiled<R>(f: impl FnOnce() -> R) -> (R, ProfileNode) {
    let was = enabled();
    reset();
    set_enabled(true);
    let result = f();
    let profile = take();
    set_enabled(was);
    (result, profile)
}

fn copy_node(label: &str, node: &Node) -> ProfileNode {
    ProfileNode {
        label: label.to_string(),
        calls: node.calls,
        total_ns: node.total_ns,
        alloc_bytes: node.alloc_bytes,
        allocs: node.allocs,
        children: node.children.iter().map(|(l, n)| copy_node(l, n)).collect(),
    }
}

// ---------------------------------------------------------------------
// Snapshot type and exports
// ---------------------------------------------------------------------

/// Plain-data copy of one profile-tree node (and, recursively, its
/// subtree). Children are sorted by label, so two structurally equal
/// trees compare equal with `==`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span label (the synthetic root is `profile`).
    pub label: String,
    /// Completed spans at this path.
    pub calls: u64,
    /// Total wall time across those spans, nanoseconds (children
    /// included — see [`ProfileNode::self_ns`]).
    pub total_ns: u64,
    /// Bytes allocated while spans at this path were innermost-or-above
    /// (children included); 0 without the `alloc-profile` feature.
    pub alloc_bytes: u64,
    /// Allocation count, same attribution as `alloc_bytes`.
    pub allocs: u64,
    /// Child nodes, sorted by label.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Wall time spent at this node *excluding* its children — the
    /// flamegraph "self" value.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.children.iter().map(|c| c.total_ns).sum())
    }

    /// Bytes allocated at this node excluding its children — the
    /// innermost-open-span attribution.
    pub fn self_alloc_bytes(&self) -> u64 {
        self.alloc_bytes.saturating_sub(self.children.iter().map(|c| c.alloc_bytes).sum())
    }

    /// Allocations at this node excluding its children.
    pub fn self_allocs(&self) -> u64 {
        self.allocs.saturating_sub(self.children.iter().map(|c| c.allocs).sum())
    }

    /// Looks up a descendant by label path (children of the root are
    /// depth 1, so `find(&["a", "b"])` is root → a → b).
    pub fn find(&self, path: &[&str]) -> Option<&ProfileNode> {
        let mut node = self;
        for label in path {
            node = node.children.iter().find(|c| c.label == *label)?;
        }
        Some(node)
    }

    /// Folded-stack export: one `a;b;c <micros>` line per node
    /// (self-time microseconds), depth-first in label order — the
    /// format `flamegraph.pl` / speedscope / inferno consume. The
    /// synthetic root is omitted from the stacks.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        let mut stack: Vec<&str> = Vec::new();
        for child in &self.children {
            child.folded_into(&mut stack, &mut out);
        }
        out
    }

    fn folded_into<'a>(&'a self, stack: &mut Vec<&'a str>, out: &mut String) {
        stack.push(&self.label);
        out.push_str(&stack.join(";"));
        out.push(' ');
        out.push_str(&(self.self_ns() / 1_000).to_string());
        out.push('\n');
        for child in &self.children {
            child.folded_into(stack, out);
        }
        stack.pop();
    }

    /// Human-readable profile table: one indented row per node with
    /// calls, total, self (and allocation columns when any were
    /// recorded), children sorted by descending total time.
    pub fn render_text(&self) -> String {
        let has_alloc = self.alloc_bytes > 0;
        let mut out = String::from(if has_alloc {
            "calls      total_s     self_s      bytes  span\n"
        } else {
            "calls      total_s     self_s  span\n"
        });
        self.render_into(0, has_alloc, &mut out);
        out
    }

    fn render_into(&self, depth: usize, has_alloc: bool, out: &mut String) {
        use std::fmt::Write as _;
        let total = self.total_ns as f64 / 1e9;
        let self_s = self.self_ns() as f64 / 1e9;
        if has_alloc {
            let _ = write!(
                out,
                "{:>5} {:>12.6} {:>10.6} {:>10}",
                self.calls, total, self_s, self.alloc_bytes
            );
        } else {
            let _ = write!(out, "{:>5} {:>12.6} {:>10.6}", self.calls, total, self_s);
        }
        let _ = writeln!(out, "  {}{}", "  ".repeat(depth), self.label);
        let mut children: Vec<&ProfileNode> = self.children.iter().collect();
        children.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(&b.label)));
        for child in children {
            child.render_into(depth + 1, has_alloc, out);
        }
    }

    /// The node as a JSON value (`label`, `calls`, `total_ns`,
    /// `alloc_bytes`, `allocs`, `children`), recursively.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            ("calls", Json::UInt(self.calls)),
            ("total_ns", Json::UInt(self.total_ns)),
            ("alloc_bytes", Json::UInt(self.alloc_bytes)),
            ("allocs", Json::UInt(self.allocs)),
            ("children", Json::Arr(self.children.iter().map(ProfileNode::to_json).collect())),
        ])
    }

    /// Parses a node serialized by [`ProfileNode::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<ProfileNode, String> {
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .ok_or("profile node missing string 'label'")?
            .to_string();
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("profile node '{label}' missing number '{key}'"))
        };
        let calls = num("calls")?;
        let total_ns = num("total_ns")?;
        let alloc_bytes = num("alloc_bytes")?;
        let allocs = num("allocs")?;
        let children = doc
            .get("children")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("profile node '{label}' missing array 'children'"))?
            .iter()
            .map(ProfileNode::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ProfileNode { label, calls, total_ns, alloc_bytes, allocs, children })
    }

    /// Structure-and-counts digest: one `path calls=N` line per node,
    /// depth-first. Two runs of a deterministic pipeline produce equal
    /// digests at any worker count (times and bytes are excluded).
    pub fn structure(&self) -> String {
        let mut out = String::new();
        let mut stack: Vec<&str> = Vec::new();
        for child in &self.children {
            child.structure_into(&mut stack, &mut out);
        }
        out
    }

    fn structure_into<'a>(&'a self, stack: &mut Vec<&'a str>, out: &mut String) {
        stack.push(&self.label);
        out.push_str(&stack.join(";"));
        out.push_str(&format!(" calls={}\n", self.calls));
        for child in &self.children {
            child.structure_into(stack, out);
        }
        stack.pop();
    }
}

/// Harvests the profile at a run boundary: returns `None` when
/// profiling is disabled; otherwise takes the tree and, when
/// `folded_path` names a file, writes the folded-stack export there
/// (errors are reported to stderr, never fatal — a full disk should not
/// fail the run it measured).
pub fn finish(folded_path: Option<&std::path::Path>) -> Option<ProfileNode> {
    if !enabled() {
        return None;
    }
    let tree = take();
    if let Some(path) = folded_path {
        if let Err(e) = std::fs::write(path, tree.folded()) {
            eprintln!("error writing folded profile {}: {e}", path.display());
        }
    }
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// The tree and the enabled flag are process-global; tests touching
    /// them serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<StdMutex<()>> = OnceLock::new();
        GATE.get_or_init(|| StdMutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn interning_returns_stable_pointers() {
        let a = intern_label("profile.test.label");
        let b = intern_label("profile.test.label");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "profile.test.label");
    }

    #[test]
    fn spans_build_a_nested_tree() {
        let _gate = lock();
        let (_, tree) = profiled(|| {
            for _ in 0..3 {
                let _outer = crate::span!("profile.test.outer");
                let _inner = crate::span!("profile.test.inner");
            }
            let _solo = crate::span!("profile.test.solo");
        });
        let outer = tree.find(&["profile.test.outer"]).expect("outer node");
        assert_eq!(outer.calls, 3);
        let inner = tree.find(&["profile.test.outer", "profile.test.inner"]).expect("inner node");
        assert_eq!(inner.calls, 3);
        assert!(outer.total_ns >= inner.total_ns, "parent total covers child total");
        assert_eq!(tree.find(&["profile.test.solo"]).expect("solo").calls, 1);
        // Self time: outer self + inner total == outer total.
        assert_eq!(outer.self_ns() + inner.total_ns, outer.total_ns);
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        let _gate = lock();
        reset();
        set_enabled(false);
        {
            let _s = crate::span!("profile.test.disabled");
        }
        assert!(snapshot().children.is_empty());
    }

    #[test]
    fn inherited_paths_merge_worker_trees() {
        let _gate = lock();
        let (_, tree) = profiled(|| {
            let _round = crate::span!("profile.test.round");
            let base = current_path();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let base = base.clone();
                    scope.spawn(move || {
                        let _guard = inherit_path(&base);
                        let _task = crate::span!("profile.test.task");
                    });
                }
            });
        });
        let task = tree.find(&["profile.test.round", "profile.test.task"]).expect("merged node");
        assert_eq!(task.calls, 2, "both workers land at the inherited path");
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let _gate = lock();
        let (_, tree) = profiled(|| {
            let _a = crate::span!("profile.test.fa");
            let _b = crate::span!("profile.test.fb");
        });
        let folded = tree.folded();
        assert!(folded.contains("profile.test.fa "), "folded: {folded}");
        assert!(folded.contains("profile.test.fa;profile.test.fb "), "folded: {folded}");
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("stack <value>");
            assert!(!stack.is_empty());
            assert!(value.parse::<u64>().is_ok(), "value not integer micros: {line}");
        }
    }

    #[test]
    fn json_round_trips() {
        let _gate = lock();
        let (_, tree) = profiled(|| {
            let _a = crate::span!("profile.test.ja");
            let _b = crate::span!("profile.test.jb");
        });
        let back = ProfileNode::from_json(&tree.to_json()).expect("parse back");
        assert_eq!(back, tree);
        assert!(ProfileNode::from_json(&Json::Null).is_err());
    }

    #[test]
    fn structure_digest_excludes_times() {
        let a = ProfileNode {
            label: "profile".into(),
            calls: 1,
            total_ns: 10,
            alloc_bytes: 0,
            allocs: 0,
            children: vec![ProfileNode {
                label: "x".into(),
                calls: 1,
                total_ns: 10,
                alloc_bytes: 5,
                allocs: 1,
                children: Vec::new(),
            }],
        };
        let mut b = a.clone();
        b.children[0].total_ns = 99;
        b.children[0].alloc_bytes = 0;
        assert_eq!(a.structure(), b.structure());
        assert_eq!(a.structure(), "x calls=1\n");
    }
}
