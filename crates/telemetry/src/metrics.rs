//! Process-wide registry of named counters and latency histograms.
//!
//! Counters and histograms are interned once per name and live for the
//! process (`&'static`), so hot paths pay a single relaxed atomic add —
//! no locking and no lookup when a handle is cached via the
//! [`counter!`](crate::counter) / [`histogram!`](crate::histogram)
//! macros. [`Metrics::snapshot`] copies everything into plain maps for
//! diffing and serialization.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing event counter.
///
/// Counters interned through a [`Metrics`] registry know their own
/// name, which lets increments feed any open
/// [`CounterScope`](crate::scope::CounterScope) on the current thread
/// (exact per-window attribution under concurrency). A `Counter`
/// built via `Default` has no name and is never scoped.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    name: &'static str,
}

impl Default for Counter {
    fn default() -> Counter {
        Counter { value: AtomicU64::new(0), name: "" }
    }
}

impl Counter {
    /// A zeroed counter carrying its interned registry name.
    fn named(name: &'static str) -> Counter {
        Counter { value: AtomicU64::new(0), name }
    }

    /// The registry name this counter was interned under (empty for
    /// counters built outside a registry).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        // Scoped attribution: one relaxed load while no scope is open
        // anywhere in the process (the common case).
        if crate::scope::any_active() && !self.name.is_empty() {
            crate::scope::record(self.name, n);
        }
    }

    /// Raises the value to at least `n` (for high-water marks). Not
    /// scoped: a maximum is not an additive delta.
    #[inline]
    pub fn record_max(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log2 duration buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds; 40 buckets reach ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A latency histogram with power-of-two nanosecond buckets.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: match self.min_ns.load(Ordering::Relaxed) {
                u64::MAX => 0,
                v => v,
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations in nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation in nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Largest observation in nanoseconds.
    pub max_ns: u64,
    /// Log2 bucket occupancy.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total observed time in seconds.
    pub fn total_s(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }

    /// Mean observation in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s() / self.count as f64
        }
    }

    /// Observations added relative to an earlier snapshot of the same
    /// histogram. Min/max are taken from `self` (they are not
    /// subtractive quantities).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            min_ns: self.min_ns,
            max_ns: self.max_ns,
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
        }
    }
}

/// A registry of named [`Counter`]s and [`Histogram`]s.
///
/// Usually accessed through [`global()`], but tests can create private
/// registries to avoid cross-test interference.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Interns the counter named `name`.
    ///
    /// The returned reference is `'static`: instruments cache it and
    /// update it lock-free afterwards. Entries intentionally leak — the
    /// set of metric names is small and fixed per build.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().expect("metrics lock");
        if let Some(c) = map.get(name) {
            return c;
        }
        // The counter carries its name so increments can be attributed
        // to open counter scopes; both leak together, once per name.
        let name_static: &'static str = Box::leak(name.to_string().into_boxed_str());
        let c: &'static Counter = Box::leak(Box::new(Counter::named(name_static)));
        map.insert(name.to_string(), c);
        c
    }

    /// Interns the histogram named `name`. Same contract as
    /// [`Metrics::counter`].
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock().expect("metrics lock");
        if let Some(h) = map.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::default()));
        map.insert(name.to_string(), h);
        h
    }

    /// Copies every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric. Handles stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("metrics lock").values() {
            c.reset();
        }
        for h in self.histograms.lock().expect("metrics lock").values() {
            h.reset();
        }
    }
}

/// Plain-data copy of a [`Metrics`] registry at one point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Metric growth relative to an earlier snapshot: counters are
    /// subtracted, zero-delta counters dropped; histograms keep only
    /// names whose count grew.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, v)| {
                let d = v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) => h.delta_since(e),
                    None => h.clone(),
                };
                (d.count > 0).then(|| (k.clone(), d))
            })
            .collect();
        MetricsSnapshot { counters, histograms }
    }
}

static GLOBAL: OnceLock<Metrics> = OnceLock::new();

/// The process-wide registry used by the instrumentation macros.
pub fn global() -> &'static Metrics {
    GLOBAL.get_or_init(Metrics::new)
}

/// Interns a counter in the global registry, caching the handle per
/// call site.
///
/// The name must be a string literal (or otherwise identical on every
/// execution of the call site) — the first name wins for that site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __SITE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::metrics::global().counter($name))
    }};
}

/// Interns a histogram in the global registry, caching the handle per
/// call site. Same literal-name contract as [`counter!`](crate::counter).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __SITE: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::metrics::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_by_name() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(m.snapshot().counters["x"], 3);
    }

    #[test]
    fn record_max_is_a_high_water_mark() {
        let m = Metrics::new();
        let c = m.counter("hwm");
        c.record_max(5);
        c.record_max(3);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::default();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_nanos(1024));
        h.record(Duration::from_micros(1));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 1024);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[9], 1, "1000ns is in [512, 1024)");
        assert_eq!(s.buckets[10], 1, "1024ns is in [1024, 2048)");
        assert!(s.mean_s() > 0.0);
    }

    #[test]
    fn empty_snapshot_stats_are_zero_not_nan() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.total_s(), 0.0);
        assert_eq!(s.mean_s(), 0.0, "mean of an empty histogram is 0, not 0/0");
        assert!(!s.mean_s().is_nan());
        assert!(!s.total_s().is_nan());
        assert_eq!(s.min_ns, 0, "sentinel min is normalized to 0 when empty");
        assert_eq!(s.max_ns, 0);
        // Deltas of empty snapshots stay empty and finite too.
        let d = s.delta_since(&s);
        assert_eq!(d.mean_s(), 0.0);
        assert_eq!(d.total_s(), 0.0);
    }

    #[test]
    fn snapshot_delta_drops_unchanged() {
        let m = Metrics::new();
        m.counter("a").add(5);
        m.counter("b").add(1);
        let before = m.snapshot();
        m.counter("a").add(2);
        m.histogram("h").record(Duration::from_millis(1));
        let delta = m.snapshot().delta_since(&before);
        assert_eq!(delta.counters.len(), 1);
        assert_eq!(delta.counters["a"], 2);
        assert_eq!(delta.histograms["h"].count, 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let m = Metrics::new();
        let c = m.counter("r");
        c.add(9);
        m.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(m.snapshot().counters["r"], 1);
    }

    #[test]
    fn global_macros_cache_handles() {
        let c1 = crate::counter!("telemetry.test.macro_counter");
        let c2 = crate::counter!("telemetry.test.macro_counter");
        // Two distinct call sites, one interned counter.
        assert!(std::ptr::eq(c1, c2));
        crate::histogram!("telemetry.test.macro_hist").record(Duration::from_nanos(10));
        assert!(global().snapshot().histograms["telemetry.test.macro_hist"].count >= 1);
    }
}
