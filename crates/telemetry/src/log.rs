//! Leveled stderr logging plus a stdout "report" channel.
//!
//! One process-global level gates both channels. Diagnostics
//! (`error!` … `trace!`) go to stderr with a `[level]` prefix; program
//! output that tools want to keep machine-greppable (`report!`) goes to
//! stdout with no prefix and is shown at the default level, so routing a
//! binary's `println!` calls through `report!` leaves its default output
//! byte-identical while still letting `--log error` silence it.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity levels, in increasing order of chattiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Suppress everything, including `report!` output.
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious conditions the run survived.
    Warn = 2,
    /// Program output and high-level progress. The default.
    Info = 3,
    /// Per-phase diagnostics.
    Debug = 4,
    /// Per-span timings and inner-loop detail.
    Trace = 5,
}

impl Level {
    /// Parses a level name (case-insensitive).
    pub fn parse(text: &str) -> Option<Level> {
        match text.to_ascii_lowercase().as_str() {
            "off" | "none" | "quiet" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The lowercase name used in log prefixes and flag values.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Whether messages at `at` are currently emitted.
#[inline]
pub fn enabled(at: Level) -> bool {
    at as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Applies the `STP_LOG` environment variable, if set to a valid level.
/// Returns the resulting global level.
pub fn init_from_env() -> Level {
    if let Ok(raw) = std::env::var("STP_LOG") {
        if let Some(parsed) = Level::parse(&raw) {
            set_level(parsed);
        }
    }
    level()
}

#[doc(hidden)]
pub fn __emit(at: Level, args: fmt::Arguments<'_>) {
    eprintln!("[{}] {}", at.name(), args);
}

/// Logs at [`Level::Error`] to stderr.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::__emit($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`] to stderr.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::__emit($crate::log::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] to stderr.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::__emit($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] to stderr.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::__emit($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`] to stderr.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Trace) {
            $crate::log::__emit($crate::log::Level::Trace, format_args!($($arg)*));
        }
    };
}

/// Prints program output to stdout, unprefixed, gated at [`Level::Info`].
///
/// `report!()` with no arguments prints an empty line.
#[macro_export]
macro_rules! report {
    () => {
        if $crate::log::enabled($crate::log::Level::Info) {
            println!();
        }
    };
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            println!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names() {
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("quiet"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn ordering_matches_verbosity() {
        assert!(Level::Error < Level::Trace);
        assert!(Level::Off < Level::Error);
        for l in [Level::Off, Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
    }
}
