//! JSONL trace-event sink.
//!
//! When installed (CLI flag `--trace-json <path>`), every completed
//! [`Span`](crate::span::Span) appends one line in the Chrome
//! trace-event style: `ph:"X"` complete events with microsecond
//! timestamps relative to the first event, plus the span's nesting
//! depth and thread id. [`finish`] appends a final `ph:"C"` event
//! carrying the counter snapshot and flushes. Lines are valid JSON
//! documents, so the file is both `jq`-able line-by-line and easy to
//! wrap into a `{"traceEvents": [...]}` envelope for viewers.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::metrics;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Whether a trace writer is installed (fast path for instruments).
#[inline]
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a JSONL trace writer at `path`, truncating any existing
/// file.
///
/// # Errors
///
/// Propagates the file-creation error.
pub fn install_writer(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    epoch(); // Anchor timestamps no later than installation.
    *SINK.lock().expect("trace sink lock") = Some(BufWriter::new(file));
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

fn thread_id_json() -> Json {
    // ThreadId has no stable numeric accessor; its Debug form
    // "ThreadId(N)" is stable enough for a diagnostic field.
    Json::Str(format!("{:?}", std::thread::current().id()))
}

fn write_line(doc: &Json) {
    let mut guard = SINK.lock().expect("trace sink lock");
    if let Some(w) = guard.as_mut() {
        // A full disk is not worth panicking the synthesis run over.
        let _ = writeln!(w, "{doc}");
    }
}

/// Appends a complete ("X") event for a finished span.
pub fn emit_span(name: &str, start: Instant, elapsed: std::time::Duration, depth: u32) {
    let ts_us = start.duration_since(epoch()).as_micros().min(u64::MAX as u128) as u64;
    let dur_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
    write_line(&Json::obj(vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("X".to_string())),
        ("ts", Json::UInt(ts_us)),
        ("dur", Json::UInt(dur_us)),
        ("depth", Json::UInt(depth as u64)),
        ("tid", thread_id_json()),
    ]));
}

/// Appends a counter ("C") event with the current global counter
/// values and flushes the sink. Call once before process exit; safe to
/// call when no writer is installed.
pub fn finish() {
    if !trace_enabled() {
        return;
    }
    let counters = metrics::global()
        .snapshot()
        .counters
        .into_iter()
        .map(|(k, v)| (k, Json::UInt(v)))
        .collect();
    let ts_us = epoch().elapsed().as_micros().min(u64::MAX as u128) as u64;
    write_line(&Json::obj(vec![
        ("name", Json::Str("counters".to_string())),
        ("ph", Json::Str("C".to_string())),
        ("ts", Json::UInt(ts_us)),
        ("args", Json::Obj(counters)),
    ]));
    if let Some(w) = SINK.lock().expect("trace sink lock").as_mut() {
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One combined test: the sink is process-global, so splitting
    /// install/emit/finish across tests would interleave.
    #[test]
    fn writes_parseable_jsonl() {
        let path = std::env::temp_dir()
            .join(format!("stp-telemetry-trace-test-{}.jsonl", std::process::id()));
        install_writer(&path).unwrap();
        assert!(trace_enabled());
        {
            let _s = crate::span!("telemetry.test.traced");
        }
        metrics::global().counter("telemetry.test.trace_counter").inc();
        finish();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "span event + counter event, got: {text}");
        let span_event = Json::parse(lines[0]).unwrap();
        assert_eq!(span_event.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span_event.get("name").unwrap().as_str(), Some("telemetry.test.traced"));
        assert!(span_event.get("dur").unwrap().as_u64().is_some());
        let counter_event = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(counter_event.get("ph").unwrap().as_str(), Some("C"));
        assert!(counter_event.get("args").unwrap().get("telemetry.test.trace_counter").is_some());
        let _ = std::fs::remove_file(&path);
    }
}
