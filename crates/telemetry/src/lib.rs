//! `stp-telemetry`: zero-dependency observability for the STP exact
//! synthesis workspace.
//!
//! Four pieces, all built on `std` alone:
//!
//! - [`log`] — a leveled stderr logger (`error!` … `trace!`) plus a
//!   stdout [`report!`](crate::report) channel for program output,
//!   controlled by one global [`Level`](log::Level) (`STP_LOG` env var
//!   or the CLIs' `--log` flag).
//! - [`metrics`] — a process-wide registry of named atomic
//!   [`Counter`](metrics::Counter)s and log2-bucket latency
//!   [`Histogram`](metrics::Histogram)s, with per-call-site handle
//!   caching via [`counter!`] / [`histogram!`] so hot paths pay one
//!   relaxed atomic add.
//! - [`span`] — RAII stopwatch guards ([`span!`]) that record into the
//!   histogram of the same name, nest via a thread-local depth, and
//!   feed the trace sink.
//! - [`trace`] / [`report`] — a Chrome-trace-style JSONL event writer
//!   (`--trace-json`) and the structured [`RunReport`](report::RunReport)
//!   printed by `--stats`, both serialized through the hand-rolled
//!   [`json::Json`] value type (which also parses, so tests and
//!   scripts can read reports back without serde).
//! - [`scope`] — thread-scoped counter attribution
//!   ([`CounterScope`](scope::CounterScope)): an exact per-window
//!   counter delta that stays exact when other threads run concurrent
//!   work, with worker-pool inheritance mirroring the profiler's
//!   `inherit_path`.
//! - [`profile`] / [`expose`] / `alloc` — the profiling layer: spans
//!   aggregate into a deterministic profile tree (`--profile`, folded
//!   flamegraph export, JSON embedding in reports), the registry
//!   renders as Prometheus exposition text
//!   ([`Metrics::render_prometheus`]), and the feature-gated
//!   `alloc-profile` counting allocator attributes bytes/allocations
//!   to the innermost open span.
//!
//! Instrumentation cost when idle is a relaxed atomic load per
//! `enabled()` check and a relaxed add per counter bump; the STP matrix
//! kernels additionally hide their counters behind the off-by-default
//! `telemetry` cargo feature of `stp-matrix` so the inner loops stay
//! untouched in benchmark builds.

#[cfg(feature = "alloc-profile")]
pub mod alloc;
pub mod expose;
pub mod json;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod scope;
pub mod span;
pub mod trace;

pub use json::Json;
pub use log::{enabled, init_from_env, level, set_level, Level};
pub use metrics::{global as metrics_global, Counter, Histogram, Metrics, MetricsSnapshot};
pub use profile::ProfileNode;
pub use report::{PhaseStats, RunReport};
pub use scope::CounterScope;
pub use span::Span;

#[cfg(test)]
mod tests {
    //! Cross-module smoke test; the per-module suites cover details.

    use super::*;

    #[test]
    fn end_to_end_report_from_global_metrics() {
        crate::counter!("telemetry.test.e2e").add(3);
        {
            let _s = crate::span!("telemetry.test.e2e_span");
        }
        let snap = metrics_global().snapshot();
        let report = RunReport::from_snapshot("smoke", &["x".to_string()], "ok", 0.01, &snap);
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert!(back.counters["telemetry.test.e2e"] >= 3);
        assert!(back.phases.iter().any(|p| p.name == "telemetry.test.e2e_span"));
    }
}
