//! Thread-scoped counter attribution.
//!
//! The bench harness historically measured "the counters of one
//! instance" as a before/after delta of the global registry. That is
//! exact only while instances run one at a time: the moment two
//! instances execute concurrently (the PR 8 instance pool), their
//! global deltas overlap and every instance double-counts its
//! neighbours' work. A [`CounterScope`] fixes the attribution at the
//! source: while a scope is open on a thread, every named
//! [`Counter`](crate::metrics::Counter) increment performed **on that
//! thread** (or on a worker thread that inherited the scope, see
//! [`current`] / [`inherit`]) is also recorded into the scope's private
//! map, keyed by counter name.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when unused.** With no scope open anywhere in the
//!    process, a counter add pays one extra relaxed atomic load
//!    ([`any_active`]) and nothing else.
//! 2. **Exact under concurrency.** Scopes are thread-local: counters
//!    bumped by an unrelated thread never leak into a scope, no matter
//!    how many instances run in parallel. Worker pools propagate a
//!    scope across their spawn boundary exactly like the profiler
//!    propagates span paths (`profile::inherit_path`).
//! 3. **Nesting-inclusive.** Scopes stack: an increment lands in every
//!    scope open on the thread, so an outer scope sees the sum of its
//!    inner scopes plus its own activity — the same containment rule a
//!    global before/after delta would report for purely sequential
//!    code.
//!
//! High-water-mark updates (`Counter::record_max`) are **not** scoped:
//! a maximum is not additive, so attributing it to a window is not
//! meaningful. Histograms (span timings) are likewise out of scope —
//! only counters feed drift gates and per-instance reports.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of scopes currently open process-wide — the fast-path gate
/// for [`record`]: counters skip the thread-local walk entirely while
/// this is zero.
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// One scope's accumulation map, shared between the owning thread and
/// any workers that inherited the scope.
type Sink = Arc<Mutex<BTreeMap<&'static str, u64>>>;

thread_local! {
    /// The scopes open on this thread, outermost first (own scopes and
    /// inherited ones alike).
    static STACK: RefCell<Vec<Sink>> = const { RefCell::new(Vec::new()) };
}

/// Whether any scope is open anywhere in the process (one relaxed
/// load — the only cost scoping adds to a counter increment while
/// unused).
#[inline]
pub(crate) fn any_active() -> bool {
    ACTIVE_SCOPES.load(Ordering::Relaxed) > 0
}

/// Records `n` for counter `name` into every scope open on this
/// thread. Called by `Counter::add` after the global registry update;
/// `name` is empty only for counters created outside a registry, which
/// cannot be attributed and are skipped by the caller.
pub(crate) fn record(name: &'static str, n: u64) {
    STACK.with(|stack| {
        for sink in stack.borrow().iter() {
            *sink.lock().expect("scope sink lock").entry(name).or_insert(0) += n;
        }
    });
}

/// An open counter-attribution window on the current thread.
///
/// Created by [`CounterScope::enter`]; closed by [`CounterScope::finish`]
/// (returning the collected counter deltas) or by dropping the guard
/// (discarding them). The scope must be finished or dropped on the
/// thread that entered it.
#[must_use = "a scope records nothing after it is dropped; call finish() to collect"]
#[derive(Debug)]
pub struct CounterScope {
    sink: Sink,
    open: bool,
}

impl CounterScope {
    /// Opens a scope on the current thread: from now until
    /// [`finish`](CounterScope::finish) (or drop), every named counter
    /// increment on this thread — and on workers that inherit the
    /// scope — is accumulated.
    pub fn enter() -> CounterScope {
        let sink: Sink = Arc::new(Mutex::new(BTreeMap::new()));
        STACK.with(|stack| stack.borrow_mut().push(Arc::clone(&sink)));
        ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
        CounterScope { sink, open: true }
    }

    /// Closes the scope and returns the counter deltas it observed,
    /// keyed by counter name (only counters that actually grew appear).
    ///
    /// Worker threads still holding an [`InheritGuard`] for this scope
    /// must have been joined first — increments recorded after `finish`
    /// are silently discarded.
    pub fn finish(mut self) -> BTreeMap<String, u64> {
        self.close();
        let map = std::mem::take(&mut *self.sink.lock().expect("scope sink lock"));
        map.into_iter().map(|(name, v)| (name.to_string(), v)).collect()
    }

    /// Pops this scope from the thread stack exactly once.
    fn close(&mut self) {
        if !self.open {
            return;
        }
        self.open = false;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Scopes are strictly nested per thread, so ours is on top.
            let top = stack.pop();
            debug_assert!(
                top.as_ref().is_some_and(|s| Arc::ptr_eq(s, &self.sink)),
                "counter scopes closed out of order"
            );
        });
        ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Drop for CounterScope {
    fn drop(&mut self) {
        self.close();
    }
}

/// A snapshot of the scopes open on the calling thread, for handing to
/// worker threads (cheap: one `Arc` clone per open scope).
#[derive(Debug, Clone, Default)]
pub struct ScopeHandle {
    sinks: Vec<Sink>,
}

/// Captures the scopes open on this thread. Worker pools call this on
/// the spawning thread and [`inherit`] the handle on each worker, so
/// work executed on the workers is attributed exactly as if it had run
/// inline — the counter-scope analogue of `profile::current_path` /
/// `profile::inherit_path`.
pub fn current() -> ScopeHandle {
    ScopeHandle { sinks: STACK.with(|stack| stack.borrow().clone()) }
}

/// Guard returned by [`inherit`]; detaches the inherited scopes when
/// dropped.
#[must_use = "the inherited scopes last until the guard is dropped"]
#[derive(Debug)]
pub struct InheritGuard {
    frames: usize,
}

/// Attaches the scopes captured in `handle` to the current thread:
/// counter increments here now land in the spawner's open scopes.
/// Inheriting an empty handle is free.
pub fn inherit(handle: &ScopeHandle) -> InheritGuard {
    STACK.with(|stack| stack.borrow_mut().extend(handle.sinks.iter().cloned()));
    InheritGuard { frames: handle.sinks.len() }
}

impl Drop for InheritGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let keep = stack.len().saturating_sub(self.frames);
            stack.truncate(keep);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn scope_collects_only_named_counters_on_this_thread() {
        let m = Metrics::new();
        let c = m.counter("scope.test.a");
        c.add(1); // before the scope: not collected
        let scope = CounterScope::enter();
        c.add(4);
        c.inc();
        // An anonymous counter (no registry) cannot be attributed.
        let anon = crate::metrics::Counter::default();
        anon.add(7);
        let got = scope.finish();
        assert_eq!(got.get("scope.test.a"), Some(&5));
        assert_eq!(got.len(), 1, "unexpected entries: {got:?}");
        // The global registry still saw every add.
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn nested_scopes_both_observe_inner_activity() {
        let m = Metrics::new();
        let c = m.counter("scope.test.nested");
        let outer = CounterScope::enter();
        c.add(2);
        let inner = CounterScope::enter();
        c.add(3);
        let inner_map = inner.finish();
        c.add(1);
        let outer_map = outer.finish();
        assert_eq!(inner_map.get("scope.test.nested"), Some(&3));
        assert_eq!(outer_map.get("scope.test.nested"), Some(&6));
    }

    #[test]
    fn record_max_is_not_scoped() {
        let m = Metrics::new();
        let c = m.counter("scope.test.hwm");
        let scope = CounterScope::enter();
        c.record_max(100);
        assert!(scope.finish().is_empty(), "high-water marks are not additive deltas");
    }

    #[test]
    fn workers_inherit_the_spawners_scope() {
        let m = Metrics::new();
        let c = m.counter("scope.test.worker");
        let scope = CounterScope::enter();
        let handle = current();
        std::thread::scope(|s| {
            // An inheriting worker feeds the scope; a detached one does
            // not.
            s.spawn(|| {
                let _inherit = inherit(&handle);
                c.add(10);
            });
            s.spawn(|| c.add(100));
        });
        c.add(1);
        let got = scope.finish();
        assert_eq!(got.get("scope.test.worker"), Some(&11));
        assert_eq!(c.get(), 111);
    }

    #[test]
    fn other_threads_do_not_leak_into_a_scope() {
        let m = Metrics::new();
        let c = m.counter("scope.test.isolated");
        let scope = CounterScope::enter();
        std::thread::scope(|s| {
            s.spawn(|| c.add(50));
        });
        assert!(scope.finish().is_empty());
    }

    #[test]
    fn dropping_a_scope_discards_and_reopens_cleanly() {
        let m = Metrics::new();
        let c = m.counter("scope.test.drop");
        {
            let _scope = CounterScope::enter();
            c.add(9);
        }
        // The dropped scope must have unwound the stack: a fresh scope
        // starts empty.
        let scope = CounterScope::enter();
        c.add(2);
        assert_eq!(scope.finish().get("scope.test.drop"), Some(&2));
    }
}
