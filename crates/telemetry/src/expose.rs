//! Prometheus-style text exposition of the metrics registry.
//!
//! One call — [`Metrics::render_prometheus`] — renders every registered
//! counter and histogram in the Prometheus text exposition format
//! (version 0.0.4), so a future `stpd` daemon's `/stats` endpoint is a
//! one-liner and ad-hoc scripts can scrape a run without JSON parsing.
//!
//! Mapping: all counters share one metric family `stp_counter`,
//! distinguished by a `name` label; all span histograms share
//! `stp_span_seconds`. The log2-nanosecond buckets of
//! [`Histogram`](crate::metrics::Histogram) become cumulative `le`
//! buckets with upper bounds `2^(i+1)` ns expressed in seconds, plus
//! the mandatory `+Inf` bucket, `_sum`, and `_count` series. Output is
//! sorted by metric name (the registry snapshot is a `BTreeMap`), so
//! two renders of the same state are byte-identical.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, Metrics, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be escaped inside `label="..."`.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The upper bound of log2 bucket `i` in seconds: `2^(i+1)` ns.
fn bucket_upper_s(i: usize) -> f64 {
    (1u64 << (i + 1)) as f64 / 1e9
}

/// Renders a [`MetricsSnapshot`] as Prometheus exposition text.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        out.push_str("# HELP stp_counter Event counters from the stp-telemetry registry.\n");
        out.push_str("# TYPE stp_counter counter\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "stp_counter{{name=\"{}\"}} {value}", escape_label(name));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("# HELP stp_span_seconds Span wall time from the stp-telemetry registry.\n");
        out.push_str("# TYPE stp_span_seconds histogram\n");
        for (name, hist) in &snapshot.histograms {
            render_histogram(&mut out, name, hist);
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    let name = escape_label(name);
    let mut cumulative = 0u64;
    for (i, count) in hist.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS) {
        cumulative += count;
        let _ = writeln!(
            out,
            "stp_span_seconds_bucket{{name=\"{name}\",le=\"{:e}\"}} {cumulative}",
            bucket_upper_s(i)
        );
    }
    // Observations past the last bucket are clamped into it by
    // `Histogram::record`, so +Inf always equals the total count.
    let _ = writeln!(out, "stp_span_seconds_bucket{{name=\"{name}\",le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "stp_span_seconds_sum{{name=\"{name}\"}} {}", hist.sum_ns as f64 / 1e9);
    let _ = writeln!(out, "stp_span_seconds_count{{name=\"{name}\"}} {}", hist.count);
}

impl Metrics {
    /// Renders the registry's current state as Prometheus exposition
    /// text; see the [module docs](crate::expose) for the mapping.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_counters_and_histograms() {
        let m = Metrics::new();
        m.counter("expose.a").add(7);
        m.counter("expose.b").add(1);
        m.histogram("expose.h").record(Duration::from_nanos(1024));
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE stp_counter counter\n"));
        assert!(text.contains("stp_counter{name=\"expose.a\"} 7\n"));
        assert!(text.contains("# TYPE stp_span_seconds histogram\n"));
        assert!(text.contains("stp_span_seconds_count{name=\"expose.h\"} 1\n"));
        assert!(text.contains("le=\"+Inf\"} 1\n"));
        // a sorts before b.
        let a = text.find("expose.a").expect("a present");
        let b = text.find("expose.b").expect("b present");
        assert!(a < b);
    }

    #[test]
    fn buckets_are_cumulative_and_end_at_count() {
        let m = Metrics::new();
        let h = m.histogram("expose.cum");
        h.record(Duration::from_nanos(1)); // bucket 0
        h.record(Duration::from_nanos(3)); // bucket 1
        h.record(Duration::from_nanos(3)); // bucket 1
        let text = m.render_prometheus();
        // le="4e-9" is the upper bound of bucket 1: cumulative 3.
        assert!(text.contains("le=\"2e-9\"} 1\n"), "text: {text}");
        assert!(text.contains("le=\"4e-9\"} 3\n"), "text: {text}");
        assert!(text.contains("stp_span_seconds_bucket{name=\"expose.cum\",le=\"+Inf\"} 3\n"));
        // Every line is `name{labels} value` or a comment — a minimal
        // validity check for exposition parsers.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("series value");
            assert!(series.ends_with('}'), "series: {series}");
            assert!(value.parse::<f64>().is_ok(), "value: {value}");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(render_prometheus(&MetricsSnapshot::default()), "");
    }
}
