//! Structured end-of-run reports.
//!
//! A [`RunReport`] is the machine-readable summary a tool prints under
//! `--stats`: what ran, how long it took, every counter, and a
//! per-phase wall-time table derived from span histograms. It
//! serializes through the in-crate [`Json`] type and parses back, so
//! downstream scripts (and this workspace's own integration tests) can
//! consume it without external dependencies.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::profile::ProfileNode;

/// Wall-time statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Span name, e.g. `phase.verify`.
    pub name: String,
    /// Number of completed spans.
    pub calls: u64,
    /// Total time across calls, seconds.
    pub total_s: f64,
    /// Mean time per call, seconds.
    pub mean_s: f64,
    /// Fastest call, seconds.
    pub min_s: f64,
    /// Slowest call, seconds.
    pub max_s: f64,
}

/// A structured summary of one tool invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Tool name, e.g. `stpsynth`.
    pub tool: String,
    /// Arguments after the program name.
    pub args: Vec<String>,
    /// Coarse outcome: `ok`, `timeout`, `error`, ...
    pub outcome: String,
    /// End-to-end wall time, seconds.
    pub wall_s: f64,
    /// Every counter with a non-zero value.
    pub counters: BTreeMap<String, u64>,
    /// Per-span wall-time stats, sorted by name so two reports over the
    /// same metric state are byte-identical (wall times vary run to
    /// run, so sorting by time would reorder nondeterministically).
    pub phases: Vec<PhaseStats>,
    /// The aggregated span-tree profile, when the run was profiled
    /// (`--profile`); see [`crate::profile`].
    pub profile: Option<ProfileNode>,
    /// Tool-specific extras (gate counts, solution counts, ...).
    pub extra: Vec<(String, Json)>,
}

impl RunReport {
    /// Builds a report from a metrics snapshot. Histograms become
    /// [`PhaseStats`]; zero counters are dropped.
    pub fn from_snapshot(
        tool: &str,
        args: &[String],
        outcome: &str,
        wall_s: f64,
        snapshot: &MetricsSnapshot,
    ) -> RunReport {
        let counters = snapshot
            .counters
            .iter()
            .filter(|(_, v)| **v > 0)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let mut phases: Vec<PhaseStats> = snapshot
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(name, h)| PhaseStats {
                name: name.clone(),
                calls: h.count,
                total_s: h.total_s(),
                mean_s: h.mean_s(),
                min_s: h.min_ns as f64 / 1e9,
                max_s: h.max_ns as f64 / 1e9,
            })
            .collect();
        phases.sort_by(|a, b| a.name.cmp(&b.name));
        RunReport {
            tool: tool.to_string(),
            args: args.to_vec(),
            outcome: outcome.to_string(),
            wall_s,
            counters,
            phases,
            profile: None,
            extra: Vec::new(),
        }
    }

    /// Attaches a profile tree (harvested via
    /// [`profile::finish`](crate::profile::finish)).
    pub fn with_profile(mut self, profile: ProfileNode) -> RunReport {
        self.profile = Some(profile);
        self
    }

    /// Attaches a tool-specific extra field.
    pub fn with_extra(mut self, key: &str, value: Json) -> RunReport {
        self.extra.push((key.to_string(), value));
        self
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("tool".to_string(), Json::Str(self.tool.clone())),
            (
                "args".to_string(),
                Json::Arr(self.args.iter().map(|a| Json::Str(a.clone())).collect()),
            ),
            ("outcome".to_string(), Json::Str(self.outcome.clone())),
            ("wall_s".to_string(), Json::Num(self.wall_s)),
            (
                "counters".to_string(),
                Json::Obj(self.counters.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect()),
            ),
            (
                "phases".to_string(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("name", Json::Str(p.name.clone())),
                                ("calls", Json::UInt(p.calls)),
                                ("total_s", Json::Num(p.total_s)),
                                ("mean_s", Json::Num(p.mean_s)),
                                ("min_s", Json::Num(p.min_s)),
                                ("max_s", Json::Num(p.max_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(profile) = &self.profile {
            fields.push(("profile".to_string(), profile.to_json()));
        }
        for (k, v) in &self.extra {
            fields.push((k.clone(), v.clone()));
        }
        Json::Obj(fields)
    }

    /// The report as a single-line JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a report previously produced by [`RunReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let tool = str_field("tool")?;
        let outcome = str_field("outcome")?;
        let wall_s =
            doc.get("wall_s").and_then(Json::as_f64).ok_or("missing number field 'wall_s'")?;
        let args = doc
            .get("args")
            .and_then(Json::as_arr)
            .ok_or("missing array field 'args'")?
            .iter()
            .filter_map(|a| a.as_str().map(str::to_string))
            .collect();
        let counters = doc
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or("missing object field 'counters'")?
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
            .collect();
        let phases = doc
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("missing array field 'phases'")?
            .iter()
            .map(|p| -> Result<PhaseStats, String> {
                let num = |key: &str| -> Result<f64, String> {
                    p.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("phase missing number '{key}'"))
                };
                Ok(PhaseStats {
                    name: p
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("phase missing 'name'")?
                        .to_string(),
                    calls: p.get("calls").and_then(Json::as_u64).ok_or("phase missing 'calls'")?,
                    total_s: num("total_s")?,
                    mean_s: num("mean_s")?,
                    min_s: num("min_s")?,
                    max_s: num("max_s")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let profile = match doc.get("profile") {
            Some(p) => Some(ProfileNode::from_json(p)?),
            None => None,
        };
        let known = ["tool", "args", "outcome", "wall_s", "counters", "phases", "profile"];
        let extra = doc
            .as_obj()
            .expect("parse() object-checked above")
            .iter()
            .filter(|(k, _)| !known.contains(&k.as_str()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Ok(RunReport { tool, args, outcome, wall_s, counters, phases, profile, extra })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use std::time::Duration;

    fn sample_snapshot() -> MetricsSnapshot {
        let m = Metrics::new();
        m.counter("fence.shapes_generated").add(17);
        m.counter("unused").add(0);
        m.histogram("phase.verify").record(Duration::from_millis(2));
        m.histogram("phase.verify").record(Duration::from_millis(4));
        m.snapshot()
    }

    #[test]
    fn roundtrips_through_json() {
        let args = vec!["8ff8".to_string(), "4".to_string()];
        let report = RunReport::from_snapshot("stpsynth", &args, "ok", 0.25, &sample_snapshot())
            .with_extra("gate_count", Json::UInt(5));
        let text = report.to_json_string();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.counters["fence.shapes_generated"], 17);
        assert!(!back.counters.contains_key("unused"), "zero counters dropped");
        assert_eq!(back.phases[0].name, "phase.verify");
        assert_eq!(back.phases[0].calls, 2);
        assert!(back.phases[0].total_s >= 0.006 - 1e-9);
        assert_eq!(back.extra[0], ("gate_count".to_string(), Json::UInt(5)));
    }

    #[test]
    fn phases_sorted_by_name() {
        let m = Metrics::new();
        m.histogram("z.fast").record(Duration::from_micros(1));
        m.histogram("a.slow").record(Duration::from_millis(10));
        let report = RunReport::from_snapshot("t", &[], "ok", 0.0, &m.snapshot());
        assert_eq!(report.phases[0].name, "a.slow");
        assert_eq!(report.phases[1].name, "z.fast");
    }

    #[test]
    fn profile_roundtrips_and_stays_optional() {
        let args = vec!["x".to_string()];
        let base = RunReport::from_snapshot("t", &args, "ok", 0.1, &sample_snapshot());
        assert_eq!(base.profile, None);
        let tree = ProfileNode {
            label: "profile".to_string(),
            calls: 2,
            total_ns: 1_000,
            alloc_bytes: 0,
            allocs: 0,
            children: vec![ProfileNode {
                label: "phase.verify".to_string(),
                calls: 2,
                total_ns: 1_000,
                alloc_bytes: 128,
                allocs: 3,
                children: Vec::new(),
            }],
        };
        let report = base.clone().with_profile(tree.clone());
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(back.profile.as_ref(), Some(&tree));
        assert!(back.extra.iter().all(|(k, _)| k != "profile"), "profile is a known field");
        // A profile-free report still parses with profile = None.
        assert_eq!(RunReport::parse(&base.to_json_string()).unwrap().profile, None);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(RunReport::parse("{}").is_err());
        assert!(RunReport::parse("not json").is_err());
        assert!(RunReport::parse(r#"{"tool":"t","outcome":"ok","wall_s":1}"#).is_err());
    }
}
