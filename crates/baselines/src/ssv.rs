//! The single-solver-variables (SSV) CNF encoding of exact synthesis.
//!
//! This is the classic encoding behind "Busy Man's Synthesis" (Soeken
//! et al., DATE'17) and percy, following Knuth's formulation: for a
//! specification `f` over `n` inputs and a candidate gate count `r`,
//!
//! * `x(i, t)` — the value of gate `i` at minterm `t`;
//! * `s(i, j, k)` — gate `i` reads signals `j < k` (inputs `0..n`, then
//!   gates);
//! * `op(i, ab)` — the four output bits of gate `i`'s 2-input operator.
//!
//! For every gate, admissible fanin pair, minterm, and fanin value
//! combination, two clauses tie `x(i, t)` to the operator output; unit
//! clauses pin the last gate to `f`. The encoding is parameterized over
//! the admissible fanin pairs so the fence-restricted variant (FEN) can
//! reuse it, and over the constrained minterm set so the CEGAR variant
//! (ABC-like) can grow it lazily.

use std::time::Instant;

use stp_chain::{Chain, OutputRef};
use stp_sat::{Lit, SolveResult, Solver, Var};
use stp_tt::TruthTable;

use crate::error::BaselineError;

/// Encoding reductions for [`SsvInstance::build_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct SsvOptions {
    /// Knuth normal-chain normalization: every gate outputs 0 on the
    /// all-false fanin pair (five admissible operators per gate); the
    /// output phase is fixed at decode time. Sound for any topology
    /// restriction.
    pub normal_gates: bool,
    /// Adjacent-gate colexicographic fanin ordering. Sound only when
    /// gates are freely permutable (the unrestricted BMS/CEGAR space) —
    /// **not** for level-pinned encodings like FEN.
    pub colex_symmetry: bool,
    /// Every non-output gate must feed a later gate. Sound whenever the
    /// target family requires full connectivity (all of ours do).
    pub require_usage: bool,
}

impl SsvOptions {
    /// No reductions (the plain encoding).
    pub const PLAIN: SsvOptions =
        SsvOptions { normal_gates: false, colex_symmetry: false, require_usage: false };
    /// The reductions valid for the unrestricted topology space.
    pub const UNRESTRICTED: SsvOptions =
        SsvOptions { normal_gates: true, colex_symmetry: true, require_usage: true };
    /// The reductions valid under a fence's level pinning.
    pub const LEVELED: SsvOptions =
        SsvOptions { normal_gates: true, colex_symmetry: false, require_usage: true };
}

/// Shared configuration for the baseline synthesizers.
#[derive(Debug, Clone, Default)]
pub struct BaselineConfig {
    /// Upper bound on the gate count before giving up (0 means use the
    /// default of 20).
    pub max_gates: usize,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl BaselineConfig {
    /// The effective gate limit.
    pub fn gate_limit(&self) -> usize {
        if self.max_gates == 0 {
            20
        } else {
            self.max_gates
        }
    }
}

/// Result of a successful baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The synthesized optimum chain (CNF baselines return a single
    /// solution — the contrast the paper draws with its AllSAT engine).
    pub chain: Chain,
    /// The optimum gate count.
    pub gate_count: usize,
    /// Total SAT conflicts spent.
    pub conflicts: u64,
    /// Number of SAT solver invocations (CEGAR refinements count).
    pub solver_calls: u64,
}

/// One SSV instance: the solver plus the variable layout.
pub struct SsvInstance {
    /// The underlying CDCL solver.
    pub solver: Solver,
    n: usize,
    r: usize,
    /// `x[i][t]`: gate `i` value at minterm `t`.
    x: Vec<Vec<Var>>,
    /// `(j, k, var)` triples per gate.
    sel: Vec<Vec<(usize, usize, Var)>>,
    /// `op[i][ab]` where `ab = a + 2b`.
    op: Vec<[Var; 4]>,
    /// Minterms whose semantics clauses have been added.
    constrained: Vec<bool>,
    spec: TruthTable,
    /// Whether the chain output must be complemented to produce the
    /// spec (Knuth's normal-chain normalization synthesizes `f` or
    /// `¬f`, whichever is zero at the all-false input).
    negate_output: bool,
}

/// Checks the deadline, translating expiry into
/// [`BaselineError::Timeout`].
pub fn check_deadline(deadline: Option<Instant>) -> Result<(), BaselineError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(BaselineError::Timeout),
        _ => Ok(()),
    }
}

/// Runs the solver in conflict-budget slices so the wall-clock deadline
/// is honoured even inside long solves.
pub fn solve_under_deadline(
    solver: &mut Solver,
    deadline: Option<Instant>,
) -> Result<SolveResult, BaselineError> {
    const SLICE: u64 = 2000;
    let _solve = stp_telemetry::span!("baseline.sat_solve");
    let conflicts_before = solver.stats().conflicts;
    let result = loop {
        if let Err(timeout) = check_deadline(deadline) {
            solver.set_conflict_budget(None);
            break Err(timeout);
        }
        solver.set_conflict_budget(Some(SLICE));
        match solver.solve() {
            SolveResult::Unknown => continue,
            done => {
                solver.set_conflict_budget(None);
                break Ok(done);
            }
        }
    };
    stp_telemetry::counter!("baseline.sat_conflicts")
        .add(solver.stats().conflicts - conflicts_before);
    result
}

impl SsvInstance {
    /// Builds the instance skeleton: variables, fanin selection
    /// constraints, and (optionally) the output pins — but adds gate
    /// semantics only for `initial_minterms`.
    ///
    /// `allowed_pairs(i)` lists the admissible `(j, k)` fanin pairs of
    /// gate `i` (`j < k`, signals `0..n+i`).
    pub fn build<F>(
        spec: &TruthTable,
        r: usize,
        allowed_pairs: F,
        initial_minterms: &[usize],
    ) -> Self
    where
        F: Fn(usize) -> Vec<(usize, usize)>,
    {
        Self::build_with_options(spec, r, allowed_pairs, initial_minterms, SsvOptions::PLAIN)
    }

    /// Like [`SsvInstance::build`], optionally adding the standard
    /// search-space reductions used by production encodings:
    ///
    /// * **normal chains** (Knuth 7.1.2): every gate outputs 0 on the
    ///   all-false fanin pair, which restricts each gate to the five
    ///   nontrivial normal operators; the chain then realizes `f` or
    ///   `¬f` (fixed by the output phase at decode time) — this does not
    ///   change the optimum gate count;
    /// * **gate-ordering symmetry break**: consecutive gates that do
    ///   not feed each other must pick colexicographically
    ///   non-decreasing fanin pairs (sound because independent adjacent
    ///   steps commute).
    pub fn build_with_options<F>(
        spec: &TruthTable,
        r: usize,
        allowed_pairs: F,
        initial_minterms: &[usize],
        options: SsvOptions,
    ) -> Self
    where
        F: Fn(usize) -> Vec<(usize, usize)>,
    {
        let n = spec.num_vars();
        // Normal-chain normalization: synthesize g with g(0…0) = 0.
        let negate_output = options.normal_gates && spec.bit(0);
        let goal = if negate_output { !spec.clone() } else { spec.clone() };
        let mut solver = Solver::new();
        let x: Vec<Vec<Var>> =
            (0..r).map(|_| (0..spec.num_bits()).map(|_| solver.new_var()).collect()).collect();
        let op: Vec<[Var; 4]> = (0..r)
            .map(|_| [solver.new_var(), solver.new_var(), solver.new_var(), solver.new_var()])
            .collect();
        if options.normal_gates {
            for bits in &op {
                // Normal gate: σ(0, 0) = 0.
                solver.add_clause(&[bits[0].neg()]);
                // Exclude the trivial normal operators: the constant 0
                // (no bit set) and the two projections 0xa / 0xc.
                solver.add_clause(&[bits[1].pos(), bits[2].pos(), bits[3].pos()]);
                // ¬(σ = 0xa) = ¬(¬b1? …): 0xa sets bits 1 and 3 only.
                solver.add_clause(&[bits[1].neg(), bits[2].pos(), bits[3].neg()]);
                // 0xc sets bits 2 and 3 only.
                solver.add_clause(&[bits[1].pos(), bits[2].neg(), bits[3].neg()]);
            }
        }
        let mut sel = Vec::with_capacity(r);
        for i in 0..r {
            let pairs = allowed_pairs(i);
            let vars: Vec<(usize, usize, Var)> =
                pairs.into_iter().map(|(j, k)| (j, k, solver.new_var())).collect();
            // Exactly-one selection.
            let all: Vec<Lit> = vars.iter().map(|&(_, _, v)| v.pos()).collect();
            solver.add_clause(&all);
            for a in 0..vars.len() {
                for b in (a + 1)..vars.len() {
                    solver.add_clause(&[vars[a].2.neg(), vars[b].2.neg()]);
                }
            }
            sel.push(vars);
        }
        if options.require_usage {
            // Every non-output gate must feed a later gate (minimal
            // chains contain no dead gates).
            for i in 0..r.saturating_sub(1) {
                let signal = n + i;
                let mut users: Vec<Lit> = Vec::new();
                for later in &sel[i + 1..] {
                    for &(j, k, sv) in later {
                        if j == signal || k == signal {
                            users.push(sv.pos());
                        }
                    }
                }
                solver.add_clause(&users);
            }
        }
        if options.colex_symmetry {
            let colex = |(j, k): (usize, usize)| (k, j);
            for i in 0..r.saturating_sub(1) {
                let this_gate_signal = n + i;
                for &(j1, k1, s1) in &sel[i] {
                    for &(j2, k2, s2) in &sel[i + 1] {
                        let uses_prev = j2 == this_gate_signal || k2 == this_gate_signal;
                        if !uses_prev && colex((j2, k2)) < colex((j1, k1)) {
                            solver.add_clause(&[s1.neg(), s2.neg()]);
                        }
                    }
                }
            }
        }
        let mut inst = SsvInstance {
            solver,
            n,
            r,
            x,
            sel,
            op,
            constrained: vec![false; spec.num_bits()],
            spec: spec.clone(),
            negate_output,
        };
        // Output pins for every minterm (cheap units; semantics arrive
        // with the minterm constraints).
        for t in 0..goal.num_bits() {
            let lit = Lit::with_polarity(inst.x[r - 1][t], goal.bit(t));
            inst.solver.add_clause(&[lit]);
        }
        for &t in initial_minterms {
            inst.constrain_minterm(t);
        }
        stp_telemetry::counter!("baseline.cnf_builds").inc();
        stp_telemetry::counter!("baseline.cnf_vars").add(inst.solver.num_vars() as u64);
        stp_telemetry::counter!("baseline.cnf_clauses").add(inst.solver.num_clauses() as u64);
        inst
    }

    /// Number of minterms currently constrained.
    pub fn constrained_count(&self) -> usize {
        self.constrained.iter().filter(|&&c| c).count()
    }

    /// Adds the gate-semantics clauses for minterm `t` (idempotent).
    pub fn constrain_minterm(&mut self, t: usize) {
        if self.constrained[t] {
            return;
        }
        self.constrained[t] = true;
        for i in 0..self.r {
            let sel = self.sel[i].clone();
            for (j, k, s) in sel {
                for a in [false, true] {
                    for b in [false, true] {
                        // s(i,j,k) ∧ (sig_j(t) = a) ∧ (sig_k(t) = b)
                        //   → (x(i,t) ↔ op(i, a+2b)).
                        let mut base = vec![s.neg()];
                        match self.signal_lit(j, t, a) {
                            SignalCond::Impossible => continue,
                            SignalCond::Always => {}
                            SignalCond::Lit(l) => base.push(l),
                        }
                        match self.signal_lit(k, t, b) {
                            SignalCond::Impossible => continue,
                            SignalCond::Always => {}
                            SignalCond::Lit(l) => base.push(l),
                        }
                        let o = self.op[i][(a as usize) + 2 * (b as usize)];
                        let xi = self.x[i][t];
                        let mut c1 = base.clone();
                        c1.push(xi.neg());
                        c1.push(o.pos());
                        self.solver.add_clause(&c1);
                        let mut c2 = base;
                        c2.push(xi.pos());
                        c2.push(o.neg());
                        self.solver.add_clause(&c2);
                    }
                }
            }
        }
    }

    /// The clause literal asserting "signal `sig` at minterm `t` differs
    /// from `value`" (for use in implication antecedents), or a constant
    /// outcome for primary inputs.
    fn signal_lit(&self, sig: usize, t: usize, value: bool) -> SignalCond {
        if sig < self.n {
            let actual = (t >> sig) & 1 == 1;
            if actual == value {
                SignalCond::Always
            } else {
                SignalCond::Impossible
            }
        } else {
            SignalCond::Lit(Lit::with_polarity(self.x[sig - self.n][t], !value))
        }
    }

    /// Decodes the solver model into a chain.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::DecodeInconsistency`] when the model
    /// violates the selection invariants — an encoding bug.
    pub fn decode(&self) -> Result<Chain, BaselineError> {
        let model = self.solver.model();
        let mut chain = Chain::new(self.n);
        for i in 0..self.r {
            let mut chosen = None;
            for &(j, k, s) in &self.sel[i] {
                if model[s.index()] {
                    if chosen.is_some() {
                        return Err(BaselineError::DecodeInconsistency {
                            detail: format!("gate {i} selects two fanin pairs"),
                        });
                    }
                    chosen = Some((j, k));
                }
            }
            let (j, k) = chosen.ok_or_else(|| BaselineError::DecodeInconsistency {
                detail: format!("gate {i} selects no fanin pair"),
            })?;
            let mut tt2 = 0u8;
            for ab in 0..4 {
                if model[self.op[i][ab].index()] {
                    tt2 |= 1 << ab;
                }
            }
            chain.add_gate(j, k, tt2)?;
        }
        let top = self.n + self.r - 1;
        chain.add_output(if self.negate_output {
            OutputRef::negated_signal(top)
        } else {
            OutputRef::signal(top)
        });
        Ok(chain)
    }

    /// Simulates the decoded chain and returns the first minterm where
    /// it disagrees with the spec (the CEGAR counterexample), or `None`
    /// when the chain is correct.
    ///
    /// # Errors
    ///
    /// Propagates decode/simulation failures.
    pub fn counterexample(&self, chain: &Chain) -> Result<Option<usize>, BaselineError> {
        let got = chain.simulate_outputs()?[0].clone();
        for t in 0..self.spec.num_bits() {
            if got.bit(t) != self.spec.bit(t) {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }
}

enum SignalCond {
    /// The condition holds at this minterm regardless of assignments.
    Always,
    /// The condition can never hold at this minterm.
    Impossible,
    /// The condition holds iff the literal is false (the literal is the
    /// antecedent's negation, ready for the clause).
    Lit(Lit),
}

/// All fanin pairs `(j, k)` with `j < k < n + i` — the unrestricted
/// (BMS) topology space.
pub fn unrestricted_pairs(n: usize, i: usize) -> Vec<(usize, usize)> {
    let avail = n + i;
    let mut out = Vec::new();
    for j in 0..avail {
        for k in (j + 1)..avail {
            out.push((j, k));
        }
    }
    out
}

/// Builds the zero-gate chain for trivial specs.
pub fn trivial_chain(spec: &TruthTable) -> Option<Chain> {
    let n = spec.num_vars();
    let ones = spec.count_ones();
    let mut chain = Chain::new(n);
    if ones == 0 || ones == spec.num_bits() {
        chain.add_output(OutputRef::Constant(ones != 0));
        return Some(chain);
    }
    for v in 0..n {
        let proj = TruthTable::variable(n, v).ok()?;
        if *spec == proj {
            chain.add_output(OutputRef::signal(v));
            return Some(chain);
        }
        if *spec == !proj {
            chain.add_output(OutputRef::negated_signal(v));
            return Some(chain);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_pairs_counts() {
        assert_eq!(unrestricted_pairs(4, 0).len(), 6);
        assert_eq!(unrestricted_pairs(4, 1).len(), 10);
        assert_eq!(unrestricted_pairs(2, 0), vec![(0, 1)]);
    }

    #[test]
    fn fully_constrained_instance_synthesizes_and2() {
        let spec = TruthTable::from_hex(2, "8").unwrap();
        let all: Vec<usize> = (0..4).collect();
        let mut inst = SsvInstance::build(&spec, 1, |i| unrestricted_pairs(2, i), &all);
        assert_eq!(inst.solver.solve(), SolveResult::Sat);
        let chain = inst.decode().unwrap();
        assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        assert!(inst.counterexample(&chain).unwrap().is_none());
    }

    #[test]
    fn infeasible_gate_count_is_unsat() {
        // XOR3 cannot be done with one gate.
        let spec = TruthTable::from_fn(3, |a| a[0] ^ a[1] ^ a[2]).unwrap();
        let all: Vec<usize> = (0..8).collect();
        let mut inst = SsvInstance::build(&spec, 1, |i| unrestricted_pairs(3, i), &all);
        assert_eq!(inst.solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn partially_constrained_instance_accepts_wrong_chain() {
        // With a single constrained minterm the solver can pick a chain
        // wrong elsewhere — the CEGAR loop's raison d'être.
        let spec = TruthTable::from_fn(3, |a| a[0] ^ a[1] ^ a[2]).unwrap();
        let mut inst = SsvInstance::build(&spec, 2, |i| unrestricted_pairs(3, i), &[0]);
        assert_eq!(inst.constrained_count(), 1);
        assert_eq!(inst.solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn trivial_chains() {
        let c = trivial_chain(&TruthTable::constant(3, true).unwrap()).unwrap();
        assert_eq!(c.num_gates(), 0);
        let p = trivial_chain(&TruthTable::variable(3, 1).unwrap()).unwrap();
        assert_eq!(p.simulate_outputs().unwrap()[0], TruthTable::variable(3, 1).unwrap());
        assert!(trivial_chain(&TruthTable::from_hex(2, "8").unwrap()).is_none());
    }

    #[test]
    fn deadline_helpers() {
        assert!(check_deadline(None).is_ok());
        assert!(check_deadline(Some(Instant::now() - std::time::Duration::from_secs(1))).is_err());
    }
}
