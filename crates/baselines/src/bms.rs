//! BMS: the baseline SAT-based exact synthesis algorithm.
//!
//! "Busy Man's Synthesis" (Soeken, De Micheli, Mishchenko — DATE'17)
//! style single-solver loop: for `r = lower bound, r+1, …` build the
//! full SSV encoding (all minterms constrained, unrestricted topology)
//! and solve; the first satisfiable `r` is the optimum and the model
//! decodes into the chain.

use stp_tt::TruthTable;

use crate::error::BaselineError;
use crate::ssv::{
    check_deadline, solve_under_deadline, trivial_chain, unrestricted_pairs, BaselineConfig,
    BaselineResult, SsvInstance, SsvOptions,
};
use stp_sat::SolveResult;

/// Runs BMS exact synthesis.
///
/// # Errors
///
/// * [`BaselineError::Timeout`] when the deadline expires;
/// * [`BaselineError::GateLimitExceeded`] when no realization exists
///   within the configured gate limit.
///
/// # Examples
///
/// ```
/// use stp_baselines::{bms_synthesize, BaselineConfig};
/// use stp_tt::TruthTable;
///
/// let spec = TruthTable::from_hex(4, "8ff8")?;
/// let result = bms_synthesize(&spec, &BaselineConfig::default())?;
/// assert_eq!(result.gate_count, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bms_synthesize(
    spec: &TruthTable,
    config: &BaselineConfig,
) -> Result<BaselineResult, BaselineError> {
    if let Some(chain) = trivial_chain(spec) {
        return Ok(BaselineResult { chain, gate_count: 0, conflicts: 0, solver_calls: 0 });
    }
    let n = spec.num_vars();
    let start = spec.support().len().saturating_sub(1).max(1);
    let all_minterms: Vec<usize> = (0..spec.num_bits()).collect();
    let mut conflicts = 0u64;
    let mut solver_calls = 0u64;
    #[allow(clippy::explicit_counter_loop)]
    for r in start..=config.gate_limit() {
        check_deadline(config.deadline)?;
        let mut inst = SsvInstance::build_with_options(
            spec,
            r,
            |i| unrestricted_pairs(n, i),
            &all_minterms,
            SsvOptions::UNRESTRICTED,
        );
        solver_calls += 1;
        let result = solve_under_deadline(&mut inst.solver, config.deadline);
        conflicts += inst.solver.stats().conflicts;
        match result? {
            SolveResult::Sat => {
                let chain = inst.decode()?;
                debug_assert_eq!(chain.simulate_outputs()?[0], *spec);
                return Ok(BaselineResult { chain, gate_count: r, conflicts, solver_calls });
            }
            SolveResult::Unsat => continue,
            SolveResult::Unknown => unreachable!("budget slices always resolve or time out"),
        }
    }
    Err(BaselineError::GateLimitExceeded { max_gates: config.gate_limit() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_costs_three_gates() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = bms_synthesize(&spec, &BaselineConfig::default()).unwrap();
        assert_eq!(result.gate_count, 3);
        assert_eq!(result.chain.simulate_outputs().unwrap()[0], spec);
    }

    #[test]
    fn majority_costs_four_gates() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let result = bms_synthesize(&maj, &BaselineConfig::default()).unwrap();
        assert_eq!(result.gate_count, 4);
        assert_eq!(result.chain.simulate_outputs().unwrap()[0], maj);
    }

    #[test]
    fn xor3_costs_two_gates() {
        let spec = TruthTable::from_fn(3, |a| a[0] ^ a[1] ^ a[2]).unwrap();
        let result = bms_synthesize(&spec, &BaselineConfig::default()).unwrap();
        assert_eq!(result.gate_count, 2);
    }

    #[test]
    fn trivial_specs_cost_zero() {
        let result =
            bms_synthesize(&TruthTable::variable(4, 2).unwrap(), &BaselineConfig::default())
                .unwrap();
        assert_eq!(result.gate_count, 0);
    }

    #[test]
    fn expired_deadline_times_out() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let config = BaselineConfig {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
            ..BaselineConfig::default()
        };
        assert!(matches!(bms_synthesize(&spec, &config), Err(BaselineError::Timeout)));
    }

    #[test]
    fn gate_limit_reported() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let config = BaselineConfig { max_gates: 3, ..BaselineConfig::default() };
        assert!(matches!(
            bms_synthesize(&maj, &config),
            Err(BaselineError::GateLimitExceeded { max_gates: 3 })
        ));
    }
}
