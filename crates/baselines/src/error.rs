//! Error types for the baseline synthesizers.

use std::error::Error;
use std::fmt;

use stp_chain::ChainError;
use stp_tt::TruthTableError;

/// Errors raised by the CNF-based baseline synthesizers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The per-instance deadline (or conflict budget) expired.
    Timeout,
    /// No realization exists within the configured gate limit.
    GateLimitExceeded {
        /// The configured maximum number of gates.
        max_gates: usize,
    },
    /// A decoded model produced an inconsistent chain — indicates an
    /// encoding bug and is surfaced rather than masked.
    DecodeInconsistency {
        /// Human-readable description.
        detail: String,
    },
    /// A truth-table operation failed.
    TruthTable(TruthTableError),
    /// A chain operation failed.
    Chain(ChainError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Timeout => write!(f, "baseline synthesis deadline expired"),
            BaselineError::GateLimitExceeded { max_gates } => {
                write!(f, "no realization with at most {max_gates} gates")
            }
            BaselineError::DecodeInconsistency { detail } => {
                write!(f, "model decoding failed: {detail}")
            }
            BaselineError::TruthTable(e) => write!(f, "truth table error: {e}"),
            BaselineError::Chain(e) => write!(f, "chain error: {e}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::TruthTable(e) => Some(e),
            BaselineError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TruthTableError> for BaselineError {
    fn from(e: TruthTableError) -> Self {
        BaselineError::TruthTable(e)
    }
}

impl From<ChainError> for BaselineError {
    fn from(e: ChainError) -> Self {
        BaselineError::Chain(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BaselineError::Timeout.to_string().contains("deadline"));
        assert!(BaselineError::GateLimitExceeded { max_gates: 9 }.to_string().contains('9'));
    }
}
