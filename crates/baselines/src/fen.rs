//! FEN: fence-restricted SAT exact synthesis.
//!
//! The algorithm of Haaswijk et al. (DAC'18 / TCAD'19): instead of one
//! big encoding over all topologies, iterate the fences of the current
//! gate count and solve one restricted SSV instance per fence. Each
//! gate is pinned to a fence level; its admissible fanin pairs must
//! draw at least one operand from the immediately lower level — a much
//! smaller topology space per SAT call, at the cost of more calls.

use stp_fence::{pruned_fences, Fence};
use stp_sat::SolveResult;
use stp_tt::TruthTable;

use crate::error::BaselineError;
use crate::ssv::{
    check_deadline, solve_under_deadline, trivial_chain, BaselineConfig, BaselineResult,
    SsvInstance, SsvOptions,
};

/// The admissible fanin pairs of gate `i` under a fence.
///
/// Gates are numbered bottom level first; inputs sit at level 0. A gate
/// at level `l` picks `j < k` among signals of level `< l`, at least
/// one of which has level exactly `l − 1`.
#[allow(clippy::needless_range_loop)]
fn fence_pairs(fence: &Fence, n: usize, i: usize) -> Vec<(usize, usize)> {
    // Level per gate index.
    let mut gate_level = Vec::with_capacity(fence.num_nodes());
    for (li, &count) in fence.levels().iter().enumerate() {
        for _ in 0..count {
            gate_level.push(li + 1);
        }
    }
    let level_of_signal = |s: usize| if s < n { 0 } else { gate_level[s - n] };
    let my_level = gate_level[i];
    let avail = n + i;
    let mut out = Vec::new();
    for j in 0..avail {
        for k in (j + 1)..avail {
            let (lj, lk) = (level_of_signal(j), level_of_signal(k));
            if lj < my_level && lk < my_level && lj.max(lk) == my_level - 1 {
                out.push((j, k));
            }
        }
    }
    out
}

/// Runs FEN exact synthesis over the pruned fence families.
///
/// # Errors
///
/// * [`BaselineError::Timeout`] when the deadline expires;
/// * [`BaselineError::GateLimitExceeded`] when no realization exists
///   within the configured gate limit.
///
/// # Examples
///
/// ```
/// use stp_baselines::{fen_synthesize, BaselineConfig};
/// use stp_tt::TruthTable;
///
/// let spec = TruthTable::from_hex(4, "8ff8")?;
/// let result = fen_synthesize(&spec, &BaselineConfig::default())?;
/// assert_eq!(result.gate_count, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fen_synthesize(
    spec: &TruthTable,
    config: &BaselineConfig,
) -> Result<BaselineResult, BaselineError> {
    if let Some(chain) = trivial_chain(spec) {
        return Ok(BaselineResult { chain, gate_count: 0, conflicts: 0, solver_calls: 0 });
    }
    let n = spec.num_vars();
    let start = spec.support().len().saturating_sub(1).max(1);
    let all_minterms: Vec<usize> = (0..spec.num_bits()).collect();
    let mut conflicts = 0u64;
    let mut solver_calls = 0u64;
    for r in start..=config.gate_limit() {
        for fence in pruned_fences(r) {
            check_deadline(config.deadline)?;
            // A gate must be able to pick two operands: the bottom level
            // can never exceed the available input count.
            if fence.levels()[0] > n * (n.saturating_sub(1)) / 2 {
                continue;
            }
            let mut inst = SsvInstance::build_with_options(
                spec,
                r,
                |i| fence_pairs(&fence, n, i),
                &all_minterms,
                SsvOptions::LEVELED,
            );
            solver_calls += 1;
            let result = solve_under_deadline(&mut inst.solver, config.deadline);
            conflicts += inst.solver.stats().conflicts;
            match result? {
                SolveResult::Sat => {
                    let chain = inst.decode()?;
                    debug_assert_eq!(chain.simulate_outputs()?[0], *spec);
                    return Ok(BaselineResult { chain, gate_count: r, conflicts, solver_calls });
                }
                SolveResult::Unsat => continue,
                SolveResult::Unknown => {
                    unreachable!("budget slices always resolve or time out")
                }
            }
        }
    }
    Err(BaselineError::GateLimitExceeded { max_gates: config.gate_limit() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_fence::Fence;

    #[test]
    fn fence_pairs_respect_levels() {
        // Fence (2, 1) over 4 inputs: gates 0 and 1 at level 1, gate 2
        // at level 2.
        let fence = Fence::new(vec![2, 1]).unwrap();
        // Level-1 gates read only inputs.
        for (j, k) in fence_pairs(&fence, 4, 0) {
            assert!(j < 4 && k < 4);
        }
        // The top gate must touch level 1 (signals 4 or 5).
        for (j, k) in fence_pairs(&fence, 4, 2) {
            assert!(k >= 4, "pair ({j},{k}) must include a level-1 gate");
        }
    }

    #[test]
    fn running_example_costs_three_gates() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = fen_synthesize(&spec, &BaselineConfig::default()).unwrap();
        assert_eq!(result.gate_count, 3);
        assert_eq!(result.chain.simulate_outputs().unwrap()[0], spec);
    }

    #[test]
    fn agrees_with_bms_on_small_functions() {
        for hex in ["8ff8", "6996", "7888"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let fen = fen_synthesize(&spec, &BaselineConfig::default()).unwrap();
            let bms = crate::bms::bms_synthesize(&spec, &BaselineConfig::default()).unwrap();
            assert_eq!(fen.gate_count, bms.gate_count, "hex {hex}");
        }
    }

    #[test]
    fn majority_costs_four_gates() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let result = fen_synthesize(&maj, &BaselineConfig::default()).unwrap();
        assert_eq!(result.gate_count, 4);
    }

    #[test]
    fn expired_deadline_times_out() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let config = BaselineConfig {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
            ..BaselineConfig::default()
        };
        assert!(matches!(fen_synthesize(&spec, &config), Err(BaselineError::Timeout)));
    }
}
