//! ABC-like baseline: CEGAR exact synthesis.
//!
//! ABC's exact-synthesis commands (and percy's default engine) avoid
//! constraining all `2^n` minterms upfront: they solve a relaxation over
//! a few minterms, simulate the decoded chain against the full
//! specification, and add the first disagreeing minterm as a
//! counterexample — repeating until the chain is correct (optimal `r`)
//! or the relaxation is UNSAT (increase `r`). This
//! counterexample-guided strategy is the closest open substitute for
//! ABC's `lutexact` reference point (see `DESIGN.md`).

use stp_sat::SolveResult;
use stp_tt::TruthTable;

use crate::error::BaselineError;
use crate::ssv::{
    check_deadline, solve_under_deadline, trivial_chain, unrestricted_pairs, BaselineConfig,
    BaselineResult, SsvInstance, SsvOptions,
};

/// Runs CEGAR (ABC-like) exact synthesis.
///
/// # Errors
///
/// * [`BaselineError::Timeout`] when the deadline expires;
/// * [`BaselineError::GateLimitExceeded`] when no realization exists
///   within the configured gate limit.
///
/// # Examples
///
/// ```
/// use stp_baselines::{abc_synthesize, BaselineConfig};
/// use stp_tt::TruthTable;
///
/// let spec = TruthTable::from_hex(4, "8ff8")?;
/// let result = abc_synthesize(&spec, &BaselineConfig::default())?;
/// assert_eq!(result.gate_count, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn abc_synthesize(
    spec: &TruthTable,
    config: &BaselineConfig,
) -> Result<BaselineResult, BaselineError> {
    if let Some(chain) = trivial_chain(spec) {
        return Ok(BaselineResult { chain, gate_count: 0, conflicts: 0, solver_calls: 0 });
    }
    let n = spec.num_vars();
    let start = spec.support().len().saturating_sub(1).max(1);
    let mut conflicts = 0u64;
    let mut solver_calls = 0u64;
    for r in start..=config.gate_limit() {
        check_deadline(config.deadline)?;
        // Seed the relaxation with one ON and one OFF minterm when
        // available; the output pins alone say nothing until a minterm's
        // gate semantics exist.
        let on = (0..spec.num_bits()).find(|&t| spec.bit(t));
        let off = (0..spec.num_bits()).find(|&t| !spec.bit(t));
        let seeds: Vec<usize> = on.into_iter().chain(off).collect();
        let mut inst = SsvInstance::build_with_options(
            spec,
            r,
            |i| unrestricted_pairs(n, i),
            &seeds,
            SsvOptions::UNRESTRICTED,
        );
        #[allow(clippy::mut_range_bound)]
        let feasible = loop {
            solver_calls += 1;
            let result = solve_under_deadline(&mut inst.solver, config.deadline);
            conflicts += inst.solver.stats().conflicts;
            match result? {
                SolveResult::Unsat => break None,
                SolveResult::Unknown => unreachable!("budget slices always resolve or time out"),
                SolveResult::Sat => {
                    let chain = inst.decode()?;
                    match inst.counterexample(&chain)? {
                        None => break Some(chain),
                        Some(t) => {
                            // Refine: constrain the counterexample
                            // minterm and re-solve incrementally.
                            inst.constrain_minterm(t);
                        }
                    }
                }
            }
        };
        if let Some(chain) = feasible {
            debug_assert_eq!(chain.simulate_outputs()?[0], *spec);
            return Ok(BaselineResult { chain, gate_count: r, conflicts, solver_calls });
        }
    }
    Err(BaselineError::GateLimitExceeded { max_gates: config.gate_limit() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_costs_three_gates() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = abc_synthesize(&spec, &BaselineConfig::default()).unwrap();
        assert_eq!(result.gate_count, 3);
        assert_eq!(result.chain.simulate_outputs().unwrap()[0], spec);
    }

    #[test]
    fn cegar_refines_with_counterexamples() {
        // XOR4 forces several refinements.
        let spec = TruthTable::from_fn(4, |a| a.iter().fold(false, |x, &b| x ^ b)).unwrap();
        let result = abc_synthesize(&spec, &BaselineConfig::default()).unwrap();
        assert_eq!(result.gate_count, 3);
        assert!(result.solver_calls > 1, "CEGAR must refine at least once");
    }

    #[test]
    fn agrees_with_bms_on_npn_sample() {
        for hex in ["8ff8", "6996", "1ee1", "0660"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let cegar = abc_synthesize(&spec, &BaselineConfig::default()).unwrap();
            let bms = crate::bms::bms_synthesize(&spec, &BaselineConfig::default()).unwrap();
            assert_eq!(cegar.gate_count, bms.gate_count, "hex {hex}");
        }
    }

    #[test]
    fn majority_costs_four_gates() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let result = abc_synthesize(&maj, &BaselineConfig::default()).unwrap();
        assert_eq!(result.gate_count, 4);
    }

    #[test]
    fn expired_deadline_times_out() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let config = BaselineConfig {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
            ..BaselineConfig::default()
        };
        assert!(matches!(abc_synthesize(&spec, &config), Err(BaselineError::Timeout)));
    }
}
