//! CNF-SAT exact-synthesis baselines: BMS, FEN, and an ABC-like CEGAR
//! engine.
//!
//! These are the three reference points of Table I in *"Exact Synthesis
//! Based on Semi-Tensor Product Circuit Solver"* (Pan & Chu, DATE 2023):
//!
//! * [`bms_synthesize`] — **BMS**: the baseline single-solver SSV
//!   encoding ("Busy Man's Synthesis", Soeken et al., DATE'17);
//! * [`fen_synthesize`] — **FEN**: fence enumeration with topological
//!   constraints (Haaswijk et al., DAC'18/TCAD'19);
//! * [`abc_synthesize`] — **ABC-like**: CEGAR minterm refinement, the
//!   strategy family behind ABC's exact-synthesis commands (the paper
//!   benchmarks `lutexact`; see `DESIGN.md` for the substitution note).
//!
//! All three run on the workspace's own CDCL solver (`stp-sat`) and
//! return a single optimum chain — in contrast to the STP engine
//! (`stp-synth`), which returns *all* optimum chains in one pass.
//!
//! # Quick start
//!
//! ```
//! use stp_baselines::{bms_synthesize, BaselineConfig};
//! use stp_tt::TruthTable;
//!
//! let spec = TruthTable::from_hex(4, "8ff8")?;
//! let result = bms_synthesize(&spec, &BaselineConfig::default())?;
//! assert_eq!(result.gate_count, 3);
//! assert_eq!(result.chain.simulate_outputs()?[0], spec);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bms;
mod cegar;
mod error;
mod fen;
mod ssv;

pub use bms::bms_synthesize;
pub use cegar::abc_synthesize;
pub use error::BaselineError;
pub use fen::fen_synthesize;
pub use ssv::{unrestricted_pairs, BaselineConfig, BaselineResult, SsvInstance, SsvOptions};
