//! Property-based tests for fences, shapes, and DAG generation.

use proptest::prelude::*;
use stp_fence::{
    all_fences, dags_for_fence, pruned_fences, shapes_for_fence, shapes_with_gates, Fanin, Fence,
    TreeShape,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// |F_k| = 2^{k−1}, and every fence partitions its k nodes.
    #[test]
    fn fence_family_sizes(k in 1usize..=9) {
        let fences = all_fences(k);
        prop_assert_eq!(fences.len(), 1usize << (k - 1));
        for f in &fences {
            prop_assert_eq!(f.num_nodes(), k);
            prop_assert!(f.levels().iter().all(|&c| c >= 1));
        }
    }

    /// Pruned fences satisfy both §III-A rules.
    #[test]
    fn pruned_fences_satisfy_rules(k in 1usize..=9) {
        for f in pruned_fences(k) {
            prop_assert_eq!(f.top_count(), 1);
            for w in f.levels().windows(2) {
                prop_assert!(w[0] <= 2 * w[1]);
            }
        }
    }

    /// Every canonical shape partitions into exactly one fence, and the
    /// fence's node count matches the shape's gate count.
    #[test]
    fn shape_fence_consistency(gates in 1usize..=7) {
        let shapes = shapes_with_gates(gates);
        for shape in &shapes {
            prop_assert!(shape.is_canonical());
            let fence = shape.fence().expect("non-leaf shapes have fences");
            prop_assert_eq!(fence.num_nodes(), gates);
            prop_assert!(shapes_for_fence(&fence).contains(shape));
        }
        // Partition: each shape appears under exactly one fence.
        let mut total = 0usize;
        for fence in all_fences(gates) {
            total += shapes_for_fence(&fence).len();
        }
        prop_assert_eq!(total, shapes.len());
    }

    /// Tree shapes always carry one more leaf than gates.
    #[test]
    fn leaves_exceed_gates_by_one(gates in 0usize..=8) {
        for shape in shapes_with_gates(gates) {
            prop_assert_eq!(shape.leaf_count(), gates + 1);
        }
    }

    /// Node constructor canonicalizes regardless of argument order.
    #[test]
    fn node_is_order_insensitive(g1 in 0usize..=3, g2 in 0usize..=3) {
        let s1 = shapes_with_gates(g1);
        let s2 = shapes_with_gates(g2);
        for a in s1.iter().take(3) {
            for b in s2.iter().take(3) {
                prop_assert_eq!(
                    TreeShape::node(a.clone(), b.clone()),
                    TreeShape::node(b.clone(), a.clone())
                );
            }
        }
    }

    /// Generated DAGs satisfy the fence semantics and the fanout rule.
    #[test]
    fn dag_invariants(k in 1usize..=5) {
        for fence in pruned_fences(k) {
            for dag in dags_for_fence(&fence) {
                let nodes = dag.nodes();
                prop_assert_eq!(nodes.len(), k);
                let mut fanout = vec![0usize; k];
                for (i, node) in nodes.iter().enumerate() {
                    for f in node.fanin {
                        if let Fanin::Node(j) = f {
                            prop_assert!(j < i);
                            prop_assert!(nodes[j].level < node.level);
                            fanout[j] += 1;
                        }
                    }
                    if node.level > 1 {
                        prop_assert!(node.fanin.iter().any(|f| matches!(
                            f,
                            Fanin::Node(j) if nodes[*j].level == node.level - 1
                        )));
                    } else {
                        prop_assert!(node
                            .fanin
                            .iter()
                            .all(|f| matches!(f, Fanin::OpenInput)));
                    }
                }
                prop_assert!(fanout[..k - 1].iter().all(|&c| c >= 1));
            }
        }
    }

    /// Fence display round-trips through its levels.
    #[test]
    fn fence_display(levels in proptest::collection::vec(1usize..=4, 1..=4)) {
        let fence = Fence::new(levels.clone()).expect("positive levels");
        let text = format!("{fence}");
        let parsed: Vec<usize> = text
            .trim_matches(|c| c == '(' || c == ')')
            .split(", ")
            .map(|t| t.parse().unwrap())
            .collect();
        prop_assert_eq!(parsed, levels);
    }
}
