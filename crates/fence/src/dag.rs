//! Partial DAGs generated from fences (Fig. 3 of the paper).
//!
//! A fence fixes how many gate nodes sit on each level; a *partial DAG*
//! adds connectivity: every node receives two distinct fanins, each
//! either an earlier gate node or an **open input slot** (to be bound to
//! a primary input later — that binding is the synthesizer's job, not
//! the topology's). Following the fence semantics of Haaswijk et al.
//! (DAC'18), every node above the bottom level takes at least one fanin
//! from the *immediately lower* level, and every non-top node must feed
//! some later node.
//!
//! DAGs are deduplicated up to permuting nodes within a level (node
//! identity inside a level is meaningless).

use std::collections::BTreeSet;
use std::fmt;

use crate::fence::Fence;

/// A fanin of a DAG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fanin {
    /// An earlier gate node, by index.
    Node(usize),
    /// An open primary-input slot.
    OpenInput,
}

/// A gate node inside a [`FenceDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DagNode {
    /// 1-based level (bottom gate level is 1).
    pub level: usize,
    /// The two fanins, stored sorted (fanins are unordered).
    pub fanin: [Fanin; 2],
}

/// A partial DAG: gate nodes in level order (bottom first), each with
/// two fanins that are earlier nodes or open input slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FenceDag {
    fence: Fence,
    nodes: Vec<DagNode>,
}

impl FenceDag {
    /// The fence this DAG instantiates.
    pub fn fence(&self) -> &Fence {
        &self.fence
    }

    /// The gate nodes, bottom level first.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Number of gate nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of open primary-input slots.
    pub fn open_input_count(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.fanin.iter())
            .filter(|f| matches!(f, Fanin::OpenInput))
            .count()
    }

    /// `true` when every non-top node feeds exactly one later node — the
    /// DAG is a tree and reconvergence can only enter through shared
    /// primary inputs (the paper's `M_r` case).
    pub fn is_tree(&self) -> bool {
        let mut fanout = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for f in node.fanin {
                if let Fanin::Node(i) = f {
                    fanout[i] += 1;
                }
            }
        }
        fanout[..self.nodes.len() - 1].iter().all(|&c| c == 1)
    }
}

impl fmt::Display for FenceDag {
    /// One line per node, e.g. `n3@L2 = (n1, n2)`, with `pi` marking open
    /// slots.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, node) in self.nodes.iter().enumerate() {
            let show = |fi: &Fanin| match fi {
                Fanin::Node(j) => format!("n{}", j + 1),
                Fanin::OpenInput => "pi".to_string(),
            };
            writeln!(
                f,
                "n{}@L{} = ({}, {})",
                i + 1,
                node.level,
                show(&node.fanin[0]),
                show(&node.fanin[1])
            )?;
        }
        Ok(())
    }
}

/// Generates all valid partial DAGs for a fence, deduplicated up to
/// within-level node permutations.
///
/// Validity: every node has two distinct fanins; nodes above level 1
/// take at least one fanin from the immediately lower level; level-1
/// nodes read two open input slots; every non-top node has at least one
/// fanout.
pub fn dags_for_fence(fence: &Fence) -> Vec<FenceDag> {
    let levels = fence.levels();
    let k = fence.num_nodes();
    // Node index ranges per level.
    let mut level_of = Vec::with_capacity(k);
    for (li, &count) in levels.iter().enumerate() {
        for _ in 0..count {
            level_of.push(li + 1);
        }
    }
    let first_of_level: Vec<usize> = {
        let mut acc = 0;
        let mut v = Vec::with_capacity(levels.len());
        for &c in levels {
            v.push(acc);
            acc += c;
        }
        v
    };

    // Candidate fanin pairs per node.
    let mut candidates: Vec<Vec<[Fanin; 2]>> = Vec::with_capacity(k);
    #[allow(clippy::needless_range_loop)]
    for idx in 0..k {
        let level = level_of[idx];
        if level == 1 {
            candidates.push(vec![[Fanin::OpenInput, Fanin::OpenInput]]);
            continue;
        }
        let below_start = first_of_level[level - 2];
        let below_end = first_of_level[level - 1];
        let mut pairs = BTreeSet::new();
        for a in below_start..below_end {
            // Second fanin: any strictly lower node, or an open input.
            for b in 0..below_end {
                if b != a {
                    let mut pair = [Fanin::Node(a), Fanin::Node(b)];
                    pair.sort();
                    pairs.insert(pair);
                }
            }
            pairs.insert([Fanin::Node(a), Fanin::OpenInput]);
        }
        candidates.push(pairs.into_iter().collect());
    }

    // Cartesian product with the fanout constraint, then canonical dedup.
    let mut out = BTreeSet::new();
    let mut choice = vec![0usize; k];
    'outer: loop {
        let nodes: Vec<DagNode> = (0..k)
            .map(|i| DagNode { level: level_of[i], fanin: candidates[i][choice[i]] })
            .collect();
        if fanouts_ok(&nodes) {
            out.insert(canonical_signature(fence, &nodes));
        }
        // Advance the mixed-radix counter.
        for i in 0..k {
            choice[i] += 1;
            if choice[i] < candidates[i].len() {
                continue 'outer;
            }
            choice[i] = 0;
        }
        break;
    }
    stp_telemetry::counter!("fence.dags_generated").add(out.len() as u64);
    out.into_iter().map(|nodes| FenceDag { fence: fence.clone(), nodes }).collect()
}

fn fanouts_ok(nodes: &[DagNode]) -> bool {
    let k = nodes.len();
    let mut fanout = vec![0usize; k];
    for node in nodes {
        for f in node.fanin {
            if let Fanin::Node(i) = f {
                fanout[i] += 1;
            }
        }
    }
    fanout[..k - 1].iter().all(|&c| c >= 1)
}

/// Relabels nodes within each level to the lexicographically smallest
/// equivalent node list.
fn canonical_signature(fence: &Fence, nodes: &[DagNode]) -> Vec<DagNode> {
    let levels = fence.levels();
    let mut best: Option<Vec<DagNode>> = None;
    // Permutations within each level; level sizes are tiny (≤ 4 for the
    // fences exact synthesis visits), so brute force is fine.
    let mut level_perms: Vec<Vec<Vec<usize>>> = Vec::new();
    for &c in levels {
        level_perms.push(permutations(c));
    }
    let first_of_level: Vec<usize> = {
        let mut acc = 0;
        let mut v = Vec::new();
        for &c in levels {
            v.push(acc);
            acc += c;
        }
        v
    };
    let mut idx = vec![0usize; levels.len()];
    'outer: loop {
        // Build the relabeling map.
        let mut map = vec![0usize; nodes.len()];
        for (li, &start) in first_of_level.iter().enumerate() {
            let perm = &level_perms[li][idx[li]];
            for (offset, &p) in perm.iter().enumerate() {
                map[start + offset] = start + p;
            }
        }
        let mut relabeled: Vec<DagNode> =
            vec![DagNode { level: 0, fanin: [Fanin::OpenInput, Fanin::OpenInput] }; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            let mut fanin = node.fanin.map(|f| match f {
                Fanin::Node(j) => Fanin::Node(map[j]),
                Fanin::OpenInput => Fanin::OpenInput,
            });
            fanin.sort();
            relabeled[map[i]] = DagNode { level: node.level, fanin };
        }
        let key: Vec<_> = relabeled.iter().map(|n| (n.level, n.fanin)).collect();
        let better = match &best {
            None => true,
            Some(b) => {
                let bkey: Vec<_> = b.iter().map(|n| (n.level, n.fanin)).collect();
                key < bkey
            }
        };
        if better {
            best = Some(relabeled);
        }
        for li in 0..levels.len() {
            idx[li] += 1;
            if idx[li] < level_perms[li].len() {
                continue 'outer;
            }
            idx[li] = 0;
        }
        break;
    }
    best.expect("at least the identity permutation is considered")
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    fn heap(k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, cur, out);
            if k.is_multiple_of(2) {
                cur.swap(i, k - 1);
            } else {
                cur.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut cur, &mut out);
    out
}

/// Generates all valid partial DAGs across the pruned fence family of
/// `k` nodes — the paper's Fig. 3 family for `k = 3`.
pub fn dags_for_pruned_fences(k: usize) -> Vec<FenceDag> {
    crate::fence::pruned_fences(k).iter().flat_map(dags_for_fence).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fence::pruned_fences;

    #[test]
    fn f3_valid_dags() {
        // Pruned F_3 = {(2,1), (1,1,1)}.
        let fences = pruned_fences(3);
        // (2,1): the only valid DAG is the balanced tree (both bottom
        // nodes must feed the top for the fanout rule to hold).
        let balanced = dags_for_fence(&fences[0]);
        assert_eq!(balanced.len(), 1);
        assert_eq!(balanced[0].open_input_count(), 4);
        assert!(balanced[0].is_tree());
        // (1,1,1): the open chain and the reconvergent chain.
        let chains = dags_for_fence(&fences[1]);
        assert_eq!(chains.len(), 2);
        let open_counts: BTreeSet<usize> = chains.iter().map(FenceDag::open_input_count).collect();
        assert_eq!(open_counts, BTreeSet::from([3, 4]));
        // Exactly one of them is a tree.
        assert_eq!(chains.iter().filter(|d| d.is_tree()).count(), 1);
    }

    #[test]
    fn all_dags_satisfy_fence_semantics() {
        for k in 2..=5 {
            for dag in dags_for_pruned_fences(k) {
                let nodes = dag.nodes();
                for (i, node) in nodes.iter().enumerate() {
                    // Distinct fanins.
                    assert!(
                        !((node.fanin[0] == node.fanin[1])
                            && matches!(node.fanin[0], Fanin::Node(_))),
                        "node {i} has duplicate gate fanins"
                    );
                    // Fanins strictly earlier.
                    for f in node.fanin {
                        if let Fanin::Node(j) = f {
                            assert!(j < i, "fanin must be earlier");
                            assert!(nodes[j].level < node.level);
                        }
                    }
                    // At least one fanin on the immediately lower level.
                    if node.level > 1 {
                        assert!(
                            node.fanin.iter().any(|f| matches!(
                                f,
                                Fanin::Node(j) if nodes[*j].level == node.level - 1
                            )),
                            "node {i} skips its lower level"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_non_top_node_has_fanout() {
        for dag in dags_for_pruned_fences(4) {
            let nodes = dag.nodes();
            let mut fanout = vec![0usize; nodes.len()];
            for node in nodes {
                for f in node.fanin {
                    if let Fanin::Node(j) = f {
                        fanout[j] += 1;
                    }
                }
            }
            assert!(fanout[..nodes.len() - 1].iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn dags_are_deduplicated() {
        // (2, 2, 1): permuting the two level-2 nodes must not create
        // duplicates.
        let fence = Fence::new(vec![2, 2, 1]).unwrap();
        let dags = dags_for_fence(&fence);
        let set: BTreeSet<String> = dags.iter().map(|d| format!("{d}")).collect();
        assert_eq!(set.len(), dags.len());
    }

    #[test]
    fn display_lists_nodes() {
        let fence = Fence::new(vec![2, 1]).unwrap();
        let dags = dags_for_fence(&fence);
        let text = format!("{}", dags[0]);
        assert!(text.contains("n1@L1 = (pi, pi)"));
        assert!(text.contains("n3@L2 = (n1, n2)"));
    }

    #[test]
    fn single_node_fence() {
        let fence = Fence::new(vec![1]).unwrap();
        let dags = dags_for_fence(&fence);
        assert_eq!(dags.len(), 1);
        assert_eq!(dags[0].open_input_count(), 2);
        assert!(dags[0].is_tree());
    }
}
