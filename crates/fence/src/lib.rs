//! Boolean fence topology families and DAG generation (§III-A of the
//! paper).
//!
//! Exact synthesis explores candidate network topologies by *fences*:
//! partitions of `k` gate nodes over `l` levels. This crate provides
//!
//! * [`Fence`], [`all_fences`], [`pruned_fences`] — the families `F(k,l)`
//!   and `F_k`, with the paper's pruning rules (single top node, each
//!   level at most twice the level above) — Fig. 2;
//! * [`TreeShape`], [`shapes_with_gates`], [`shapes_for_fence`] — the
//!   unordered binary-tree skeletons the STP factorization engine
//!   consumes;
//! * [`FenceDag`], [`dags_for_fence`], [`dags_for_pruned_fences`] —
//!   partial DAGs with explicit connectivity and open input slots —
//!   Fig. 3.
//!
//! # Quick start
//!
//! ```
//! use stp_fence::{all_fences, pruned_fences};
//!
//! // Fig. 2: F_3 has four fences, of which two survive pruning.
//! assert_eq!(all_fences(3).len(), 4);
//! assert_eq!(pruned_fences(3).len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dag;
mod fence;
mod shape;

pub use dag::{dags_for_fence, dags_for_pruned_fences, DagNode, Fanin, FenceDag};
pub use fence::{all_fences, fences_with_levels, pruned_fences, Fence};
pub use shape::{shapes_for_fence, shapes_with_gates, TreeShape};
