//! Unordered binary tree shapes.
//!
//! The STP factorization engine (crate `stp-synth`) assigns gate
//! operators to *tree-structured* partial DAGs; reconvergence enters
//! through repeated primary-input leaves (the paper's power-reducing
//! matrix `M_r`, Property 3). A [`TreeShape`] is the skeleton of such a
//! DAG: a binary tree with unlabelled leaves, considered up to swapping
//! children (the gate operator library is closed under argument
//! swapping, so ordered variants are redundant).
//!
//! Every shape maps to the [`Fence`] counting its internal nodes per
//! level, which is how the paper's fence pruning (§III-A) filters the
//! topology search.

use std::fmt;

use crate::fence::Fence;

/// An unordered binary tree shape: leaves are open primary-input slots,
/// internal nodes are 2-input gates.
///
/// The canonical representative orders every node's children so the
/// "smaller" subtree comes first; [`shapes_with_gates`] only produces
/// canonical shapes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TreeShape {
    /// An open leaf (to be bound to a primary input).
    Leaf,
    /// An internal 2-input gate over two subtrees.
    Node(Box<TreeShape>, Box<TreeShape>),
}

impl TreeShape {
    /// Builds a canonical internal node (children sorted).
    pub fn node(a: TreeShape, b: TreeShape) -> TreeShape {
        if a <= b {
            TreeShape::Node(Box::new(a), Box::new(b))
        } else {
            TreeShape::Node(Box::new(b), Box::new(a))
        }
    }

    /// Number of internal (gate) nodes.
    pub fn gate_count(&self) -> usize {
        match self {
            TreeShape::Leaf => 0,
            TreeShape::Node(a, b) => 1 + a.gate_count() + b.gate_count(),
        }
    }

    /// Number of leaves (open primary-input slots).
    pub fn leaf_count(&self) -> usize {
        self.gate_count() + 1
    }

    /// Height with leaves at level 0.
    pub fn height(&self) -> usize {
        match self {
            TreeShape::Leaf => 0,
            TreeShape::Node(a, b) => 1 + a.height().max(b.height()),
        }
    }

    /// The fence of this shape: internal-node counts per level (level of
    /// a gate is one more than its taller child; leaves sit at level 0
    /// and are not counted).
    ///
    /// Returns `None` for a bare leaf, which has no gates and therefore
    /// no fence.
    pub fn fence(&self) -> Option<Fence> {
        let h = self.height();
        if h == 0 {
            return None;
        }
        let mut counts = vec![0usize; h];
        self.count_levels(&mut counts);
        Fence::new(counts)
    }

    fn count_levels(&self, counts: &mut [usize]) {
        if let TreeShape::Node(a, b) = self {
            counts[self.height() - 1] += 1;
            a.count_levels(counts);
            b.count_levels(counts);
        }
    }

    /// `true` when this is the canonical representative (every node's
    /// first child is ≤ its second).
    pub fn is_canonical(&self) -> bool {
        match self {
            TreeShape::Leaf => true,
            TreeShape::Node(a, b) => a <= b && a.is_canonical() && b.is_canonical(),
        }
    }
}

impl fmt::Display for TreeShape {
    /// Renders with parentheses, leaves as `*`: e.g. `((* *) (* *))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeShape::Leaf => write!(f, "*"),
            TreeShape::Node(a, b) => write!(f, "({a} {b})"),
        }
    }
}

/// Enumerates all canonical tree shapes with exactly `gates` internal
/// nodes (`gates + 1` leaves). The counts follow the
/// Wedderburn–Etherington numbers: 1, 1, 2, 3, 6, 11, 23, … shapes for
/// 1, 2, 3, … gates.
pub fn shapes_with_gates(gates: usize) -> Vec<TreeShape> {
    let out = shapes_with_leaves(gates + 1);
    stp_telemetry::counter!("fence.shapes_generated").add(out.len() as u64);
    out
}

fn shapes_with_leaves(leaves: usize) -> Vec<TreeShape> {
    if leaves == 0 {
        return Vec::new();
    }
    if leaves == 1 {
        return vec![TreeShape::Leaf];
    }
    let mut out = Vec::new();
    for left in 1..=(leaves / 2) {
        let right = leaves - left;
        let ls = shapes_with_leaves(left);
        let rs = shapes_with_leaves(right);
        if left == right {
            for (i, a) in ls.iter().enumerate() {
                for b in &rs[i..] {
                    out.push(TreeShape::node(a.clone(), b.clone()));
                }
            }
        } else {
            for a in &ls {
                for b in &rs {
                    out.push(TreeShape::node(a.clone(), b.clone()));
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Enumerates the canonical shapes with `gates` internal nodes whose
/// fence equals `fence` — the tree members of the fence's DAG family.
pub fn shapes_for_fence(fence: &Fence) -> Vec<TreeShape> {
    shapes_with_gates(fence.num_nodes())
        .into_iter()
        .filter(|s| s.fence().as_ref() == Some(fence))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wedderburn_etherington_counts() {
        // Shapes with n leaves: 1, 1, 1, 2, 3, 6, 11, 23, 46, 98.
        let expected = [1usize, 1, 2, 3, 6, 11, 23, 46, 98];
        for (gates, &count) in expected.iter().enumerate() {
            assert_eq!(shapes_with_gates(gates + 1).len(), count, "gates = {}", gates + 1);
        }
    }

    #[test]
    fn all_generated_shapes_are_canonical_and_distinct() {
        let shapes = shapes_with_gates(6);
        for s in &shapes {
            assert!(s.is_canonical());
            assert_eq!(s.gate_count(), 6);
            assert_eq!(s.leaf_count(), 7);
        }
        let mut sorted = shapes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), shapes.len());
    }

    #[test]
    fn balanced_tree_fence() {
        // ((* *) (* *)): three gates, fence (2, 1) — Fig. 3(a).
        let leaf = TreeShape::Leaf;
        let pair = TreeShape::node(leaf.clone(), leaf.clone());
        let balanced = TreeShape::node(pair.clone(), pair.clone());
        assert_eq!(balanced.gate_count(), 3);
        assert_eq!(balanced.fence().unwrap().levels(), &[2, 1]);
        assert_eq!(balanced.height(), 2);
    }

    #[test]
    fn chain_tree_fence() {
        // (((* *) *) *): three gates in a chain, fence (1, 1, 1).
        let leaf = TreeShape::Leaf;
        let c1 = TreeShape::node(leaf.clone(), leaf.clone());
        let c2 = TreeShape::node(c1, leaf.clone());
        let c3 = TreeShape::node(c2, leaf.clone());
        assert_eq!(c3.fence().unwrap().levels(), &[1, 1, 1]);
    }

    #[test]
    fn leaf_has_no_fence() {
        assert!(TreeShape::Leaf.fence().is_none());
    }

    #[test]
    fn shapes_for_fence_partition_the_family() {
        // Every 4-gate shape belongs to exactly one fence.
        let shapes = shapes_with_gates(4);
        let mut total = 0usize;
        for fence in crate::fence::all_fences(4) {
            total += shapes_for_fence(&fence).len();
        }
        assert_eq!(total, shapes.len());
    }

    #[test]
    fn node_constructor_canonicalizes() {
        let leaf = TreeShape::Leaf;
        let pair = TreeShape::node(leaf.clone(), leaf.clone());
        let a = TreeShape::node(pair.clone(), leaf.clone());
        let b = TreeShape::node(leaf, pair);
        assert_eq!(a, b);
    }

    #[test]
    fn display_round_trips_structure() {
        let leaf = TreeShape::Leaf;
        let pair = TreeShape::node(leaf.clone(), leaf.clone());
        let t = TreeShape::node(pair, leaf);
        assert_eq!(format!("{t}"), "(* (* *))");
    }
}
