//! Boolean fences (§III-A of the paper).
//!
//! Given integers `k` and `l` with `1 ≤ l ≤ k`, a *Boolean fence* is a
//! partition of `k` nodes over `l` levels where each level holds at least
//! one node; `F(k, l)` is the family of all such fences and
//! `F_k = { F(k, l) | 1 ≤ l ≤ k }` the family over all level counts
//! (Fig. 2a shows `F_3`).
//!
//! The paper prunes `F_k` with two rules (Fig. 2b):
//!
//! 1. single-output synthesis needs exactly **one node on the top level**;
//! 2. because operators are 2-input, a level may hold **at most twice as
//!    many nodes as the level above it** ("no more than two nodes between
//!    a higher logic level and each lower logic level").

use std::fmt;

/// A Boolean fence: node counts per level, bottom level first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fence {
    levels: Vec<usize>,
}

impl Fence {
    /// Creates a fence from per-level node counts (bottom level first).
    ///
    /// Returns `None` when any level is empty or no levels are given —
    /// such shapes are not fences.
    pub fn new(levels: Vec<usize>) -> Option<Self> {
        if levels.is_empty() || levels.contains(&0) {
            None
        } else {
            Some(Fence { levels })
        }
    }

    /// Node counts per level, bottom level first.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Total number of nodes, `k`.
    pub fn num_nodes(&self) -> usize {
        self.levels.iter().sum()
    }

    /// Number of levels, `l`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of nodes on the top level.
    pub fn top_count(&self) -> usize {
        *self.levels.last().expect("fences have at least one level")
    }

    /// `true` when the fence survives the paper's pruning: a single top
    /// node and each level at most twice the size of the level above.
    pub fn is_pruned_valid(&self) -> bool {
        self.top_count() == 1 && self.levels.windows(2).all(|w| w[0] <= 2 * w[1])
    }
}

impl fmt::Display for Fence {
    /// Renders as `(bottom, …, top)`, e.g. `(2, 1)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Enumerates `F(k, l)`: all fences with `k` nodes over exactly `l`
/// levels (compositions of `k` into `l` positive parts), in
/// lexicographic order.
///
/// Returns an empty vector when `l == 0`, `k == 0`, or `l > k`.
pub fn fences_with_levels(k: usize, l: usize) -> Vec<Fence> {
    let mut out = Vec::new();
    if l == 0 || k == 0 || l > k {
        return out;
    }
    let mut cur = Vec::with_capacity(l);
    fn recurse(remaining: usize, levels_left: usize, cur: &mut Vec<usize>, out: &mut Vec<Fence>) {
        if levels_left == 1 {
            cur.push(remaining);
            out.push(Fence { levels: cur.clone() });
            cur.pop();
            return;
        }
        // Leave at least one node per remaining level.
        for c in 1..=(remaining - (levels_left - 1)) {
            cur.push(c);
            recurse(remaining - c, levels_left - 1, cur, out);
            cur.pop();
        }
    }
    recurse(k, l, &mut cur, &mut out);
    stp_telemetry::counter!("fence.fences_generated").add(out.len() as u64);
    out
}

/// Enumerates the full family `F_k` (all level counts), bottom-up level
/// count first — Fig. 2a for `k = 3`.
pub fn all_fences(k: usize) -> Vec<Fence> {
    (1..=k).flat_map(|l| fences_with_levels(k, l)).collect()
}

/// Enumerates the pruned family used by the paper (Fig. 2b for `k = 3`):
/// single top node, each level at most twice the level above.
pub fn pruned_fences(k: usize) -> Vec<Fence> {
    let full = all_fences(k);
    let total = full.len();
    let kept: Vec<Fence> = full.into_iter().filter(Fence::is_pruned_valid).collect();
    stp_telemetry::counter!("fence.fences_pruned").add((total - kept.len()) as u64);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_has_four_fences() {
        // Fig. 2a: F_3 = {(3), (1,2), (2,1), (1,1,1)}.
        let fences = all_fences(3);
        assert_eq!(fences.len(), 4);
        let as_vecs: Vec<&[usize]> = fences.iter().map(|f| f.levels()).collect();
        assert!(as_vecs.contains(&&[3][..]));
        assert!(as_vecs.contains(&&[1, 2][..]));
        assert!(as_vecs.contains(&&[2, 1][..]));
        assert!(as_vecs.contains(&&[1, 1, 1][..]));
    }

    #[test]
    fn pruned_f3_matches_paper() {
        // Fig. 2b: only (2, 1) and (1, 1, 1) survive.
        let fences = pruned_fences(3);
        let as_vecs: Vec<&[usize]> = fences.iter().map(|f| f.levels()).collect();
        assert_eq!(as_vecs, vec![&[2, 1][..], &[1, 1, 1][..]]);
    }

    #[test]
    fn fence_counts_are_compositions() {
        // |F_k| = 2^{k−1} (number of compositions of k).
        for k in 1..=8 {
            assert_eq!(all_fences(k).len(), 1 << (k - 1), "k={k}");
        }
    }

    #[test]
    fn fences_partition_nodes() {
        for fence in all_fences(5) {
            assert_eq!(fence.num_nodes(), 5);
            assert!(fence.levels().iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn pruning_rules() {
        assert!(Fence::new(vec![2, 1]).unwrap().is_pruned_valid());
        assert!(Fence::new(vec![4, 2, 1]).unwrap().is_pruned_valid());
        // Top level must hold one node.
        assert!(!Fence::new(vec![1, 2]).unwrap().is_pruned_valid());
        // 3 > 2 × 1.
        assert!(!Fence::new(vec![3, 1]).unwrap().is_pruned_valid());
        assert!(!Fence::new(vec![3, 1, 1]).unwrap().is_pruned_valid());
    }

    #[test]
    fn invalid_fences_rejected() {
        assert!(Fence::new(vec![]).is_none());
        assert!(Fence::new(vec![2, 0, 1]).is_none());
    }

    #[test]
    fn fences_with_levels_edge_cases() {
        assert!(fences_with_levels(3, 0).is_empty());
        assert!(fences_with_levels(0, 1).is_empty());
        assert!(fences_with_levels(2, 3).is_empty());
        assert_eq!(fences_with_levels(4, 1).len(), 1);
        assert_eq!(fences_with_levels(4, 4).len(), 1);
    }

    #[test]
    fn display_format() {
        let f = Fence::new(vec![2, 1]).unwrap();
        assert_eq!(format!("{f}"), "(2, 1)");
    }

    #[test]
    fn pruned_families_grow_slowly() {
        // The pruned family is much smaller than the full family — the
        // point of §III-A.
        for k in 3..=9 {
            let full = all_fences(k).len();
            let pruned = pruned_fences(k).len();
            assert!(pruned < full, "pruning must remove fences for k={k}");
        }
    }
}
