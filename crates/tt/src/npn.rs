//! NPN classification of Boolean functions.
//!
//! Two functions are *NPN-equivalent* when one can be obtained from the
//! other by negating inputs, permuting inputs, and negating the output
//! (§III-A of the paper, citing Petkovska et al.). Exact synthesis only
//! needs one representative per class, which is how the paper's `NPN4`
//! suite (all 222 classes of 4-input functions) is built.
//!
//! [`canonicalize`] performs exhaustive canonization — `n! · 2^n · 2`
//! transforms — which is the right tool for `n ≤ 5`; the paper's suites
//! never need more.

use crate::error::TruthTableError;
use crate::truth_table::TruthTable;

/// An NPN transform: permute inputs, complement a subset of inputs, and
/// optionally complement the output.
///
/// Applying the transform computes
/// `g(x_0, …, x_{n−1}) = f(y_0, …, y_{n−1}) ^ output_negated`, where
/// `y_{perm[i]} = x_i ^ input_negated_bit(perm[i])` — i.e. `perm` maps new
/// positions to old positions and negations are expressed on the *old*
/// inputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// Input permutation: new variable `i` reads old variable `perm[i]`.
    pub perm: Vec<usize>,
    /// Bitmask of *old* inputs that are complemented before permutation.
    pub input_negations: u32,
    /// Whether the output is complemented.
    pub output_negated: bool,
}

impl NpnTransform {
    /// The identity transform on `n` variables.
    pub fn identity(n: usize) -> Self {
        NpnTransform { perm: (0..n).collect(), input_negations: 0, output_negated: false }
    }

    /// Applies the transform to a truth table.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::InvalidPermutation`] when the transform
    /// arity does not match the table.
    pub fn apply(&self, tt: &TruthTable) -> Result<TruthTable, TruthTableError> {
        if self.perm.len() != tt.num_vars() {
            return Err(TruthTableError::InvalidPermutation);
        }
        let mut out = tt.clone();
        for v in 0..tt.num_vars() {
            if (self.input_negations >> v) & 1 == 1 {
                out = out.flip_input(v);
            }
        }
        out = out.permute(&self.perm)?;
        if self.output_negated {
            out = !out;
        }
        Ok(out)
    }
}

/// Result of [`canonicalize`]: the class representative and one transform
/// that produces it from the input function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpnCanonical {
    /// The lexicographically smallest truth table in the NPN orbit.
    pub representative: TruthTable,
    /// A transform with `transform.apply(&original) == representative`.
    pub transform: NpnTransform,
}

/// An NPN transform on an output *vector*: one shared input
/// permutation/negation, plus a permutation of the outputs and a
/// per-output phase.
///
/// The input half follows the [`NpnTransform`] convention (`perm` maps
/// new positions to old, `input_negations` is a mask on the *old*
/// inputs). Applying the transform to a tuple `f_0, …, f_{k−1}` yields
/// `g_0, …, g_{k−1}` with
/// `g_j(x…) = f_{output_perm[j]}(y…) ^ output_negations[j]`
/// for the same `y` relation as the single-output transform.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MultiNpnTransform {
    /// Input permutation: new variable `i` reads old variable `perm[i]`.
    pub perm: Vec<usize>,
    /// Bitmask of *old* inputs complemented before permutation.
    pub input_negations: u32,
    /// Output permutation: canonical position `j` holds original output
    /// `output_perm[j]`.
    pub output_perm: Vec<usize>,
    /// Per-*canonical-position* output complementation.
    pub output_negations: Vec<bool>,
}

impl MultiNpnTransform {
    /// The identity transform on `n` inputs and `k` outputs.
    pub fn identity(n: usize, k: usize) -> Self {
        MultiNpnTransform {
            perm: (0..n).collect(),
            input_negations: 0,
            output_perm: (0..k).collect(),
            output_negations: vec![false; k],
        }
    }

    /// Applies the transform to an output vector.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::InvalidPermutation`] when the input
    /// arity, output count, or output permutation does not match.
    pub fn apply(&self, tts: &[TruthTable]) -> Result<Vec<TruthTable>, TruthTableError> {
        let k = tts.len();
        if self.output_perm.len() != k || self.output_negations.len() != k {
            return Err(TruthTableError::InvalidPermutation);
        }
        let mut seen = vec![false; k];
        for &o in &self.output_perm {
            if o >= k || seen[o] {
                return Err(TruthTableError::InvalidPermutation);
            }
            seen[o] = true;
        }
        let inner = NpnTransform {
            perm: self.perm.clone(),
            input_negations: self.input_negations,
            output_negated: false,
        };
        let mut out = Vec::with_capacity(k);
        for j in 0..k {
            let mut g = inner.apply(&tts[self.output_perm[j]])?;
            if self.output_negations[j] {
                g = !g;
            }
            out.push(g);
        }
        Ok(out)
    }
}

/// Result of [`canonicalize_multi`]: the canonical representative tuple
/// and one transform that produces it from the input vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiNpnCanonical {
    /// The lexicographically smallest tuple (sorted ascending) in the
    /// orbit of the output vector.
    pub representatives: Vec<TruthTable>,
    /// A transform with `transform.apply(&originals) == representatives`.
    pub transform: MultiNpnTransform,
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    fn heap(k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, cur, out);
            if k.is_multiple_of(2) {
                cur.swap(i, k - 1);
            } else {
                cur.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut cur, &mut out);
    out
}

/// Exhaustively canonicalizes a function under NPN equivalence.
///
/// The representative is the numerically smallest truth table (comparing
/// the packed words most-significant-word first, then by value) reachable
/// by any NPN transform. Complexity is `O(n! · 2^{n+1})` table
/// transformations; intended for `n ≤ 5`.
///
/// # Examples
///
/// ```
/// use stp_tt::{canonicalize, TruthTable};
///
/// // AND and NOR are NPN-equivalent.
/// let and = TruthTable::from_hex(2, "8")?;
/// let nor = TruthTable::from_hex(2, "1")?;
/// assert_eq!(
///     canonicalize(&and).representative,
///     canonicalize(&nor).representative,
/// );
/// # Ok::<(), stp_tt::TruthTableError>(())
/// ```
pub fn canonicalize(tt: &TruthTable) -> NpnCanonical {
    stp_telemetry::counter!("tt.npn_canonicalizations").inc();
    let n = tt.num_vars();
    let mut best: Option<(TruthTable, NpnTransform)> = None;
    for perm in permutations(n) {
        for neg in 0..(1u32 << n) {
            // Apply negations first, then the permutation, then compare
            // both output phases.
            let mut base = tt.clone();
            for v in 0..n {
                if (neg >> v) & 1 == 1 {
                    base = base.flip_input(v);
                }
            }
            let permuted = base.permute(&perm).expect("perm is a valid permutation");
            for out_neg in [false, true] {
                let candidate = if out_neg { !permuted.clone() } else { permuted.clone() };
                let better = match &best {
                    None => true,
                    Some((b, _)) => candidate < *b,
                };
                if better {
                    best = Some((
                        candidate,
                        NpnTransform {
                            perm: perm.clone(),
                            input_negations: neg,
                            output_negated: out_neg,
                        },
                    ));
                }
            }
        }
    }
    let (representative, transform) = best.expect("orbit is never empty");
    NpnCanonical { representative, transform }
}

/// Exhaustively canonicalizes an output *vector* under shared-input NPN
/// equivalence.
///
/// Two k-output specs are equivalent when one maps to the other by a
/// single input permutation/negation shared by every output, plus an
/// output permutation and per-output phases. The representative tuple is
/// the lexicographically smallest sorted tuple reachable that way; ties
/// between equal tables are broken by original output index, so the
/// transform is deterministic. Complexity is `O(n! · 2^n · k)` table
/// transformations; intended for `n ≤ 5`.
///
/// # Panics
///
/// Panics when `tts` is empty or the outputs disagree on arity.
///
/// # Examples
///
/// ```
/// use stp_tt::{canonicalize_multi, TruthTable};
///
/// // A full adder: (sum, carry) over shared inputs.
/// let sum = TruthTable::from_hex(3, "96")?;
/// let carry = TruthTable::from_hex(3, "e8")?;
/// let canon = canonicalize_multi(&[sum.clone(), carry.clone()]);
/// assert_eq!(
///     canon.transform.apply(&[sum, carry])?,
///     canon.representatives,
/// );
/// # Ok::<(), stp_tt::TruthTableError>(())
/// ```
pub fn canonicalize_multi(tts: &[TruthTable]) -> MultiNpnCanonical {
    assert!(!tts.is_empty(), "canonicalize_multi needs at least one output");
    let n = tts[0].num_vars();
    assert!(
        tts.iter().all(|t| t.num_vars() == n),
        "canonicalize_multi outputs must share one arity"
    );
    stp_telemetry::counter!("tt.npn_mo_canonicalizations").inc();
    let k = tts.len();
    let mut best: Option<(Vec<TruthTable>, MultiNpnTransform)> = None;
    for perm in permutations(n) {
        for neg in 0..(1u32 << n) {
            // Shared input transform, applied to every output.
            let mut items: Vec<(TruthTable, bool, usize)> = Vec::with_capacity(k);
            for (o, tt) in tts.iter().enumerate() {
                let mut base = tt.clone();
                for v in 0..n {
                    if (neg >> v) & 1 == 1 {
                        base = base.flip_input(v);
                    }
                }
                let permuted = base.permute(&perm).expect("perm is a valid permutation");
                // Per-output phase: keep the smaller polarity.
                let negated = !permuted.clone();
                if negated < permuted {
                    items.push((negated, true, o));
                } else {
                    items.push((permuted, false, o));
                }
            }
            // Canonical output order: sort by table, tie-break by the
            // original index for a deterministic transform.
            items.sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)));
            let candidate: Vec<TruthTable> = items.iter().map(|(t, _, _)| t.clone()).collect();
            let better = match &best {
                None => true,
                Some((b, _)) => candidate < *b,
            };
            if better {
                best = Some((
                    candidate,
                    MultiNpnTransform {
                        perm: perm.clone(),
                        input_negations: neg,
                        output_perm: items.iter().map(|(_, _, o)| *o).collect(),
                        output_negations: items.iter().map(|(_, neg, _)| *neg).collect(),
                    },
                ));
            }
        }
    }
    let (representatives, transform) = best.expect("orbit is never empty");
    MultiNpnCanonical { representatives, transform }
}

/// Enumerates one representative per NPN class of `n`-variable functions.
///
/// Representatives are returned sorted. For `n = 4` this yields the
/// paper's 222 classes; `n = 3` yields 14, `n = 2` yields 4.
///
/// # Panics
///
/// Panics if `n > 4` — exhausting `2^{2^n}` functions is only feasible up
/// to four variables.
pub fn npn_classes(n: usize) -> Vec<TruthTable> {
    assert!(n <= 4, "exhaustive class enumeration is limited to n <= 4");
    let bits = 1usize << n;
    let total: u64 = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut visited = vec![false; (total as usize) + 1];
    let mut reps = Vec::new();
    let perms = permutations(n);
    for f in 0..=total {
        if visited[f as usize] {
            continue;
        }
        let tt = TruthTable::from_u64(n, f).expect("n <= 4 fits in a word");
        // Mark the whole orbit and record this (smallest) member as the
        // representative: iterating f in ascending order guarantees the
        // first unvisited member is the orbit minimum.
        reps.push(tt.clone());
        for perm in &perms {
            for neg in 0..(1u32 << n) {
                let mut base = tt.clone();
                for v in 0..n {
                    if (neg >> v) & 1 == 1 {
                        base = base.flip_input(v);
                    }
                }
                let permuted = base.permute(perm).expect("valid permutation");
                visited[permuted.words()[0] as usize] = true;
                let negated = !permuted;
                visited[negated.words()[0] as usize] = true;
            }
        }
    }
    reps.sort();
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_transform_is_noop() {
        let tt = TruthTable::from_hex(3, "e8").unwrap();
        let id = NpnTransform::identity(3);
        assert_eq!(id.apply(&tt).unwrap(), tt);
    }

    #[test]
    fn transform_arity_mismatch_is_error() {
        let tt = TruthTable::from_hex(3, "e8").unwrap();
        let id = NpnTransform::identity(2);
        assert!(id.apply(&tt).is_err());
    }

    #[test]
    fn canonical_transform_reproduces_representative() {
        for hex in ["8ff8", "6996", "cafe", "0001", "1234"] {
            let tt = TruthTable::from_hex(4, hex).unwrap();
            let canon = canonicalize(&tt);
            assert_eq!(
                canon.transform.apply(&tt).unwrap(),
                canon.representative,
                "transform must map {hex} to its representative"
            );
        }
    }

    #[test]
    fn npn_equivalent_functions_share_representative() {
        let and = TruthTable::from_hex(2, "8").unwrap();
        let or = TruthTable::from_hex(2, "e").unwrap();
        let nand = TruthTable::from_hex(2, "7").unwrap();
        let nor = TruthTable::from_hex(2, "1").unwrap();
        let rep = canonicalize(&and).representative;
        for other in [or, nand, nor] {
            assert_eq!(canonicalize(&other).representative, rep);
        }
        // XOR is in a different class.
        let xor = TruthTable::from_hex(2, "6").unwrap();
        assert_ne!(canonicalize(&xor).representative, rep);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let tt = TruthTable::from_hex(4, "1ee1").unwrap();
        let c1 = canonicalize(&tt).representative;
        let c2 = canonicalize(&c1).representative;
        assert_eq!(c1, c2);
    }

    #[test]
    fn class_counts_match_literature() {
        // Known NPN class counts (including degenerate functions).
        assert_eq!(npn_classes(0).len(), 1);
        assert_eq!(npn_classes(1).len(), 2);
        assert_eq!(npn_classes(2).len(), 4);
        assert_eq!(npn_classes(3).len(), 14);
    }

    #[test]
    fn npn4_has_222_classes() {
        // The paper's NPN4 suite: all 222 4-input classes.
        let classes = npn_classes(4);
        assert_eq!(classes.len(), 222);
        // Every representative canonicalizes to itself.
        for rep in classes.iter().take(10) {
            assert_eq!(canonicalize(rep).representative, *rep);
        }
    }

    #[test]
    fn multi_transform_reproduces_representatives() {
        let cases: &[&[&str]] =
            &[&["96", "e8"], &["e8", "96"], &["80", "96", "ea"], &["cafe", "8ff8"][..]];
        for hexes in cases {
            let n = if hexes[0].len() == 4 { 4 } else { 3 };
            let tts: Vec<TruthTable> =
                hexes.iter().map(|h| TruthTable::from_hex(n, h).unwrap()).collect();
            let canon = canonicalize_multi(&tts);
            assert_eq!(
                canon.transform.apply(&tts).unwrap(),
                canon.representatives,
                "transform must map {hexes:?} to its representative tuple"
            );
            // The representative tuple is sorted.
            let mut sorted = canon.representatives.clone();
            sorted.sort();
            assert_eq!(sorted, canon.representatives);
        }
    }

    #[test]
    fn multi_canonicalization_is_orbit_invariant() {
        // Shuffling outputs, negating outputs, and NPN-transforming the
        // shared inputs must not change the representative tuple.
        let sum = TruthTable::from_hex(3, "96").unwrap();
        let carry = TruthTable::from_hex(3, "e8").unwrap();
        let base = canonicalize_multi(&[sum.clone(), carry.clone()]);
        let variant = MultiNpnTransform {
            perm: vec![2, 0, 1],
            input_negations: 0b101,
            output_perm: vec![1, 0],
            output_negations: vec![true, false],
        };
        let moved = variant.apply(&[sum, carry]).unwrap();
        let canon = canonicalize_multi(&moved);
        assert_eq!(canon.representatives, base.representatives);
    }

    #[test]
    fn multi_singleton_agrees_with_single_output_canonicalization() {
        for hex in ["8ff8", "6996", "cafe", "0001", "1234"] {
            let tt = TruthTable::from_hex(4, hex).unwrap();
            let single = canonicalize(&tt).representative;
            let multi = canonicalize_multi(std::slice::from_ref(&tt));
            assert_eq!(multi.representatives, vec![single]);
        }
    }

    #[test]
    fn multi_canonicalization_is_idempotent() {
        let tts = vec![
            TruthTable::from_hex(4, "1ee1").unwrap(),
            TruthTable::from_hex(4, "8ff8").unwrap(),
        ];
        let c1 = canonicalize_multi(&tts);
        let c2 = canonicalize_multi(&c1.representatives);
        assert_eq!(c1.representatives, c2.representatives);
    }

    #[test]
    fn multi_handles_duplicate_outputs() {
        let tt = TruthTable::from_hex(3, "e8").unwrap();
        let canon = canonicalize_multi(&[tt.clone(), tt.clone()]);
        assert_eq!(canon.representatives[0], canon.representatives[1]);
        assert_eq!(canon.transform.apply(&[tt.clone(), tt]).unwrap(), canon.representatives);
    }

    #[test]
    fn multi_transform_rejects_bad_output_perm() {
        let tt = TruthTable::from_hex(2, "8").unwrap();
        let bad = MultiNpnTransform {
            perm: vec![0, 1],
            input_negations: 0,
            output_perm: vec![0, 0],
            output_negations: vec![false, false],
        };
        assert!(bad.apply(&[tt.clone(), tt]).is_err());
    }

    #[test]
    fn representatives_are_orbit_minima() {
        let classes = npn_classes(3);
        for rep in &classes {
            let canon = canonicalize(rep);
            assert_eq!(canon.representative, *rep);
        }
    }
}
