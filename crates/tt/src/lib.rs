//! Truth tables, NPN classification, and DSD workload generation.
//!
//! This crate is the Boolean-function substrate of the reproduction of
//! *"Exact Synthesis Based on Semi-Tensor Product Circuit Solver"*
//! (Pan & Chu, DATE 2023):
//!
//! * [`TruthTable`] — bit-packed functions of up to 16 inputs, with the
//!   cofactor/support/permutation toolkit exact synthesis needs;
//! * [`canonicalize`] / [`npn_classes`] — NPN classification; the
//!   `NPN4` suite (all 222 4-input classes) comes from
//!   [`npn_classes`]`(4)`;
//! * [`is_full_dsd`] / [`random_fdsd`] / [`random_pdsd`] — the
//!   disjoint-support-decomposition machinery behind the `FDSD`/`PDSD`
//!   suites;
//! * [`kernel`] — word-level table kernels (masked delta-swaps,
//!   in-place cofactors, compaction plans) that the factorization
//!   engine uses to slice decomposition charts without per-minterm
//!   loops.
//!
//! # Quick start
//!
//! ```
//! use stp_tt::{is_full_dsd, npn_classes, TruthTable};
//!
//! // The paper's running example 0x8ff8 is fully DSD-decomposable.
//! let f = TruthTable::from_hex(4, "8ff8")?;
//! assert!(is_full_dsd(&f));
//!
//! // NPN4: all 222 classes of 4-input functions.
//! assert_eq!(npn_classes(4).len(), 222);
//! # Ok::<(), stp_tt::TruthTableError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dsd;
mod error;
pub mod kernel;
mod npn;
mod truth_table;

pub use dsd::{
    is_full_dsd, project_to_vars, random_fdsd, random_fdsd_tree, random_pdsd,
    try_top_decomposition, DsdNode, NONTRIVIAL_OPS,
};
pub use error::TruthTableError;
pub use npn::{
    canonicalize, canonicalize_multi, npn_classes, MultiNpnCanonical, MultiNpnTransform,
    NpnCanonical, NpnTransform,
};
pub use truth_table::{TruthTable, MAX_VARS};

#[cfg(test)]
mod thread_safety {
    use super::*;

    // The parallel synthesis layer (stp-synth) moves these across
    // worker threads; keep them free of interior mutability.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn tt_types_are_send_and_sync() {
        assert_send_sync::<TruthTable>();
        assert_send_sync::<DsdNode>();
        assert_send_sync::<NpnCanonical>();
        assert_send_sync::<NpnTransform>();
        assert_send_sync::<TruthTableError>();
    }
}
