//! Disjoint-support decomposition (DSD): tests and workload generators.
//!
//! The paper's evaluation (§IV) uses five function suites; four of them
//! are defined through DSD structure:
//!
//! * **FDSD** — *fully* DSD-decomposable functions: the function breaks
//!   down completely into 2-input gates with disjoint supports (no prime
//!   block larger than two inputs, in Mishchenko's terminology).
//! * **PDSD** — *partially* DSD-decomposable functions: some DSD
//!   structure exists but at least one prime block remains.
//!
//! The authors drew these from practical mapping benchmarks; this crate
//! substitutes seeded random generators that produce functions with the
//! same defining structure (see `DESIGN.md`), which is what exercises the
//! STP factorization's fast path (FDSD) and its backtracking path (PDSD).

use rand::{Rng, RngExt};

use crate::error::TruthTableError;
use crate::truth_table::TruthTable;

/// The ten 2-input operators that depend on both inputs (all 4-bit truth
/// tables except constants and projections). These are the "interesting"
/// gate functions for chain synthesis.
pub const NONTRIVIAL_OPS: [u8; 10] = [
    0b0001, // NOR
    0b0010, // a & !b
    0b0100, // !a & b
    0b0110, // XOR
    0b0111, // NAND
    0b1000, // AND
    0b1001, // XNOR
    0b1011, // a | !b
    0b1101, // !a | b
    0b1110, // OR
];

/// A disjoint-support decomposition tree.
///
/// Leaves are single variables; internal nodes are 2-input gates; a
/// [`DsdNode::Prime`] node embeds an arbitrary (typically
/// non-decomposable) block over a set of variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsdNode {
    /// A single input variable.
    Leaf(usize),
    /// A 2-input gate (4-bit truth table, bit `a + 2b` = `σ(a, b)`) over
    /// two disjoint subtrees.
    Gate(u8, Box<DsdNode>, Box<DsdNode>),
    /// A prime block: an arbitrary function applied to the listed
    /// variables (`vars[i]` feeds input `i` of the block).
    Prime(TruthTable, Vec<usize>),
}

impl DsdNode {
    /// Variables referenced by the subtree, in DFS order.
    pub fn variables(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            DsdNode::Leaf(v) => out.push(*v),
            DsdNode::Gate(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            DsdNode::Prime(_, vars) => out.extend_from_slice(vars),
        }
    }

    /// Number of 2-input gates when the tree is realized as a Boolean
    /// chain (prime blocks of `k` inputs are counted pessimistically as
    /// needing at least `k − 1` gates).
    pub fn gate_count_upper_bound_basis(&self) -> usize {
        match self {
            DsdNode::Leaf(_) => 0,
            DsdNode::Gate(_, a, b) => {
                1 + a.gate_count_upper_bound_basis() + b.gate_count_upper_bound_basis()
            }
            DsdNode::Prime(block, _) => block.num_vars().saturating_sub(1),
        }
    }

    /// Evaluates the subtree under a full assignment.
    ///
    /// # Panics
    ///
    /// Panics when a referenced variable index is out of range for
    /// `assign`.
    pub fn eval(&self, assign: &[bool]) -> bool {
        match self {
            DsdNode::Leaf(v) => assign[*v],
            DsdNode::Gate(op, a, b) => {
                let av = a.eval(assign) as u8;
                let bv = b.eval(assign) as u8;
                (op >> (av + 2 * bv)) & 1 == 1
            }
            DsdNode::Prime(block, vars) => {
                let inner: Vec<bool> = vars.iter().map(|&v| assign[v]).collect();
                block.eval(&inner)
            }
        }
    }

    /// Converts the tree to a truth table over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::VariableOutOfRange`] when the tree
    /// references a variable `≥ num_vars`, or
    /// [`TruthTableError::TooManyVariables`].
    pub fn to_truth_table(&self, num_vars: usize) -> Result<TruthTable, TruthTableError> {
        if let Some(&v) = self.variables().iter().max() {
            if v >= num_vars {
                return Err(TruthTableError::VariableOutOfRange { var: v, num_vars });
            }
        }
        TruthTable::from_fn(num_vars, |assign| self.eval(assign))
    }
}

/// Restricts `tt` to the listed variables, producing a table over
/// `vars.len()` inputs (input `i` of the result reads `vars[i]`).
///
/// Used internally to extract the `h1`/`h2` sub-functions of a
/// decomposition; exposed because the synthesis engine needs the same
/// operation.
///
/// # Panics
///
/// Panics if some `vars[i] >= tt.num_vars()` or when `tt` depends on a
/// variable outside `vars`.
pub fn project_to_vars(tt: &TruthTable, vars: &[usize]) -> TruthTable {
    for v in tt.support() {
        assert!(vars.contains(&v), "table depends on variable {v} outside the projection");
    }
    TruthTable::from_fn(vars.len(), |assign| {
        let mut full = vec![false; tt.num_vars()];
        for (i, &v) in vars.iter().enumerate() {
            full[v] = assign[i];
        }
        tt.eval(&full)
    })
    .expect("projection never increases the variable count")
}

/// Tests whether a function is *fully* DSD-decomposable into 2-input
/// gates.
///
/// A function with support size ≤ 2 is trivially decomposable. Otherwise
/// the function must admit a top decomposition `f = g(h₁(A), h₂(B))` for
/// some bipartition `(A, B)` of its support — detected by the Ashenhurst
/// criterion that the decomposition chart has at most two distinct row
/// patterns *and* at most two distinct column patterns (exactly the
/// paper's "two unique quartering parts", §III-B, generalized) — with
/// `h₁` and `h₂` recursively fully decomposable.
///
/// # Examples
///
/// ```
/// use stp_tt::{is_full_dsd, TruthTable};
///
/// // (a AND b) XOR (c OR d) decomposes fully …
/// let f = TruthTable::from_fn(4, |x| (x[0] & x[1]) ^ (x[2] | x[3]))?;
/// assert!(is_full_dsd(&f));
/// // … but 3-input majority is a prime block.
/// let maj = TruthTable::from_hex(3, "e8")?;
/// assert!(!is_full_dsd(&maj));
/// # Ok::<(), stp_tt::TruthTableError>(())
/// ```
pub fn is_full_dsd(tt: &TruthTable) -> bool {
    let sup = tt.support();
    if sup.len() <= 2 {
        return true;
    }
    let reduced = project_to_vars(tt, &sup);
    let n = sup.len();
    // Enumerate bipartitions (A = subset, B = complement); skip empty
    // sides and mirror duplicates by requiring bit 0 ∈ A.
    for a_mask in 0usize..(1 << n) {
        if a_mask & 1 == 0 || a_mask == (1 << n) - 1 {
            continue;
        }
        if let Some((h1, h2, _g)) = try_top_decomposition(&reduced, a_mask) {
            if is_full_dsd(&h1) && is_full_dsd(&h2) {
                return true;
            }
        }
    }
    false
}

/// Attempts the Ashenhurst top decomposition `f = g(h₁(A), h₂(B))` for a
/// specific bipartition of the (full-support) function `f`.
///
/// `a_mask` selects the variables of `A` by bit position. On success
/// returns `(h₁, h₂, g)` with `h₁` over `|A|` fresh variables, `h₂` over
/// `|B|` fresh variables, and `g` the 4-bit connecting operator.
pub fn try_top_decomposition(
    f: &TruthTable,
    a_mask: usize,
) -> Option<(TruthTable, TruthTable, u8)> {
    let n = f.num_vars();
    let a_vars: Vec<usize> = (0..n).filter(|&v| (a_mask >> v) & 1 == 1).collect();
    let b_vars: Vec<usize> = (0..n).filter(|&v| (a_mask >> v) & 1 == 0).collect();
    if a_vars.is_empty() || b_vars.is_empty() {
        return None;
    }
    let rows = 1usize << a_vars.len();
    let cols = 1usize << b_vars.len();
    // Row pattern for each assignment to A.
    let mut row_patterns: Vec<Vec<bool>> = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut pat = Vec::with_capacity(cols);
        for c in 0..cols {
            let mut assign = vec![false; n];
            for (i, &v) in a_vars.iter().enumerate() {
                assign[v] = (r >> i) & 1 == 1;
            }
            for (i, &v) in b_vars.iter().enumerate() {
                assign[v] = (c >> i) & 1 == 1;
            }
            pat.push(f.eval(&assign));
        }
        row_patterns.push(pat);
    }
    // At most two distinct rows…
    let first = &row_patterns[0];
    let mut second: Option<&Vec<bool>> = None;
    let mut row_class = vec![false; rows];
    for (r, pat) in row_patterns.iter().enumerate() {
        if pat == first {
            continue;
        }
        match second {
            None => {
                second = Some(pat);
                row_class[r] = true;
            }
            Some(s) if pat == s => row_class[r] = true,
            Some(_) => return None,
        }
    }
    let second = second?; // exactly one distinct row means f ignores A
                          // …and at most two distinct column values given the two row classes.
                          // Columns are pairs (first[c], second[c]); for g to be a function of
                          // (h₁, h₂) with h₂ binary, the columns must take at most two distinct
                          // pair values.
    let mut col_class = vec![false; cols];
    let first_pair = (first[0], second[0]);
    let mut second_pair: Option<(bool, bool)> = None;
    for c in 0..cols {
        let pair = (first[c], second[c]);
        if pair == first_pair {
            continue;
        }
        match second_pair {
            None => {
                second_pair = Some(pair);
                col_class[c] = true;
            }
            Some(s) if pair == s => col_class[c] = true,
            Some(_) => return None,
        }
    }
    second_pair?; // a single column class means f ignores B
    let second_pair = second_pair.expect("checked above");
    // g(h1, h2): h1 = row class, h2 = col class.
    let mut g = 0u8;
    // (h1, h2) = (0, 0): value first_pair.0 …
    if first_pair.0 {
        g |= 1 << 0;
    }
    if second_pair.0 {
        // (h1, h2) = (0, 1): row class 0, col class 1.
        g |= 1 << 2;
    }
    if first_pair.1 {
        // (h1, h2) = (1, 0).
        g |= 1 << 1;
    }
    if second_pair.1 {
        g |= 1 << 3;
    }
    let h1 = TruthTable::from_fn(a_vars.len(), |assign| {
        let mut r = 0usize;
        for (i, &v) in assign.iter().enumerate() {
            if v {
                r |= 1 << i;
            }
        }
        row_class[r]
    })
    .expect("|A| < n");
    let h2 = TruthTable::from_fn(b_vars.len(), |assign| {
        let mut c = 0usize;
        for (i, &v) in assign.iter().enumerate() {
            if v {
                c |= 1 << i;
            }
        }
        col_class[c]
    })
    .expect("|B| < n");
    Some((h1, h2, g))
}

/// Generates a random *fully* DSD-decomposable function over exactly
/// `num_vars` variables (every variable is in the support): a random
/// binary tree over a random variable order with random nontrivial gates.
///
/// # Panics
///
/// Panics if `num_vars == 0` or `num_vars > MAX_VARS`.
pub fn random_fdsd<R: Rng>(num_vars: usize, rng: &mut R) -> TruthTable {
    let tree = random_fdsd_tree(num_vars, rng);
    tree.to_truth_table(num_vars).expect("generated tree references only declared variables")
}

/// Generates the [`DsdNode`] tree behind [`random_fdsd`] (useful when the
/// caller wants the known decomposition, e.g. to bound the optimum gate
/// count).
///
/// # Panics
///
/// Panics if `num_vars == 0` or `num_vars > MAX_VARS`.
pub fn random_fdsd_tree<R: Rng>(num_vars: usize, rng: &mut R) -> DsdNode {
    assert!(num_vars >= 1, "need at least one variable");
    assert!(num_vars <= crate::truth_table::MAX_VARS, "variable count exceeds MAX_VARS");
    // Random variable order.
    let mut vars: Vec<usize> = (0..num_vars).collect();
    for i in (1..vars.len()).rev() {
        let j = rng.random_range(0..=i);
        vars.swap(i, j);
    }
    let mut forest: Vec<DsdNode> = vars.into_iter().map(DsdNode::Leaf).collect();
    while forest.len() > 1 {
        let i = rng.random_range(0..forest.len());
        let a = forest.swap_remove(i);
        let j = rng.random_range(0..forest.len());
        let b = forest.swap_remove(j);
        let op = NONTRIVIAL_OPS[rng.random_range(0..NONTRIVIAL_OPS.len())];
        forest.push(DsdNode::Gate(op, Box::new(a), Box::new(b)));
    }
    forest.pop().expect("forest reduces to a single tree")
}

/// Generates a random *partially* DSD-decomposable function over exactly
/// `num_vars` variables: a DSD tree in which one leaf is replaced by a
/// random prime (non-decomposable) block of `prime_size` inputs. The
/// result is rejection-tested to ensure it is **not** fully decomposable
/// and depends on every variable.
///
/// # Panics
///
/// Panics if `prime_size < 3` or `prime_size > num_vars`.
pub fn random_pdsd<R: Rng>(num_vars: usize, prime_size: usize, rng: &mut R) -> TruthTable {
    assert!(prime_size >= 3, "prime blocks need at least three inputs");
    assert!(prime_size <= num_vars, "prime block cannot exceed the variable count");
    loop {
        let block = random_prime_block(prime_size, rng);
        // Random variable order; the first `prime_size` feed the block.
        let mut vars: Vec<usize> = (0..num_vars).collect();
        for i in (1..vars.len()).rev() {
            let j = rng.random_range(0..=i);
            vars.swap(i, j);
        }
        let (block_vars, rest) = vars.split_at(prime_size);
        let mut forest: Vec<DsdNode> = vec![DsdNode::Prime(block, block_vars.to_vec())];
        forest.extend(rest.iter().copied().map(DsdNode::Leaf));
        while forest.len() > 1 {
            let i = rng.random_range(0..forest.len());
            let a = forest.swap_remove(i);
            let j = rng.random_range(0..forest.len());
            let b = forest.swap_remove(j);
            let op = NONTRIVIAL_OPS[rng.random_range(0..NONTRIVIAL_OPS.len())];
            forest.push(DsdNode::Gate(op, Box::new(a), Box::new(b)));
        }
        let tree = forest.pop().expect("forest reduces to a single tree");
        let tt = tree
            .to_truth_table(num_vars)
            .expect("generated tree references only declared variables");
        if tt.support().len() == num_vars && !is_full_dsd(&tt) {
            return tt;
        }
    }
}

/// Generates a random prime block: a function of exactly `k` inputs with
/// full support that is not fully DSD-decomposable.
fn random_prime_block<R: Rng>(k: usize, rng: &mut R) -> TruthTable {
    loop {
        let tt = TruthTable::from_fn(k, |_| rng.random_bool(0.5))
            .expect("k <= MAX_VARS by caller contract");
        if tt.support().len() == k && !is_full_dsd(&tt) {
            return tt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn two_input_functions_are_full_dsd() {
        for bits in 0..16u64 {
            let tt = TruthTable::from_u64(2, bits).unwrap();
            assert!(is_full_dsd(&tt));
        }
    }

    #[test]
    fn tree_functions_are_full_dsd() {
        let f = TruthTable::from_fn(4, |x| (x[0] & x[1]) ^ (x[2] | x[3])).unwrap();
        assert!(is_full_dsd(&f));
        let g =
            TruthTable::from_fn(6, |x| ((x[0] ^ x[1]) & (x[2] | x[3])) | (x[4] & x[5])).unwrap();
        assert!(is_full_dsd(&g));
    }

    #[test]
    fn majority_is_prime() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        assert!(!is_full_dsd(&maj));
        // Majority composed under a gate is still only partially
        // decomposable.
        let f = TruthTable::from_fn(4, |x| ((x[0] as u8 + x[1] as u8 + x[2] as u8) >= 2) ^ x[3])
            .unwrap();
        assert!(!is_full_dsd(&f));
    }

    #[test]
    fn paper_running_example_is_full_dsd() {
        // 0x8ff8 = OR-ish composition of AND(a,b) and XOR(c,d) per
        // Example 7 — fully decomposable.
        let f = TruthTable::from_hex(4, "8ff8").unwrap();
        assert!(is_full_dsd(&f));
    }

    #[test]
    fn top_decomposition_recovers_structure() {
        // f = AND(a, b) XOR OR(c, d); A = {0, 1}.
        let f = TruthTable::from_fn(4, |x| (x[0] & x[1]) ^ (x[2] | x[3])).unwrap();
        let (h1, h2, g) = try_top_decomposition(&f, 0b0011).expect("decomposable split");
        // Reconstruct and compare.
        let rebuilt = TruthTable::from_fn(4, |x| {
            let a = h1.eval(&[x[0], x[1]]);
            let b = h2.eval(&[x[2], x[3]]);
            (g >> ((a as u8) + 2 * (b as u8))) & 1 == 1
        })
        .unwrap();
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn top_decomposition_rejects_prime_splits() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        for a_mask in [0b001usize, 0b010, 0b100, 0b011, 0b101, 0b110] {
            assert!(try_top_decomposition(&maj, a_mask).is_none());
        }
    }

    #[test]
    fn project_to_vars_reduces_support() {
        let f = TruthTable::from_fn(4, |x| x[1] ^ x[3]).unwrap();
        let p = project_to_vars(&f, &[1, 3]);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.to_hex(), "6");
    }

    #[test]
    fn random_fdsd_has_full_support_and_is_decomposable() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [3usize, 4, 5, 6] {
            for _ in 0..5 {
                let tt = random_fdsd(n, &mut rng);
                assert_eq!(tt.support().len(), n, "full support for n={n}");
                assert!(is_full_dsd(&tt), "generated FDSD must decompose (n={n})");
            }
        }
    }

    #[test]
    fn random_pdsd_is_partial() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..5 {
            let tt = random_pdsd(6, 3, &mut rng);
            assert_eq!(tt.support().len(), 6);
            assert!(!is_full_dsd(&tt));
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = random_fdsd(5, &mut SmallRng::seed_from_u64(123));
        let b = random_fdsd(5, &mut SmallRng::seed_from_u64(123));
        assert_eq!(a, b);
        let c = random_pdsd(6, 3, &mut SmallRng::seed_from_u64(9));
        let d = random_pdsd(6, 3, &mut SmallRng::seed_from_u64(9));
        assert_eq!(c, d);
    }

    #[test]
    fn dsd_tree_eval_matches_truth_table() {
        let mut rng = SmallRng::seed_from_u64(17);
        let tree = random_fdsd_tree(5, &mut rng);
        let tt = tree.to_truth_table(5).unwrap();
        for m in 0..32usize {
            let assign: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(tree.eval(&assign), tt.bit(m));
        }
        assert_eq!(tree.gate_count_upper_bound_basis(), 4);
    }

    #[test]
    fn dsd_tree_rejects_out_of_range_vars() {
        let tree = DsdNode::Gate(0b1000, Box::new(DsdNode::Leaf(0)), Box::new(DsdNode::Leaf(5)));
        assert!(tree.to_truth_table(3).is_err());
    }

    #[test]
    fn nontrivial_ops_all_depend_on_both_inputs() {
        for &op in &NONTRIVIAL_OPS {
            let f = |a: bool, b: bool| (op >> ((a as u8) + 2 * (b as u8))) & 1 == 1;
            assert!(
                (f(false, false) != f(true, false)) || (f(false, true) != f(true, true)),
                "op {op:#06b} must depend on a"
            );
            assert!(
                (f(false, false) != f(false, true)) || (f(true, false) != f(true, true)),
                "op {op:#06b} must depend on b"
            );
        }
    }
}
