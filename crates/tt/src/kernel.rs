//! Word-level truth-table kernels over raw `u64` buffers.
//!
//! The factorization engine (`stp-synth`) spends its time slicing
//! decomposition charts out of truth tables — per candidate split, per
//! shared assignment. Doing that one scalar `eval` per cell costs
//! `rows × cols × shared` table probes; these kernels do the same work
//! with a constant number of word shuffles and cofactor masks per
//! table, on caller-owned buffers, so the hot loops never touch the
//! heap.
//!
//! All functions operate on a packed LSB-first table of `num_vars`
//! inputs, exactly the [`TruthTable`](crate::TruthTable) word layout:
//! bit `m` of the buffer is the function value at minterm `m`, buffers
//! hold `words_len(num_vars)` words, and for fewer than 6 variables the
//! unused tail bits of word 0 must be zero (every kernel preserves that
//! invariant). The [`TruthTable`] methods `swap_inputs`, `compact_on`,
//! `expand_onto` and `support_mask` wrap these kernels for callers that
//! prefer the owned API.

/// Masks extracting the positive cofactor of variables 0–5 within one
/// word (the standard "magic numbers" of truth-table manipulation).
pub const VAR_MASK: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A 4-lane wide word: four `u64` table words processed as one unit.
///
/// Every lane operation is a plain per-lane loop over a fixed-size
/// array — the pattern LLVM auto-vectorizes into a single 256-bit (or
/// two 128-bit) register operation on every mainstream target, with a
/// guaranteed scalar fallback elsewhere. No intrinsics, no `cfg`
/// ladders, no new dependencies; the 32-byte alignment keeps loads and
/// stores on vector-register boundaries.
///
/// The kernels below use `W4` to process four packed table words per
/// iteration wherever the word count allows (tables of 8+ variables
/// are always a multiple of four words; smaller tables fall back to
/// the scalar tail loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(align(32))]
pub struct W4(pub [u64; 4]);

impl W4 {
    /// All lanes zero.
    pub const ZERO: W4 = W4([0; 4]);

    /// Broadcasts one word into all four lanes.
    #[inline(always)]
    pub const fn splat(w: u64) -> W4 {
        W4([w, w, w, w])
    }

    /// Loads four consecutive words from `src` (`src.len() >= 4`).
    #[inline(always)]
    pub fn load(src: &[u64]) -> W4 {
        W4([src[0], src[1], src[2], src[3]])
    }

    /// Stores the four lanes into `dst` (`dst.len() >= 4`).
    #[inline(always)]
    pub fn store(self, dst: &mut [u64]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// `true` when any lane has a set bit.
    #[inline(always)]
    pub const fn any(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) != 0
    }

    /// OR-reduction of the four lanes into one word.
    #[inline(always)]
    pub const fn or_lanes(self) -> u64 {
        self.0[0] | self.0[1] | self.0[2] | self.0[3]
    }
}

impl std::ops::BitAnd for W4 {
    type Output = W4;
    #[inline(always)]
    fn bitand(self, rhs: W4) -> W4 {
        let mut out = [0u64; 4];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a & b;
        }
        W4(out)
    }
}

impl std::ops::BitOr for W4 {
    type Output = W4;
    #[inline(always)]
    fn bitor(self, rhs: W4) -> W4 {
        let mut out = [0u64; 4];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a | b;
        }
        W4(out)
    }
}

impl std::ops::BitXor for W4 {
    type Output = W4;
    #[inline(always)]
    fn bitxor(self, rhs: W4) -> W4 {
        let mut out = [0u64; 4];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a ^ b;
        }
        W4(out)
    }
}

impl std::ops::Not for W4 {
    type Output = W4;
    #[inline(always)]
    fn not(self) -> W4 {
        let mut out = [0u64; 4];
        for (o, a) in out.iter_mut().zip(self.0.iter()) {
            *o = !a;
        }
        W4(out)
    }
}

impl std::ops::Shl<u32> for W4 {
    type Output = W4;
    #[inline(always)]
    fn shl(self, s: u32) -> W4 {
        let mut out = [0u64; 4];
        for (o, a) in out.iter_mut().zip(self.0.iter()) {
            *o = a << s;
        }
        W4(out)
    }
}

impl std::ops::Shr<u32> for W4 {
    type Output = W4;
    #[inline(always)]
    fn shr(self, s: u32) -> W4 {
        let mut out = [0u64; 4];
        for (o, a) in out.iter_mut().zip(self.0.iter()) {
            *o = a >> s;
        }
        W4(out)
    }
}

/// Number of `u64` words a `num_vars`-input table occupies.
pub const fn words_len(num_vars: usize) -> usize {
    if num_vars <= 6 {
        1
    } else {
        1 << (num_vars - 6)
    }
}

/// A mask of the `count` lowest bits (`count ≤ 64`).
pub const fn low_mask(count: usize) -> u64 {
    if count >= 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Replaces the table with its `var = 0` cofactor, replicated so `var`
/// becomes a don't-care (same semantics as
/// [`TruthTable::cofactor`](crate::TruthTable::cofactor) with
/// `value = false`).
///
/// # Panics
///
/// Panics if `var >= num_vars` (debug assertion on the buffer length).
pub fn cofactor0_in_place(words: &mut [u64], num_vars: usize, var: usize) {
    assert!(var < num_vars, "variable {var} out of range");
    debug_assert_eq!(words.len(), words_len(num_vars));
    if var < 6 {
        let shift = 1u32 << var;
        let not_mask = !VAR_MASK[var];
        let wide_mask = W4::splat(not_mask);
        let mut chunks = words.chunks_exact_mut(4);
        for chunk in &mut chunks {
            let lo = W4::load(chunk) & wide_mask;
            (lo | (lo << shift)).store(chunk);
        }
        for w in chunks.into_remainder() {
            let lo = *w & not_mask;
            *w = lo | (lo << shift);
        }
    } else {
        // Each odd-numbered block of `stride` words is replaced by the
        // even block before it; even blocks are untouched, so forward
        // copies are safe.
        let stride = 1usize << (var - 6);
        match stride {
            1 => {
                for pair in words.chunks_exact_mut(2) {
                    pair[1] = pair[0];
                }
            }
            2 => {
                for quad in words.chunks_exact_mut(4) {
                    quad[2] = quad[0];
                    quad[3] = quad[1];
                }
            }
            _ => {
                for blocks in words.chunks_exact_mut(2 * stride) {
                    let (src, dst) = blocks.split_at_mut(stride);
                    for (s, d) in src.chunks_exact(4).zip(dst.chunks_exact_mut(4)) {
                        W4::load(s).store(d);
                    }
                }
            }
        }
    }
}

/// Swaps input variables `a` and `b` in place — one masked delta-swap
/// per word (or word pair), never a per-minterm loop.
///
/// # Panics
///
/// Panics if either variable is `>= num_vars`.
pub fn swap_in_place(words: &mut [u64], num_vars: usize, a: usize, b: usize) {
    assert!(a < num_vars && b < num_vars, "variables ({a}, {b}) out of range");
    debug_assert_eq!(words.len(), words_len(num_vars));
    if a == b {
        return;
    }
    let (i, j) = if a < b { (a, b) } else { (b, a) };
    if j < 6 {
        // Both inside one word: cells with (x_j, x_i) = (1, 0) trade
        // places with (0, 1), a distance of 2^j − 2^i apart.
        let shift = ((1usize << j) - (1usize << i)) as u32;
        let down = VAR_MASK[j] & !VAR_MASK[i];
        let up = !VAR_MASK[j] & VAR_MASK[i];
        let keep = !(down | up);
        let (wd, wu, wk) = (W4::splat(down), W4::splat(up), W4::splat(keep));
        let mut chunks = words.chunks_exact_mut(4);
        for chunk in &mut chunks {
            let w = W4::load(chunk);
            ((w & wk) | ((w & wd) >> shift) | ((w & wu) << shift)).store(chunk);
        }
        for w in chunks.into_remainder() {
            *w = (*w & keep) | ((*w & down) >> shift) | ((*w & up) << shift);
        }
    } else if i < 6 {
        // One in-word variable, one word-index variable: exchange the
        // x_i = 1 half of the low word with the x_i = 0 half of the
        // high word, shifted by 2^i.
        let stride = 1usize << (j - 6);
        let s = (1usize << i) as u32;
        let m = VAR_MASK[i];
        let (wm, wn) = (W4::splat(m), W4::splat(!m));
        for blocks in words.chunks_exact_mut(2 * stride) {
            let (los, his) = blocks.split_at_mut(stride);
            if stride >= 4 {
                for (l4, h4) in los.chunks_exact_mut(4).zip(his.chunks_exact_mut(4)) {
                    let lo = W4::load(l4);
                    let hi = W4::load(h4);
                    ((lo & wn) | ((hi & wn) << s)).store(l4);
                    ((hi & wm) | ((lo & wm) >> s)).store(h4);
                }
            } else {
                for (l, h) in los.iter_mut().zip(his.iter_mut()) {
                    let (lo, hi) = (*l, *h);
                    *l = (lo & !m) | ((hi & !m) << s);
                    *h = (hi & m) | ((lo & m) >> s);
                }
            }
        }
    } else {
        // Both are word-index variables: words whose index has bit
        // `i − 6` set and bit `j − 6` clear trade places with the index
        // that flips both bits. Such indices form runs of `si`
        // consecutive words, so each run swaps as a block.
        let si = 1usize << (i - 6);
        let sj = 1usize << (j - 6);
        let mut idx = 0;
        while idx < words.len() {
            if idx & si != 0 && idx & sj == 0 {
                swap_word_runs(words, idx, idx ^ si ^ sj, si);
            }
            idx += si;
        }
    }
}

/// Swaps the `len` words starting at `a` with the `len` words starting
/// at `b` (`a + len <= b`), four words per iteration when `len` allows.
fn swap_word_runs(words: &mut [u64], a: usize, b: usize, len: usize) {
    debug_assert!(a + len <= b);
    let (head, tail) = words.split_at_mut(b);
    let src = &mut head[a..a + len];
    let dst = &mut tail[..len];
    if len.is_multiple_of(4) {
        for (s4, d4) in src.chunks_exact_mut(4).zip(dst.chunks_exact_mut(4)) {
            let tmp = W4::load(s4);
            W4::load(d4).store(s4);
            tmp.store(d4);
        }
    } else {
        src.swap_with_slice(dst);
    }
}

/// The set of variables the table depends on, as a bitmask (bit `v` set
/// ⇔ the function's two `v`-cofactors differ). Word-level equivalent of
/// [`TruthTable::support`](crate::TruthTable::support), without the
/// `Vec` (and without materializing the cofactors).
pub fn support_mask(words: &[u64], num_vars: usize) -> u64 {
    debug_assert_eq!(words.len(), words_len(num_vars));
    let mut mask = 0u64;
    for (var, &vm) in VAR_MASK.iter().enumerate().take(num_vars.min(6)) {
        let shift = 1u32 << var;
        let zeros = !vm & if num_vars < 6 { low_mask(1 << num_vars) } else { u64::MAX };
        let wz = W4::splat(zeros);
        let mut wide = W4::ZERO;
        let mut chunks = words.chunks_exact(4);
        for chunk in &mut chunks {
            let w = W4::load(chunk);
            wide = wide | (((w >> shift) ^ w) & wz);
        }
        let mut diff = wide.or_lanes();
        for w in chunks.remainder() {
            diff |= ((*w >> shift) ^ *w) & zeros;
        }
        if diff != 0 {
            mask |= 1u64 << var;
        }
    }
    for var in 6..num_vars {
        let stride = 1usize << (var - 6);
        let mut diff = 0u64;
        for blocks in words.chunks_exact(2 * stride) {
            let (los, his) = blocks.split_at(stride);
            if stride >= 4 {
                let mut wide = W4::ZERO;
                for (l4, h4) in los.chunks_exact(4).zip(his.chunks_exact(4)) {
                    wide = wide | (W4::load(l4) ^ W4::load(h4));
                }
                diff |= wide.or_lanes();
            } else {
                for (l, h) in los.iter().zip(his.iter()) {
                    diff |= l ^ h;
                }
            }
        }
        if diff != 0 {
            mask |= 1u64 << var;
        }
    }
    mask
}

/// Computes the transposition sequence that moves `vars[k]` to input
/// position `k` for every `k`, writing `(destination, source)` pairs
/// into `plan` and returning how many swaps are needed (≤ `vars.len()`).
///
/// Applying the swaps front to back performs the reordering; applying
/// them back to front undoes it (each transposition is an involution).
/// The plan is a pure function of `(num_vars, vars)`, so a compaction
/// and the matching expansion agree on the ordering by construction.
///
/// # Panics
///
/// Panics if `vars` repeats a variable or names one `>= num_vars`
/// (`num_vars ≤ 64`).
pub fn front_swap_plan(num_vars: usize, vars: &[usize], plan: &mut [(u8, u8)]) -> usize {
    assert!(num_vars <= 64, "front_swap_plan supports at most 64 variables");
    let mut at = [0u8; 64]; // at[p] = variable currently at position p
    let mut pos = [0u8; 64]; // pos[v] = current position of variable v
    for p in 0..num_vars {
        at[p] = p as u8;
        pos[p] = p as u8;
    }
    let mut seen = 0u64;
    let mut len = 0;
    for (i, &v) in vars.iter().enumerate() {
        assert!(v < num_vars, "variable {v} out of range");
        assert!(seen & (1u64 << v) == 0, "variable {v} listed twice");
        seen |= 1u64 << v;
        let p = pos[v] as usize;
        if p != i {
            plan[len] = (i as u8, p as u8);
            len += 1;
            let displaced = at[i];
            at[i] = v as u8;
            at[p] = displaced;
            pos[v] = i as u8;
            pos[displaced as usize] = p as u8;
        }
    }
    len
}

/// Tiles a `k`-variable table across an `num_vars`-variable buffer
/// (`k ≤ num_vars`): the result equals `compact` on its first `k`
/// inputs and ignores the rest. This is the word-level replication step
/// of operand expansion (the inverse of truncating a table whose upper
/// variables are don't-cares).
pub fn tile_words(compact: &[u64], k: usize, num_vars: usize, out: &mut [u64]) {
    debug_assert!(k <= num_vars);
    debug_assert_eq!(compact.len(), words_len(k));
    debug_assert_eq!(out.len(), words_len(num_vars));
    if k >= 6 {
        let kw = words_len(k);
        match kw {
            1 => splat_word(compact[0], out),
            2 => {
                let pattern = W4([compact[0], compact[1], compact[0], compact[1]]);
                let mut chunks = out.chunks_exact_mut(4);
                for chunk in &mut chunks {
                    pattern.store(chunk);
                }
                for (i, w) in chunks.into_remainder().iter_mut().enumerate() {
                    *w = compact[i % 2];
                }
            }
            _ => {
                for block in out.chunks_exact_mut(kw) {
                    for (s, d) in compact.chunks_exact(4).zip(block.chunks_exact_mut(4)) {
                        W4::load(s).store(d);
                    }
                }
            }
        }
    } else {
        // Double the low 2^k bits until the pattern fills one word (or
        // the whole table, when num_vars < 6), then copy it everywhere.
        let mut w = compact[0] & low_mask(1 << k);
        for j in k..num_vars.min(6) {
            w |= w << (1usize << j);
        }
        splat_word(w, out);
    }
}

/// Fills `out` with copies of `w`, four words per iteration.
fn splat_word(w: u64, out: &mut [u64]) {
    let pattern = W4::splat(w);
    let mut chunks = out.chunks_exact_mut(4);
    for chunk in &mut chunks {
        pattern.store(chunk);
    }
    for slot in chunks.into_remainder() {
        *slot = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    /// A tiny deterministic LCG — the vendored `rand` is fine too, but
    /// keeping kernel tests self-contained makes them copy-pastable.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    fn random_table(rng: &mut Lcg, n: usize) -> TruthTable {
        let words = (0..words_len(n)).map(|_| rng.next() << 11 | rng.next()).collect();
        TruthTable::from_words(n, words).unwrap()
    }

    #[test]
    fn swap_matches_permute_across_arities() {
        let mut rng = Lcg(0x5eed_0001);
        for n in 1..=9 {
            for _ in 0..8 {
                let tt = random_table(&mut rng, n);
                let a = (rng.next() as usize) % n;
                let b = (rng.next() as usize) % n;
                let mut words = tt.words().to_vec();
                swap_in_place(&mut words, n, a, b);
                let mut perm: Vec<usize> = (0..n).collect();
                perm.swap(a, b);
                let expected = tt.permute(&perm).unwrap();
                assert_eq!(words, expected.words(), "n={n} swap({a},{b})");
            }
        }
    }

    #[test]
    fn cofactor0_matches_cofactor_method() {
        let mut rng = Lcg(0x5eed_0002);
        for n in 1..=9 {
            for _ in 0..8 {
                let tt = random_table(&mut rng, n);
                let v = (rng.next() as usize) % n;
                let mut words = tt.words().to_vec();
                cofactor0_in_place(&mut words, n, v);
                assert_eq!(words, tt.cofactor(v, false).words(), "n={n} var={v}");
            }
        }
    }

    #[test]
    fn support_mask_matches_support() {
        let mut rng = Lcg(0x5eed_0003);
        for n in 1..=9 {
            for _ in 0..8 {
                let tt = random_table(&mut rng, n);
                let expected = tt.support().into_iter().fold(0u64, |m, v| m | (1 << v));
                assert_eq!(support_mask(tt.words(), n), expected, "n={n}");
            }
        }
    }

    #[test]
    fn front_swap_plan_brings_vars_to_front() {
        let mut rng = Lcg(0x5eed_0004);
        for n in 2..=9usize {
            for _ in 0..8 {
                let tt = random_table(&mut rng, n);
                // A random subset in random order.
                let mut vars: Vec<usize> = (0..n).filter(|_| rng.next() & 1 == 1).collect();
                if vars.len() >= 2 && rng.next() & 1 == 1 {
                    let last = vars.len() - 1;
                    vars.swap(0, last);
                }
                let mut plan = [(0u8, 0u8); 64];
                let len = front_swap_plan(n, &vars, &mut plan);
                assert!(len <= vars.len());
                let mut words = tt.words().to_vec();
                for &(i, p) in &plan[..len] {
                    swap_in_place(&mut words, n, i as usize, p as usize);
                }
                let got = TruthTable::from_words(n, words.clone()).unwrap();
                // Position k of the reordered table must read vars[k].
                for m in 0..(1usize << n) {
                    let assign: Vec<bool> = (0..n).map(|b| (m >> b) & 1 == 1).collect();
                    let mut orig = vec![false; n];
                    let mut used = vec![false; n];
                    for (k, &v) in vars.iter().enumerate() {
                        orig[v] = assign[k];
                        used[v] = true;
                    }
                    // Unlisted variables land on the remaining
                    // positions; their values do not matter for the
                    // check as long as we mirror the plan's placement —
                    // reverse the swaps on the index instead.
                    let mut idx = m;
                    for &(i, p) in plan[..len].iter().rev() {
                        let (bi, bp) = ((idx >> i) & 1, (idx >> p) & 1);
                        idx = (idx & !((1 << i) | (1 << p))) | (bp << i) | (bi << p);
                    }
                    assert_eq!(got.bit(m), tt.bit(idx), "n={n} vars={vars:?} m={m}");
                }
                // Undoing the plan restores the original table.
                for &(i, p) in plan[..len].iter().rev() {
                    swap_in_place(&mut words, n, i as usize, p as usize);
                }
                assert_eq!(words, tt.words());
            }
        }
    }

    /// Bit-level scalar swap reference: bit `m` of the result reads bit
    /// `m` with positions `a` and `b` exchanged. Independent of every
    /// word kernel (including `TruthTable::swap_inputs`, which wraps
    /// `swap_in_place`).
    fn swap_reference(tt: &TruthTable, a: usize, b: usize) -> Vec<u64> {
        let n = tt.num_vars();
        let mut out = vec![0u64; words_len(n)];
        for m in 0..(1usize << n) {
            let (ba, bb) = ((m >> a) & 1, (m >> b) & 1);
            let src = (m & !((1 << a) | (1 << b))) | (bb << a) | (ba << b);
            if tt.bit(src) {
                out[m / 64] |= 1u64 << (m % 64);
            }
        }
        out
    }

    #[test]
    fn fuzz_swap_multi_word_matches_scalar_reference() {
        let mut rng = Lcg(0x5eed_0011);
        for n in 7..=12usize {
            for _ in 0..6 {
                let tt = random_table(&mut rng, n);
                let a = (rng.next() as usize) % n;
                let b = (rng.next() as usize) % n;
                let mut words = tt.words().to_vec();
                swap_in_place(&mut words, n, a, b);
                assert_eq!(words, swap_reference(&tt, a, b), "n={n} swap({a},{b})");
            }
        }
    }

    /// The cross-word branch (`i < 6 ≤ j`) and the word-permutation
    /// branch (`6 ≤ i < j`), exhaustively over every qualifying pair —
    /// the two multi-word code paths the random fuzz under-samples.
    #[test]
    fn swap_cross_word_and_word_permutation_branches_exhaustive() {
        let mut rng = Lcg(0x5eed_0012);
        for n in 7..=12usize {
            let tt = random_table(&mut rng, n);
            for j in 6..n {
                for i in 0..j {
                    let mut words = tt.words().to_vec();
                    swap_in_place(&mut words, n, i, j);
                    assert_eq!(words, swap_reference(&tt, i, j), "n={n} swap({i},{j})");
                    // The swap is an involution.
                    swap_in_place(&mut words, n, j, i);
                    assert_eq!(words, tt.words(), "n={n} swap({i},{j}) twice");
                }
            }
        }
    }

    #[test]
    fn fuzz_cofactor0_multi_word_matches_scalar_reference() {
        let mut rng = Lcg(0x5eed_0013);
        for n in 7..=12usize {
            for _ in 0..4 {
                let tt = random_table(&mut rng, n);
                for v in 0..n {
                    let mut words = tt.words().to_vec();
                    cofactor0_in_place(&mut words, n, v);
                    let got = TruthTable::from_words(n, words).unwrap();
                    for m in 0..(1usize << n) {
                        assert_eq!(got.bit(m), tt.bit(m & !(1 << v)), "n={n} var={v} m={m}");
                    }
                }
            }
        }
    }

    #[test]
    fn fuzz_support_mask_multi_word_matches_scalar_reference() {
        let mut rng = Lcg(0x5eed_0014);
        for n in 7..=12usize {
            for round in 0..6 {
                let mut tt = random_table(&mut rng, n);
                if round % 2 == 0 {
                    // Force some variables out of the support so the
                    // zero-diff side of every branch is exercised too.
                    for v in 0..n {
                        if rng.next() & 3 == 0 {
                            tt = tt.cofactor(v, false);
                        }
                    }
                }
                let mut expected = 0u64;
                for v in 0..n {
                    let flip = 1usize << v;
                    if (0..(1usize << n)).any(|m| tt.bit(m) != tt.bit(m ^ flip)) {
                        expected |= 1u64 << v;
                    }
                }
                assert_eq!(support_mask(tt.words(), n), expected, "n={n} round={round}");
            }
        }
    }

    #[test]
    fn fuzz_tile_words_multi_word_matches_scalar_reference() {
        let mut rng = Lcg(0x5eed_0015);
        for n in 7..=12usize {
            for k in 0..=n.min(9) {
                let small = random_table(&mut rng, k);
                let mut out = vec![0u64; words_len(n)];
                tile_words(small.words(), k, n, &mut out);
                let big = TruthTable::from_words(n, out).unwrap();
                for m in 0..(1usize << n) {
                    assert_eq!(big.bit(m), small.bit(m & ((1 << k) - 1)), "k={k} n={n} m={m}");
                }
            }
        }
    }

    #[test]
    fn w4_lane_ops_match_scalar() {
        let mut rng = Lcg(0x5eed_0016);
        for _ in 0..64 {
            let a: [u64; 4] = std::array::from_fn(|_| rng.next() << 11 | rng.next());
            let b: [u64; 4] = std::array::from_fn(|_| rng.next() << 11 | rng.next());
            let s = (rng.next() % 64) as u32;
            let (wa, wb) = (W4(a), W4(b));
            for lane in 0..4 {
                assert_eq!((wa & wb).0[lane], a[lane] & b[lane]);
                assert_eq!((wa | wb).0[lane], a[lane] | b[lane]);
                assert_eq!((wa ^ wb).0[lane], a[lane] ^ b[lane]);
                assert_eq!((!wa).0[lane], !a[lane]);
                assert_eq!((wa << s).0[lane], a[lane] << s);
                assert_eq!((wa >> s).0[lane], a[lane] >> s);
            }
            assert_eq!(wa.or_lanes(), a[0] | a[1] | a[2] | a[3]);
            assert_eq!(wa.any(), a.iter().any(|&w| w != 0));
            assert_eq!(W4::splat(a[0]).0, [a[0]; 4]);
        }
        assert!(!W4::ZERO.any());
    }

    #[test]
    fn tile_replicates_low_variables() {
        let mut rng = Lcg(0x5eed_0005);
        for k in 0..=8usize {
            for n in k..=9usize {
                let small = random_table(&mut rng, k);
                let mut out = vec![0u64; words_len(n)];
                tile_words(small.words(), k, n, &mut out);
                let big = TruthTable::from_words(n, out).unwrap();
                for m in 0..(1usize << n) {
                    assert_eq!(big.bit(m), small.bit(m & ((1 << k) - 1)), "k={k} n={n} m={m}");
                }
            }
        }
    }
}
