//! Word-level truth-table kernels over raw `u64` buffers.
//!
//! The factorization engine (`stp-synth`) spends its time slicing
//! decomposition charts out of truth tables — per candidate split, per
//! shared assignment. Doing that one scalar `eval` per cell costs
//! `rows × cols × shared` table probes; these kernels do the same work
//! with a constant number of word shuffles and cofactor masks per
//! table, on caller-owned buffers, so the hot loops never touch the
//! heap.
//!
//! All functions operate on a packed LSB-first table of `num_vars`
//! inputs, exactly the [`TruthTable`](crate::TruthTable) word layout:
//! bit `m` of the buffer is the function value at minterm `m`, buffers
//! hold `words_len(num_vars)` words, and for fewer than 6 variables the
//! unused tail bits of word 0 must be zero (every kernel preserves that
//! invariant). The [`TruthTable`] methods `swap_inputs`, `compact_on`,
//! `expand_onto` and `support_mask` wrap these kernels for callers that
//! prefer the owned API.

/// Masks extracting the positive cofactor of variables 0–5 within one
/// word (the standard "magic numbers" of truth-table manipulation).
pub const VAR_MASK: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Number of `u64` words a `num_vars`-input table occupies.
pub const fn words_len(num_vars: usize) -> usize {
    if num_vars <= 6 {
        1
    } else {
        1 << (num_vars - 6)
    }
}

/// A mask of the `count` lowest bits (`count ≤ 64`).
pub const fn low_mask(count: usize) -> u64 {
    if count >= 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Replaces the table with its `var = 0` cofactor, replicated so `var`
/// becomes a don't-care (same semantics as
/// [`TruthTable::cofactor`](crate::TruthTable::cofactor) with
/// `value = false`).
///
/// # Panics
///
/// Panics if `var >= num_vars` (debug assertion on the buffer length).
pub fn cofactor0_in_place(words: &mut [u64], num_vars: usize, var: usize) {
    assert!(var < num_vars, "variable {var} out of range");
    debug_assert_eq!(words.len(), words_len(num_vars));
    if var < 6 {
        let shift = 1usize << var;
        let mask = VAR_MASK[var];
        for w in words.iter_mut() {
            let lo = *w & !mask;
            *w = lo | (lo << shift);
        }
    } else {
        let stride = 1usize << (var - 6);
        // Forward order is safe: sources live in even-numbered blocks,
        // which the loop leaves untouched.
        for i in 0..words.len() {
            let block = i / stride;
            words[i] = words[(block & !1usize) * stride + (i % stride)];
        }
    }
}

/// Swaps input variables `a` and `b` in place — one masked delta-swap
/// per word (or word pair), never a per-minterm loop.
///
/// # Panics
///
/// Panics if either variable is `>= num_vars`.
pub fn swap_in_place(words: &mut [u64], num_vars: usize, a: usize, b: usize) {
    assert!(a < num_vars && b < num_vars, "variables ({a}, {b}) out of range");
    debug_assert_eq!(words.len(), words_len(num_vars));
    if a == b {
        return;
    }
    let (i, j) = if a < b { (a, b) } else { (b, a) };
    if j < 6 {
        // Both inside one word: cells with (x_j, x_i) = (1, 0) trade
        // places with (0, 1), a distance of 2^j − 2^i apart.
        let shift = (1usize << j) - (1usize << i);
        let down = VAR_MASK[j] & !VAR_MASK[i];
        let up = !VAR_MASK[j] & VAR_MASK[i];
        let keep = !(down | up);
        for w in words.iter_mut() {
            *w = (*w & keep) | ((*w & down) >> shift) | ((*w & up) << shift);
        }
    } else if i < 6 {
        // One in-word variable, one word-index variable: exchange the
        // x_i = 1 half of the low word with the x_i = 0 half of the
        // high word, shifted by 2^i.
        let stride = 1usize << (j - 6);
        let s = 1usize << i;
        let m = VAR_MASK[i];
        let mut base = 0;
        while base < words.len() {
            for off in base..base + stride {
                let lo = words[off];
                let hi = words[off + stride];
                words[off] = (lo & !m) | ((hi & !m) << s);
                words[off + stride] = (hi & m) | ((lo & m) >> s);
            }
            base += 2 * stride;
        }
    } else {
        // Both are word-index variables: swap whole words.
        let si = 1usize << (i - 6);
        let sj = 1usize << (j - 6);
        for idx in 0..words.len() {
            if idx & si != 0 && idx & sj == 0 {
                words.swap(idx, idx ^ si ^ sj);
            }
        }
    }
}

/// The set of variables the table depends on, as a bitmask (bit `v` set
/// ⇔ the function's two `v`-cofactors differ). Word-level equivalent of
/// [`TruthTable::support`](crate::TruthTable::support), without the
/// `Vec` (and without materializing the cofactors).
pub fn support_mask(words: &[u64], num_vars: usize) -> u64 {
    debug_assert_eq!(words.len(), words_len(num_vars));
    let mut mask = 0u64;
    for (var, &vm) in VAR_MASK.iter().enumerate().take(num_vars.min(6)) {
        let shift = 1usize << var;
        let zeros = !vm & if num_vars < 6 { low_mask(1 << num_vars) } else { u64::MAX };
        let mut diff = 0u64;
        for w in words {
            diff |= ((*w >> shift) ^ *w) & zeros;
        }
        if diff != 0 {
            mask |= 1u64 << var;
        }
    }
    for var in 6..num_vars {
        let stride = 1usize << (var - 6);
        let mut diff = 0u64;
        for i in 0..words.len() {
            if i & stride == 0 {
                diff |= words[i] ^ words[i | stride];
            }
        }
        if diff != 0 {
            mask |= 1u64 << var;
        }
    }
    mask
}

/// Computes the transposition sequence that moves `vars[k]` to input
/// position `k` for every `k`, writing `(destination, source)` pairs
/// into `plan` and returning how many swaps are needed (≤ `vars.len()`).
///
/// Applying the swaps front to back performs the reordering; applying
/// them back to front undoes it (each transposition is an involution).
/// The plan is a pure function of `(num_vars, vars)`, so a compaction
/// and the matching expansion agree on the ordering by construction.
///
/// # Panics
///
/// Panics if `vars` repeats a variable or names one `>= num_vars`
/// (`num_vars ≤ 64`).
pub fn front_swap_plan(num_vars: usize, vars: &[usize], plan: &mut [(u8, u8)]) -> usize {
    assert!(num_vars <= 64, "front_swap_plan supports at most 64 variables");
    let mut at = [0u8; 64]; // at[p] = variable currently at position p
    let mut pos = [0u8; 64]; // pos[v] = current position of variable v
    for p in 0..num_vars {
        at[p] = p as u8;
        pos[p] = p as u8;
    }
    let mut seen = 0u64;
    let mut len = 0;
    for (i, &v) in vars.iter().enumerate() {
        assert!(v < num_vars, "variable {v} out of range");
        assert!(seen & (1u64 << v) == 0, "variable {v} listed twice");
        seen |= 1u64 << v;
        let p = pos[v] as usize;
        if p != i {
            plan[len] = (i as u8, p as u8);
            len += 1;
            let displaced = at[i];
            at[i] = v as u8;
            at[p] = displaced;
            pos[v] = i as u8;
            pos[displaced as usize] = p as u8;
        }
    }
    len
}

/// Tiles a `k`-variable table across an `num_vars`-variable buffer
/// (`k ≤ num_vars`): the result equals `compact` on its first `k`
/// inputs and ignores the rest. This is the word-level replication step
/// of operand expansion (the inverse of truncating a table whose upper
/// variables are don't-cares).
pub fn tile_words(compact: &[u64], k: usize, num_vars: usize, out: &mut [u64]) {
    debug_assert!(k <= num_vars);
    debug_assert_eq!(compact.len(), words_len(k));
    debug_assert_eq!(out.len(), words_len(num_vars));
    if k >= 6 {
        let kw = words_len(k);
        for (i, w) in out.iter_mut().enumerate() {
            *w = compact[i % kw];
        }
    } else {
        // Double the low 2^k bits until the pattern fills one word (or
        // the whole table, when num_vars < 6), then copy it everywhere.
        let mut w = compact[0] & low_mask(1 << k);
        for j in k..num_vars.min(6) {
            w |= w << (1usize << j);
        }
        for slot in out.iter_mut() {
            *slot = w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    /// A tiny deterministic LCG — the vendored `rand` is fine too, but
    /// keeping kernel tests self-contained makes them copy-pastable.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    fn random_table(rng: &mut Lcg, n: usize) -> TruthTable {
        let words = (0..words_len(n)).map(|_| rng.next() << 11 | rng.next()).collect();
        TruthTable::from_words(n, words).unwrap()
    }

    #[test]
    fn swap_matches_permute_across_arities() {
        let mut rng = Lcg(0x5eed_0001);
        for n in 1..=9 {
            for _ in 0..8 {
                let tt = random_table(&mut rng, n);
                let a = (rng.next() as usize) % n;
                let b = (rng.next() as usize) % n;
                let mut words = tt.words().to_vec();
                swap_in_place(&mut words, n, a, b);
                let mut perm: Vec<usize> = (0..n).collect();
                perm.swap(a, b);
                let expected = tt.permute(&perm).unwrap();
                assert_eq!(words, expected.words(), "n={n} swap({a},{b})");
            }
        }
    }

    #[test]
    fn cofactor0_matches_cofactor_method() {
        let mut rng = Lcg(0x5eed_0002);
        for n in 1..=9 {
            for _ in 0..8 {
                let tt = random_table(&mut rng, n);
                let v = (rng.next() as usize) % n;
                let mut words = tt.words().to_vec();
                cofactor0_in_place(&mut words, n, v);
                assert_eq!(words, tt.cofactor(v, false).words(), "n={n} var={v}");
            }
        }
    }

    #[test]
    fn support_mask_matches_support() {
        let mut rng = Lcg(0x5eed_0003);
        for n in 1..=9 {
            for _ in 0..8 {
                let tt = random_table(&mut rng, n);
                let expected = tt.support().into_iter().fold(0u64, |m, v| m | (1 << v));
                assert_eq!(support_mask(tt.words(), n), expected, "n={n}");
            }
        }
    }

    #[test]
    fn front_swap_plan_brings_vars_to_front() {
        let mut rng = Lcg(0x5eed_0004);
        for n in 2..=9usize {
            for _ in 0..8 {
                let tt = random_table(&mut rng, n);
                // A random subset in random order.
                let mut vars: Vec<usize> = (0..n).filter(|_| rng.next() & 1 == 1).collect();
                if vars.len() >= 2 && rng.next() & 1 == 1 {
                    let last = vars.len() - 1;
                    vars.swap(0, last);
                }
                let mut plan = [(0u8, 0u8); 64];
                let len = front_swap_plan(n, &vars, &mut plan);
                assert!(len <= vars.len());
                let mut words = tt.words().to_vec();
                for &(i, p) in &plan[..len] {
                    swap_in_place(&mut words, n, i as usize, p as usize);
                }
                let got = TruthTable::from_words(n, words.clone()).unwrap();
                // Position k of the reordered table must read vars[k].
                for m in 0..(1usize << n) {
                    let assign: Vec<bool> = (0..n).map(|b| (m >> b) & 1 == 1).collect();
                    let mut orig = vec![false; n];
                    let mut used = vec![false; n];
                    for (k, &v) in vars.iter().enumerate() {
                        orig[v] = assign[k];
                        used[v] = true;
                    }
                    // Unlisted variables land on the remaining
                    // positions; their values do not matter for the
                    // check as long as we mirror the plan's placement —
                    // reverse the swaps on the index instead.
                    let mut idx = m;
                    for &(i, p) in plan[..len].iter().rev() {
                        let (bi, bp) = ((idx >> i) & 1, (idx >> p) & 1);
                        idx = (idx & !((1 << i) | (1 << p))) | (bp << i) | (bi << p);
                    }
                    assert_eq!(got.bit(m), tt.bit(idx), "n={n} vars={vars:?} m={m}");
                }
                // Undoing the plan restores the original table.
                for &(i, p) in plan[..len].iter().rev() {
                    swap_in_place(&mut words, n, i as usize, p as usize);
                }
                assert_eq!(words, tt.words());
            }
        }
    }

    #[test]
    fn tile_replicates_low_variables() {
        let mut rng = Lcg(0x5eed_0005);
        for k in 0..=8usize {
            for n in k..=9usize {
                let small = random_table(&mut rng, k);
                let mut out = vec![0u64; words_len(n)];
                tile_words(small.words(), k, n, &mut out);
                let big = TruthTable::from_words(n, out).unwrap();
                for m in 0..(1usize << n) {
                    assert_eq!(big.bit(m), small.bit(m & ((1 << k) - 1)), "k={k} n={n} m={m}");
                }
            }
        }
    }
}
