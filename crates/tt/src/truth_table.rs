//! Bit-packed truth tables for Boolean functions of up to 16 variables.
//!
//! The convention is **LSB-first**: bit `m` of the table is the function
//! value at the minterm where variable `i` takes bit `i` of `m`. For
//! functions of up to 6 variables the whole table fits in one `u64`; the
//! hexadecimal rendering matches the notation used throughout the paper
//! (e.g. the running example `0x8ff8`).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use crate::error::TruthTableError;
use crate::kernel::{self, VAR_MASK};

/// Maximum supported number of variables.
pub const MAX_VARS: usize = 16;

/// A Boolean function of `num_vars` inputs, stored as a packed truth
/// table.
///
/// # Examples
///
/// ```
/// use stp_tt::TruthTable;
///
/// let a = TruthTable::variable(2, 0)?;
/// let b = TruthTable::variable(2, 1)?;
/// let and = a.clone() & b.clone();
/// assert_eq!(and.to_hex(), "8");
/// assert_eq!((a | b).to_hex(), "e");
/// # Ok::<(), stp_tt::TruthTableError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

fn words_for(num_vars: usize) -> usize {
    if num_vars <= 6 {
        1
    } else {
        1 << (num_vars - 6)
    }
}

fn used_mask(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << num_vars)) - 1
    }
}

impl TruthTable {
    fn check_vars(num_vars: usize) -> Result<(), TruthTableError> {
        if num_vars > MAX_VARS {
            Err(TruthTableError::TooManyVariables { requested: num_vars, max: MAX_VARS })
        } else {
            Ok(())
        }
    }

    /// The constant function.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::TooManyVariables`] if
    /// `num_vars > MAX_VARS`.
    pub fn constant(num_vars: usize, value: bool) -> Result<Self, TruthTableError> {
        Self::check_vars(num_vars)?;
        let mut words = vec![if value { u64::MAX } else { 0 }; words_for(num_vars)];
        if value {
            let mask = used_mask(num_vars);
            if let Some(w) = words.last_mut() {
                *w &= mask;
            }
        }
        Ok(TruthTable { num_vars, words })
    }

    /// The projection onto variable `var`.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::TooManyVariables`] or
    /// [`TruthTableError::VariableOutOfRange`].
    pub fn variable(num_vars: usize, var: usize) -> Result<Self, TruthTableError> {
        Self::check_vars(num_vars)?;
        if var >= num_vars {
            return Err(TruthTableError::VariableOutOfRange { var, num_vars });
        }
        let mut tt = Self::constant(num_vars, false)?;
        if var < 6 {
            let pattern = VAR_MASK[var] & used_mask(num_vars);
            for w in &mut tt.words {
                *w = pattern;
            }
            if num_vars < 6 {
                tt.words[0] = VAR_MASK[var] & used_mask(num_vars);
            }
        } else {
            let stride = 1usize << (var - 6);
            for (i, w) in tt.words.iter_mut().enumerate() {
                if (i / stride) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        Ok(tt)
    }

    /// Builds a table from raw words (LSB-first).
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::WordCountMismatch`] when the buffer
    /// length is wrong, or [`TruthTableError::TooManyVariables`].
    pub fn from_words(num_vars: usize, words: Vec<u64>) -> Result<Self, TruthTableError> {
        Self::check_vars(num_vars)?;
        let expected = words_for(num_vars);
        if words.len() != expected {
            return Err(TruthTableError::WordCountMismatch { expected, got: words.len() });
        }
        let mut tt = TruthTable { num_vars, words };
        tt.mask_tail();
        Ok(tt)
    }

    /// Builds a table of ≤ 6 variables from a single word.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::TooManyVariables`] if `num_vars > 6`.
    pub fn from_u64(num_vars: usize, bits: u64) -> Result<Self, TruthTableError> {
        if num_vars > 6 {
            return Err(TruthTableError::TooManyVariables { requested: num_vars, max: 6 });
        }
        Ok(TruthTable { num_vars, words: vec![bits & used_mask(num_vars)] })
    }

    /// Parses a hexadecimal truth table (most significant digit first), as
    /// written in the paper (e.g. `"8ff8"` for the running example).
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::ParseHex`] when the digit count does not
    /// equal `2^num_vars / 4` (with a minimum of one digit), or on invalid
    /// digits, and [`TruthTableError::TooManyVariables`].
    pub fn from_hex(num_vars: usize, hex: &str) -> Result<Self, TruthTableError> {
        Self::check_vars(num_vars)?;
        let digits = ((1usize << num_vars) / 4).max(1);
        if hex.len() != digits {
            return Err(TruthTableError::ParseHex {
                reason: format!(
                    "expected {digits} hex digits for {num_vars} variables, got {}",
                    hex.len()
                ),
            });
        }
        let mut words = vec![0u64; words_for(num_vars)];
        for (pos, ch) in hex.chars().rev().enumerate() {
            let v = ch.to_digit(16).ok_or_else(|| TruthTableError::ParseHex {
                reason: format!("invalid hex digit '{ch}'"),
            })? as u64;
            let bit = pos * 4;
            words[bit / 64] |= v << (bit % 64);
        }
        let mut tt = TruthTable { num_vars, words };
        tt.mask_tail();
        Ok(tt)
    }

    /// Builds a table by evaluating `f` at every minterm; the slice holds
    /// the value of each variable.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::TooManyVariables`].
    pub fn from_fn<F>(num_vars: usize, mut f: F) -> Result<Self, TruthTableError>
    where
        F: FnMut(&[bool]) -> bool,
    {
        Self::check_vars(num_vars)?;
        let mut tt = Self::constant(num_vars, false)?;
        let mut assign = vec![false; num_vars];
        for m in 0..(1usize << num_vars) {
            for (i, slot) in assign.iter_mut().enumerate() {
                *slot = (m >> i) & 1 == 1;
            }
            if f(&assign) {
                tt.words[m / 64] |= 1u64 << (m % 64);
            }
        }
        Ok(tt)
    }

    fn mask_tail(&mut self) {
        if self.num_vars < 6 {
            let mask = used_mask(self.num_vars);
            self.words[0] &= mask;
        }
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of minterms, `2^num_vars`.
    pub fn num_bits(&self) -> usize {
        1 << self.num_vars
    }

    /// The packed words (LSB-first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The function value at minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^num_vars`.
    pub fn bit(&self, m: usize) -> bool {
        assert!(m < self.num_bits(), "minterm {m} out of range");
        (self.words[m / 64] >> (m % 64)) & 1 == 1
    }

    /// Evaluates the function at an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len() != num_vars`.
    pub fn eval(&self, assign: &[bool]) -> bool {
        assert_eq!(assign.len(), self.num_vars, "assignment length mismatch");
        let mut m = 0usize;
        for (i, &v) in assign.iter().enumerate() {
            if v {
                m |= 1 << i;
            }
        }
        self.bit(m)
    }

    /// Number of minterms where the function is true.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns the cofactor with `var` fixed to `value`, as a table over
    /// the **same** variable set (the fixed variable becomes a don't-care).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> TruthTable {
        assert!(var < self.num_vars, "variable {var} out of range");
        let mut out = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            let mask = VAR_MASK[var];
            for w in &mut out.words {
                if value {
                    let hi = *w & mask;
                    *w = hi | (hi >> shift);
                } else {
                    let lo = *w & !mask;
                    *w = lo | (lo << shift);
                }
            }
        } else {
            let stride = 1usize << (var - 6);
            let n = out.words.len();
            for i in 0..n {
                let block = i / stride;
                let src = if value {
                    (block | 1) * stride + (i % stride)
                } else {
                    (block & !1usize) * stride + (i % stride)
                };
                out.words[i] = self.words[src];
            }
        }
        out.mask_tail();
        out
    }

    /// `true` when the function's value depends on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// The set of variables the function depends on, ascending.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// The support as a bitmask (bit `v` set ⇔ the function depends on
    /// `v`) — the allocation-free form of [`support`](Self::support),
    /// computed by word-level cofactor comparison.
    pub fn support_mask(&self) -> u64 {
        kernel::support_mask(&self.words, self.num_vars)
    }

    /// Swaps inputs `a` and `b` — equivalent to [`permute`](Self::permute)
    /// with the transposition `(a b)`, but as masked delta-swaps instead
    /// of a per-minterm loop.
    ///
    /// # Panics
    ///
    /// Panics if either variable is `>= num_vars`.
    pub fn swap_inputs(&self, a: usize, b: usize) -> TruthTable {
        let mut out = self.clone();
        kernel::swap_in_place(&mut out.words, self.num_vars, a, b);
        out
    }

    /// Projects the function onto `vars`, which must cover its support:
    /// the result is a `vars.len()`-input table whose input `k` reads
    /// what `vars[k]` read in `self`. Variables outside `vars` are fixed
    /// to `0` (a no-op when `vars` ⊇ support).
    ///
    /// This is the word-level compaction primitive behind the
    /// factorization fast path: compacting a spec onto `B ++ A ++ S`
    /// turns every decomposition chart of the split `(A, B, S)` into a
    /// contiguous, power-of-two-aligned bit slice.
    ///
    /// # Panics
    ///
    /// Panics if `vars` repeats a variable or names one `>= num_vars`.
    pub fn compact_on(&self, vars: &[usize]) -> TruthTable {
        let mut words = self.words.clone();
        let mut listed = 0u64;
        for &v in vars {
            assert!(v < self.num_vars, "variable {v} out of range");
            listed |= 1u64 << v;
        }
        for v in 0..self.num_vars {
            if listed >> v & 1 == 0 {
                kernel::cofactor0_in_place(&mut words, self.num_vars, v);
            }
        }
        let mut plan = [(0u8, 0u8); MAX_VARS];
        let len = kernel::front_swap_plan(self.num_vars, vars, &mut plan);
        for &(i, p) in &plan[..len] {
            kernel::swap_in_place(&mut words, self.num_vars, i as usize, p as usize);
        }
        words.truncate(kernel::words_len(vars.len()));
        let mut out = TruthTable { num_vars: vars.len(), words };
        out.mask_tail();
        out
    }

    /// The inverse of [`compact_on`](Self::compact_on): expands a
    /// `self.num_vars()`-input table to `num_vars` inputs so that input
    /// `vars[k]` of the result reads input `k` of `self` (all other
    /// variables are don't-cares). Word-level tile-and-unswap, no
    /// per-minterm loop.
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() != self.num_vars()`, if `num_vars` exceeds
    /// [`MAX_VARS`], or if `vars` repeats a variable or names one
    /// `>= num_vars`.
    pub fn expand_onto(&self, num_vars: usize, vars: &[usize]) -> TruthTable {
        assert_eq!(vars.len(), self.num_vars, "vars must map every input of self");
        assert!(num_vars <= MAX_VARS, "{num_vars} exceeds MAX_VARS");
        let mut words = vec![0u64; kernel::words_len(num_vars)];
        kernel::tile_words(&self.words, self.num_vars, num_vars, &mut words);
        let mut plan = [(0u8, 0u8); MAX_VARS];
        let len = kernel::front_swap_plan(num_vars, vars, &mut plan);
        for &(i, p) in plan[..len].iter().rev() {
            kernel::swap_in_place(&mut words, num_vars, i as usize, p as usize);
        }
        let mut out = TruthTable { num_vars, words };
        out.mask_tail();
        out
    }

    /// Negates input `var` (swaps its cofactors).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn flip_input(&self, var: usize) -> TruthTable {
        assert!(var < self.num_vars, "variable {var} out of range");
        let mut out = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            let mask = VAR_MASK[var];
            for w in &mut out.words {
                *w = ((*w & mask) >> shift) | ((*w & !mask) << shift);
            }
        } else {
            let stride = 1usize << (var - 6);
            let n = out.words.len();
            for i in 0..n {
                let block = i / stride;
                let src = (block ^ 1) * stride + (i % stride);
                out.words[i] = self.words[src];
            }
        }
        out.mask_tail();
        out
    }

    /// Applies an input permutation: variable `i` of the result reads the
    /// value that variable `perm[i]` read before (`g(x) = f(x ∘ perm)` in
    /// the sense that minterm bits are rearranged so position `i` receives
    /// old position `perm[i]`).
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::InvalidPermutation`] when `perm` is not
    /// a permutation of `0..num_vars`.
    pub fn permute(&self, perm: &[usize]) -> Result<TruthTable, TruthTableError> {
        if perm.len() != self.num_vars {
            return Err(TruthTableError::InvalidPermutation);
        }
        let mut seen = vec![false; self.num_vars];
        for &p in perm {
            if p >= self.num_vars || seen[p] {
                return Err(TruthTableError::InvalidPermutation);
            }
            seen[p] = true;
        }
        let mut out =
            TruthTable::constant(self.num_vars, false).expect("same variable count is valid");
        for m in 0..self.num_bits() {
            if self.bit(m) {
                // Minterm m assigns old variable j the bit (m >> j) & 1;
                // in the new table, variable i holds what old perm[i] held.
                let mut nm = 0usize;
                for (i, &p) in perm.iter().enumerate() {
                    if (m >> p) & 1 == 1 {
                        nm |= 1 << i;
                    }
                }
                out.words[nm / 64] |= 1u64 << (nm % 64);
            }
        }
        Ok(out)
    }

    /// `true` for constants and (possibly complemented) single-variable
    /// projections — the functions that never cost a gate.
    pub fn is_trivial(&self) -> bool {
        let ones = self.count_ones();
        if ones == 0 || ones == self.num_bits() {
            return true;
        }
        for v in 0..self.num_vars {
            match TruthTable::variable(self.num_vars, v) {
                Ok(proj) => {
                    if *self == proj || *self == proj.clone().not() {
                        return true;
                    }
                }
                Err(_) => unreachable!("v < num_vars"),
            }
        }
        false
    }

    /// Renders as lowercase hexadecimal, most significant digit first,
    /// matching the paper's `0x…` notation (without the prefix).
    pub fn to_hex(&self) -> String {
        let digits = (self.num_bits() / 4).max(1);
        let mut out = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let bit = d * 4;
            let nibble = if self.num_bits() < 4 {
                self.words[0] & used_mask(self.num_vars)
            } else {
                (self.words[bit / 64] >> (bit % 64)) & 0xf
            };
            out.push(char::from_digit(nibble as u32, 16).expect("nibble < 16"));
        }
        out
    }

    /// Extends the table to `new_num_vars` variables (the new variables
    /// are don't-cares).
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::TooManyVariables`] when the target
    /// exceeds [`MAX_VARS`], or [`TruthTableError::VariableOutOfRange`]
    /// when shrinking is requested.
    pub fn extend_to(&self, new_num_vars: usize) -> Result<TruthTable, TruthTableError> {
        Self::check_vars(new_num_vars)?;
        if new_num_vars < self.num_vars {
            return Err(TruthTableError::VariableOutOfRange {
                var: new_num_vars,
                num_vars: self.num_vars,
            });
        }
        TruthTable::from_fn(new_num_vars, |assign| self.eval(&assign[..self.num_vars]))
    }

    /// Restricts the table to its first `new_num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::VariableOutOfRange`] when the function
    /// depends on a dropped variable.
    pub fn shrink_to(&self, new_num_vars: usize) -> Result<TruthTable, TruthTableError> {
        for v in new_num_vars..self.num_vars {
            if self.depends_on(v) {
                return Err(TruthTableError::VariableOutOfRange { var: v, num_vars: new_num_vars });
            }
        }
        TruthTable::from_fn(new_num_vars, |assign| {
            let mut full = assign.to_vec();
            full.resize(self.num_vars, false);
            self.eval(&full)
        })
    }

    /// Combines two equal-arity tables with a 2-input operator given as a
    /// 4-bit truth table (`tt2` bit `a + 2b` is `σ(a, b)`).
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::ArityMismatch`] when the variable counts
    /// differ.
    pub fn binary_op(&self, tt2: u8, rhs: &TruthTable) -> Result<TruthTable, TruthTableError> {
        if self.num_vars != rhs.num_vars {
            return Err(TruthTableError::ArityMismatch {
                left: self.num_vars,
                right: rhs.num_vars,
            });
        }
        let mut out = self.clone();
        for (w, (&a, &b)) in out.words.iter_mut().zip(self.words.iter().zip(&rhs.words)) {
            let mut v = 0u64;
            if tt2 & 0b0001 != 0 {
                v |= !a & !b;
            }
            if tt2 & 0b0010 != 0 {
                v |= a & !b;
            }
            if tt2 & 0b0100 != 0 {
                v |= !a & b;
            }
            if tt2 & 0b1000 != 0 {
                v |= a & b;
            }
            *w = v;
        }
        out.mask_tail();
        Ok(out)
    }
}

impl Not for TruthTable {
    type Output = TruthTable;

    fn not(mut self) -> TruthTable {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
        self
    }
}

impl BitAnd for TruthTable {
    type Output = TruthTable;

    /// # Panics
    ///
    /// Panics if the variable counts differ; use
    /// [`TruthTable::binary_op`] for a fallible version.
    fn bitand(self, rhs: TruthTable) -> TruthTable {
        self.binary_op(0b1000, &rhs).expect("operand arities must match")
    }
}

impl BitOr for TruthTable {
    type Output = TruthTable;

    /// # Panics
    ///
    /// Panics if the variable counts differ; use
    /// [`TruthTable::binary_op`] for a fallible version.
    fn bitor(self, rhs: TruthTable) -> TruthTable {
        self.binary_op(0b1110, &rhs).expect("operand arities must match")
    }
}

impl BitXor for TruthTable {
    type Output = TruthTable;

    /// # Panics
    ///
    /// Panics if the variable counts differ; use
    /// [`TruthTable::binary_op`] for a fallible version.
    fn bitxor(self, rhs: TruthTable) -> TruthTable {
        self.binary_op(0b0110, &rhs).expect("operand arities must match")
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, 0x{})", self.num_vars, self.to_hex())
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_have_expected_patterns() {
        let a = TruthTable::variable(2, 0).unwrap();
        let b = TruthTable::variable(2, 1).unwrap();
        assert_eq!(a.words()[0], 0b1010);
        assert_eq!(b.words()[0], 0b1100);
    }

    #[test]
    fn hex_round_trip() {
        let tt = TruthTable::from_hex(4, "8ff8").unwrap();
        assert_eq!(tt.to_hex(), "8ff8");
        assert_eq!(tt.words()[0], 0x8ff8);
        assert_eq!(format!("{tt}"), "0x8ff8");
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(TruthTable::from_hex(4, "8ff").is_err());
        assert!(TruthTable::from_hex(4, "8fg8").is_err());
    }

    #[test]
    fn hex_eight_variables() {
        let hex = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";
        let tt = TruthTable::from_hex(8, hex).unwrap();
        assert_eq!(tt.to_hex(), hex);
        assert_eq!(tt.words().len(), 4);
    }

    #[test]
    fn operators_match_pointwise_semantics() {
        let a = TruthTable::variable(3, 0).unwrap();
        let b = TruthTable::variable(3, 2).unwrap();
        let and = a.clone() & b.clone();
        let or = a.clone() | b.clone();
        let xor = a.clone() ^ b.clone();
        for m in 0..8 {
            let av = m & 1 == 1;
            let bv = (m >> 2) & 1 == 1;
            assert_eq!(and.bit(m), av & bv);
            assert_eq!(or.bit(m), av | bv);
            assert_eq!(xor.bit(m), av ^ bv);
        }
    }

    #[test]
    fn not_masks_tail() {
        let f = TruthTable::constant(2, false).unwrap();
        let t = !f;
        assert_eq!(t.words()[0], 0b1111);
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn eval_agrees_with_bit() {
        let tt = TruthTable::from_hex(4, "6996").unwrap();
        for m in 0..16 {
            let assign: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(tt.eval(&assign), tt.bit(m));
        }
    }

    #[test]
    fn cofactor_small_vars() {
        // f = a XOR b: cofactor a=1 is !b, a=0 is b.
        let a = TruthTable::variable(2, 0).unwrap();
        let b = TruthTable::variable(2, 1).unwrap();
        let f = a ^ b.clone();
        assert_eq!(f.cofactor(0, true), !b.clone());
        assert_eq!(f.cofactor(0, false), b);
    }

    #[test]
    fn cofactor_large_vars() {
        // 7-variable function depending on variable 6.
        let v6 = TruthTable::variable(7, 6).unwrap();
        let v0 = TruthTable::variable(7, 0).unwrap();
        let f = v6.clone() & v0.clone();
        assert_eq!(f.cofactor(6, true), v0);
        assert_eq!(f.cofactor(6, false), TruthTable::constant(7, false).unwrap());
    }

    #[test]
    fn support_and_depends_on() {
        let a = TruthTable::variable(4, 0).unwrap();
        let c = TruthTable::variable(4, 2).unwrap();
        let f = a & c;
        assert_eq!(f.support(), vec![0, 2]);
        assert!(f.depends_on(0));
        assert!(!f.depends_on(1));
        assert!(!f.depends_on(3));
    }

    #[test]
    fn flip_input_is_involution() {
        let tt = TruthTable::from_hex(4, "cafe").unwrap();
        for v in 0..4 {
            assert_eq!(tt.flip_input(v).flip_input(v), tt);
        }
    }

    #[test]
    fn flip_input_large_var() {
        let tt = TruthTable::variable(7, 6).unwrap();
        assert_eq!(tt.flip_input(6), !TruthTable::variable(7, 6).unwrap());
    }

    #[test]
    fn permute_identity_and_swap() {
        let tt = TruthTable::from_hex(3, "d8").unwrap();
        assert_eq!(tt.permute(&[0, 1, 2]).unwrap(), tt);
        let swapped = tt.permute(&[1, 0, 2]).unwrap();
        // Swapping twice restores.
        assert_eq!(swapped.permute(&[1, 0, 2]).unwrap(), tt);
        // Semantics: new var 0 reads old var 1.
        for m in 0..8usize {
            let assign: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let old = [assign[1], assign[0], assign[2]];
            assert_eq!(swapped.eval(&assign), tt.eval(&old));
        }
    }

    #[test]
    fn permute_rejects_non_permutations() {
        let tt = TruthTable::constant(3, false).unwrap();
        assert!(tt.permute(&[0, 0, 1]).is_err());
        assert!(tt.permute(&[0, 1]).is_err());
        assert!(tt.permute(&[0, 1, 3]).is_err());
    }

    #[test]
    fn trivial_functions_detected() {
        assert!(TruthTable::constant(3, true).unwrap().is_trivial());
        assert!(TruthTable::constant(3, false).unwrap().is_trivial());
        assert!(TruthTable::variable(3, 1).unwrap().is_trivial());
        assert!((!TruthTable::variable(3, 1).unwrap()).is_trivial());
        let a = TruthTable::variable(3, 0).unwrap();
        let b = TruthTable::variable(3, 1).unwrap();
        assert!(!(a & b).is_trivial());
    }

    #[test]
    fn extend_and_shrink() {
        let a2 = TruthTable::variable(2, 0).unwrap();
        let a4 = a2.extend_to(4).unwrap();
        assert_eq!(a4, TruthTable::variable(4, 0).unwrap());
        assert_eq!(a4.shrink_to(2).unwrap(), a2);
        // Shrinking away a support variable fails.
        let d = TruthTable::variable(4, 3).unwrap();
        assert!(d.shrink_to(2).is_err());
    }

    #[test]
    fn binary_op_arity_mismatch() {
        let a = TruthTable::constant(2, true).unwrap();
        let b = TruthTable::constant(3, true).unwrap();
        assert!(a.binary_op(0b1000, &b).is_err());
    }

    #[test]
    fn from_fn_matches_direct_construction() {
        let maj = TruthTable::from_fn(3, |a| (a[0] as u8 + a[1] as u8 + a[2] as u8) >= 2).unwrap();
        assert_eq!(maj.to_hex(), "e8");
    }

    #[test]
    fn count_ones_examples() {
        assert_eq!(TruthTable::from_hex(4, "8ff8").unwrap().count_ones(), 10);
        assert_eq!(TruthTable::variable(6, 3).unwrap().count_ones(), 32);
    }

    #[test]
    fn too_many_variables_rejected() {
        assert!(TruthTable::constant(MAX_VARS + 1, false).is_err());
        assert!(TruthTable::from_u64(7, 0).is_err());
    }

    #[test]
    fn single_variable_table() {
        let x = TruthTable::variable(1, 0).unwrap();
        assert_eq!(x.words()[0], 0b10);
        assert_eq!(x.to_hex(), "2");
        // One variable, two minterms, one hex digit.
        assert_eq!(TruthTable::from_hex(1, "2").unwrap(), x);
    }

    #[test]
    fn zero_variable_table() {
        let t = TruthTable::constant(0, true).unwrap();
        assert_eq!(t.num_bits(), 1);
        assert!(t.bit(0));
        assert_eq!(t.to_hex(), "1");
        assert!(t.eval(&[]));
    }

    #[test]
    fn swap_inputs_is_a_transposition() {
        let t = TruthTable::from_hex(4, "8ff8").unwrap();
        let mut perm = vec![0usize, 1, 2, 3];
        perm.swap(1, 3);
        assert_eq!(t.swap_inputs(1, 3), t.permute(&perm).unwrap());
        assert_eq!(t.swap_inputs(1, 3).swap_inputs(1, 3), t);
        assert_eq!(t.swap_inputs(2, 2), t);
    }

    #[test]
    fn support_mask_matches_support_list() {
        for (n, hex) in [(4usize, "8ff8"), (4, "00ff"), (3, "e8"), (2, "8")] {
            let t = TruthTable::from_hex(n, hex).unwrap();
            let expected = t.support().into_iter().fold(0u64, |m, v| m | (1 << v));
            assert_eq!(t.support_mask(), expected, "{hex}");
        }
    }

    #[test]
    fn compact_on_matches_scalar_projection() {
        // 0x8ff8 restricted to x3, x1 (in that order), x0 and x2 fixed
        // to 0: the compact table's input k must read vars[k].
        let t = TruthTable::from_hex(4, "8ff8").unwrap();
        let vars = [3usize, 1];
        let compact = t.compact_on(&vars);
        assert_eq!(compact.num_vars(), 2);
        for m in 0..4usize {
            let mut assign = vec![false; 4];
            for (k, &v) in vars.iter().enumerate() {
                assign[v] = (m >> k) & 1 == 1;
            }
            assert_eq!(compact.bit(m), t.eval(&assign), "minterm {m}");
        }
    }

    #[test]
    fn expand_onto_inverts_compact_on() {
        // A function over a scattered variable subset survives the
        // round trip compact → expand, including across the word
        // boundary (7 inputs).
        for (n, vars) in [(4usize, vec![3usize, 1]), (7, vec![6, 0, 4])] {
            let spec = TruthTable::from_fn(n, |assign| {
                assign[vars[0]] ^ (assign[vars[1]] & assign[*vars.last().unwrap()])
            })
            .unwrap();
            let compact = spec.compact_on(&vars);
            assert_eq!(compact.expand_onto(n, &vars), spec, "n={n} vars={vars:?}");
        }
    }
}
