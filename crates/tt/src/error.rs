//! Error types for the `stp-tt` crate.

use std::error::Error;
use std::fmt;

/// Errors raised by truth-table construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruthTableError {
    /// The variable count exceeds the supported maximum.
    TooManyVariables {
        /// Requested variable count.
        requested: usize,
        /// Supported maximum.
        max: usize,
    },
    /// A variable index is out of range.
    VariableOutOfRange {
        /// The offending variable index.
        var: usize,
        /// The table's variable count.
        num_vars: usize,
    },
    /// A word buffer does not match the variable count.
    WordCountMismatch {
        /// Number of words required.
        expected: usize,
        /// Number of words provided.
        got: usize,
    },
    /// A hex string has the wrong length or invalid digits.
    ParseHex {
        /// Human-readable reason.
        reason: String,
    },
    /// Two tables with differing variable counts were combined.
    ArityMismatch {
        /// Left operand variable count.
        left: usize,
        /// Right operand variable count.
        right: usize,
    },
    /// A permutation slice is not a permutation of `0..num_vars`.
    InvalidPermutation,
}

impl fmt::Display for TruthTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthTableError::TooManyVariables { requested, max } => {
                write!(f, "{requested} variables exceeds supported maximum of {max}")
            }
            TruthTableError::VariableOutOfRange { var, num_vars } => {
                write!(f, "variable {var} out of range for a {num_vars}-variable table")
            }
            TruthTableError::WordCountMismatch { expected, got } => {
                write!(f, "expected {expected} truth-table words, got {got}")
            }
            TruthTableError::ParseHex { reason } => write!(f, "invalid hex truth table: {reason}"),
            TruthTableError::ArityMismatch { left, right } => {
                write!(f, "cannot combine tables with {left} and {right} variables")
            }
            TruthTableError::InvalidPermutation => {
                write!(f, "slice is not a permutation of the table's variables")
            }
        }
    }
}

impl Error for TruthTableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TruthTableError::TooManyVariables { requested: 20, max: 16 }
            .to_string()
            .contains("20"));
        assert!(TruthTableError::ParseHex { reason: "odd length".into() }
            .to_string()
            .contains("odd length"));
    }
}
