//! Property-based tests for the truth-table substrate.

use proptest::prelude::*;
use stp_tt::{canonicalize, is_full_dsd, try_top_decomposition, TruthTable};

fn tt_strategy(n: usize) -> impl Strategy<Value = TruthTable> {
    let bits = 1usize << n;
    let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
    any::<u64>().prop_map(move |raw| TruthTable::from_u64(n, raw & mask).expect("n <= 6"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hex rendering round-trips.
    #[test]
    fn hex_round_trip(tt in tt_strategy(4)) {
        let again = TruthTable::from_hex(4, &tt.to_hex()).unwrap();
        prop_assert_eq!(tt, again);
    }

    /// Cofactors are independent of the eliminated variable.
    #[test]
    fn cofactor_removes_dependence(tt in tt_strategy(5), var in 0usize..5, value: bool) {
        let cof = tt.cofactor(var, value);
        prop_assert!(!cof.depends_on(var));
    }

    /// `flip_input` is an involution that preserves the ON-set size.
    #[test]
    fn flip_involution(tt in tt_strategy(5), var in 0usize..5) {
        prop_assert_eq!(tt.flip_input(var).flip_input(var), tt.clone());
        prop_assert_eq!(tt.flip_input(var).count_ones(), tt.count_ones());
    }

    /// Support is exactly the set of variables whose flip changes the
    /// function.
    #[test]
    fn support_definition(tt in tt_strategy(4)) {
        for v in 0..4 {
            let changes = tt.flip_input(v) != tt;
            prop_assert_eq!(tt.support().contains(&v), changes);
        }
    }

    /// De Morgan over the operator impls.
    #[test]
    fn de_morgan(a in tt_strategy(4), b in tt_strategy(4)) {
        let lhs = !(a.clone() & b.clone());
        let rhs = (!a) | (!b);
        prop_assert_eq!(lhs, rhs);
    }

    /// A successful top decomposition reconstructs the function.
    #[test]
    fn top_decomposition_reconstructs(tt in tt_strategy(4), a_mask in 1usize..15) {
        if tt.support().len() == 4 {
            if let Some((h1, h2, g)) = try_top_decomposition(&tt, a_mask) {
                let a_vars: Vec<usize> = (0..4).filter(|&v| (a_mask >> v) & 1 == 1).collect();
                let b_vars: Vec<usize> = (0..4).filter(|&v| (a_mask >> v) & 1 == 0).collect();
                let rebuilt = TruthTable::from_fn(4, |x| {
                    let ia: Vec<bool> = a_vars.iter().map(|&v| x[v]).collect();
                    let ib: Vec<bool> = b_vars.iter().map(|&v| x[v]).collect();
                    let va = h1.eval(&ia);
                    let vb = h2.eval(&ib);
                    (g >> ((va as u8) + 2 * (vb as u8))) & 1 == 1
                }).unwrap();
                prop_assert_eq!(rebuilt, tt);
            }
        }
    }

    /// NPN equivalence relation sanity: representatives partition the
    /// space (same rep ⇔ reachable by a transform — spot-check via
    /// negation, a guaranteed class member).
    #[test]
    fn npn_closed_under_output_negation(tt in tt_strategy(4)) {
        prop_assert_eq!(
            canonicalize(&tt).representative,
            canonicalize(&(!tt)).representative
        );
    }

    /// Full-DSD status is invariant under input negation.
    #[test]
    fn dsd_invariant_under_input_flip(tt in tt_strategy(4), var in 0usize..4) {
        prop_assert_eq!(is_full_dsd(&tt), is_full_dsd(&tt.flip_input(var)));
    }
}
