//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! The standard interchange format of academic logic-synthesis flows
//! (ABC, SIS, mockturtle). Networks here are 2-LUT networks, so the
//! writer emits one `.names` table per gate (plus inverters for
//! complemented outputs), and the reader accepts `.names` tables of up
//! to two inputs — buffers, inverters, constants, and 2-LUTs — which is
//! exactly what the writer produces and what 2-LUT flows exchange.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::error::NetworkError;
use crate::network::{Network, Sig};

/// Errors raised while parsing BLIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBlifError {
    /// A directive other than the supported subset was found.
    UnsupportedDirective {
        /// The directive (e.g. `.latch`).
        directive: String,
    },
    /// A `.names` table has more than two inputs.
    TooManyInputs {
        /// The table's output signal name.
        output: String,
        /// Number of inputs declared.
        inputs: usize,
    },
    /// A cube row is malformed.
    BadCube {
        /// The offending line.
        line: String,
    },
    /// A signal is referenced before (or without) being defined.
    UndefinedSignal {
        /// The signal name.
        name: String,
    },
    /// The file ends without `.model`/`.inputs`/`.outputs` structure.
    MissingStructure,
    /// Network construction failed.
    Network(String),
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBlifError::UnsupportedDirective { directive } => {
                write!(f, "unsupported blif directive {directive}")
            }
            ParseBlifError::TooManyInputs { output, inputs } => {
                write!(f, "names table for {output} has {inputs} inputs, only 2-LUTs are supported")
            }
            ParseBlifError::BadCube { line } => write!(f, "malformed cube line {line:?}"),
            ParseBlifError::UndefinedSignal { name } => write!(f, "undefined signal {name}"),
            ParseBlifError::MissingStructure => {
                write!(f, "missing .model/.inputs/.outputs structure")
            }
            ParseBlifError::Network(e) => write!(f, "network construction failed: {e}"),
        }
    }
}

impl Error for ParseBlifError {}

impl From<NetworkError> for ParseBlifError {
    fn from(e: NetworkError) -> Self {
        ParseBlifError::Network(e.to_string())
    }
}

impl Network {
    /// Renders the network as BLIF.
    ///
    /// Inputs are named `x1 … xn`, gates `n<i>`, outputs `f1 … fm`;
    /// complemented output edges become explicit inverter tables.
    pub fn to_blif(&self, model: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, ".model {model}");
        let inputs: Vec<String> = (0..self.num_inputs()).map(|i| format!("x{}", i + 1)).collect();
        let _ = writeln!(out, ".inputs {}", inputs.join(" "));
        let outputs: Vec<String> =
            (0..self.outputs().len()).map(|k| format!("f{}", k + 1)).collect();
        let _ = writeln!(out, ".outputs {}", outputs.join(" "));
        let name_of = |idx: usize| -> String {
            if idx == 0 {
                "const0".to_string()
            } else if idx <= self.num_inputs() {
                format!("x{idx}")
            } else {
                format!("n{idx}")
            }
        };
        // Constant-zero driver, only if some output or gate reads it.
        let const_used = self.outputs().iter().any(|s| s.index() == 0);
        if const_used {
            let _ = writeln!(out, ".names const0");
        }
        for (i, gate) in self.gates().iter().enumerate() {
            let idx = 1 + self.num_inputs() + i;
            let _ = writeln!(
                out,
                ".names {} {} {}",
                name_of(gate.fanin[0]),
                name_of(gate.fanin[1]),
                name_of(idx)
            );
            for (a, b) in [(0u8, 0u8), (1, 0), (0, 1), (1, 1)] {
                if (gate.tt2 >> (a + 2 * b)) & 1 == 1 {
                    let _ = writeln!(out, "{a}{b} 1");
                }
            }
        }
        for (k, sig) in self.outputs().iter().enumerate() {
            let src = name_of(sig.index());
            let dst = format!("f{}", k + 1);
            let _ = writeln!(out, ".names {src} {dst}");
            let _ = writeln!(out, "{} 1", if sig.is_negated() { 0 } else { 1 });
        }
        let _ = writeln!(out, ".end");
        out
    }

    /// Parses a BLIF model into a network.
    ///
    /// Supported: `.model`, `.inputs`, `.outputs`, `.names` tables with
    /// at most two inputs (single-output cover, `1` output plane), and
    /// `.end`. Tables must appear after the signals they read (the
    /// standard topological convention).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseBlifError`] describing the first problem found.
    pub fn from_blif(text: &str) -> Result<Network, ParseBlifError> {
        // Join continuation lines and strip comments.
        let mut lines: Vec<String> = Vec::new();
        let mut pending = String::new();
        for raw in text.lines() {
            let raw = raw.split('#').next().unwrap_or("");
            let mut piece = raw.trim_end().to_string();
            let continued = piece.ends_with('\\');
            if continued {
                piece.pop();
            }
            pending.push_str(&piece);
            if continued {
                pending.push(' ');
                continue;
            }
            let line = pending.trim().to_string();
            pending.clear();
            if !line.is_empty() {
                lines.push(line);
            }
        }
        let mut inputs: Vec<String> = Vec::new();
        let mut outputs: Vec<String> = Vec::new();
        // (inputs, output, cubes)
        type Table = (Vec<String>, String, Vec<(String, char)>);
        let mut tables: Vec<Table> = Vec::new();
        let mut i = 0usize;
        let mut saw_model = false;
        while i < lines.len() {
            let line = &lines[i];
            let mut parts = line.split_whitespace();
            let head = parts.next().unwrap_or("");
            match head {
                ".model" => saw_model = true,
                ".inputs" => inputs.extend(parts.map(str::to_string)),
                ".outputs" => outputs.extend(parts.map(str::to_string)),
                ".names" => {
                    let names: Vec<String> = parts.map(str::to_string).collect();
                    if names.is_empty() {
                        return Err(ParseBlifError::BadCube { line: line.clone() });
                    }
                    let output = names.last().expect("non-empty").clone();
                    let ins = names[..names.len() - 1].to_vec();
                    if ins.len() > 2 {
                        return Err(ParseBlifError::TooManyInputs { output, inputs: ins.len() });
                    }
                    let mut cubes = Vec::new();
                    while i + 1 < lines.len() && !lines[i + 1].starts_with('.') {
                        i += 1;
                        let cube_line = &lines[i];
                        let mut cp = cube_line.split_whitespace();
                        let (mask, val) = match (cp.next(), cp.next()) {
                            (Some(v), None) if ins.is_empty() => (String::new(), v),
                            (Some(m), Some(v)) => (m.to_string(), v),
                            _ => return Err(ParseBlifError::BadCube { line: cube_line.clone() }),
                        };
                        let value = val.chars().next().unwrap_or('1');
                        if mask.len() != ins.len() {
                            return Err(ParseBlifError::BadCube { line: cube_line.clone() });
                        }
                        cubes.push((mask, value));
                    }
                    tables.push((ins, output, cubes));
                }
                ".end" => break,
                other => {
                    return Err(ParseBlifError::UnsupportedDirective {
                        directive: other.to_string(),
                    })
                }
            }
            i += 1;
        }
        if !saw_model || outputs.is_empty() {
            return Err(ParseBlifError::MissingStructure);
        }
        let mut net = Network::new(inputs.len());
        let mut env: HashMap<String, Sig> = HashMap::new();
        for (k, name) in inputs.iter().enumerate() {
            env.insert(name.clone(), net.input(k));
        }
        for (ins, output, cubes) in &tables {
            let sig = match ins.len() {
                0 => {
                    // Constant: true iff some cube outputs 1.
                    if cubes.iter().any(|(_, v)| *v == '1') {
                        Sig::TRUE
                    } else {
                        Sig::FALSE
                    }
                }
                1 => {
                    let src = *env
                        .get(&ins[0])
                        .ok_or_else(|| ParseBlifError::UndefinedSignal { name: ins[0].clone() })?;
                    // Evaluate the single-input cover at 0 and 1.
                    let eval = |bit: char| -> bool {
                        cubes.iter().any(|(m, v)| {
                            *v == '1' && (m.as_bytes()[0] as char == bit || m.starts_with('-'))
                        })
                    };
                    match (eval('0'), eval('1')) {
                        (false, false) => Sig::FALSE,
                        (true, true) => Sig::TRUE,
                        (false, true) => src,
                        (true, false) => src.not(),
                    }
                }
                2 => {
                    let a = *env
                        .get(&ins[0])
                        .ok_or_else(|| ParseBlifError::UndefinedSignal { name: ins[0].clone() })?;
                    let b = *env
                        .get(&ins[1])
                        .ok_or_else(|| ParseBlifError::UndefinedSignal { name: ins[1].clone() })?;
                    // Build the 4-bit table from the cover.
                    let mut tt2 = 0u8;
                    for (av, bv) in [(0u8, 0u8), (1, 0), (0, 1), (1, 1)] {
                        let covered = cubes.iter().any(|(m, v)| {
                            *v == '1' && {
                                let mb = m.as_bytes();
                                (mb[0] == b'-' || mb[0] - b'0' == av)
                                    && (mb[1] == b'-' || mb[1] - b'0' == bv)
                            }
                        });
                        if covered {
                            tt2 |= 1 << (av + 2 * bv);
                        }
                    }
                    net.add_gate(a, b, tt2)?
                }
                _ => unreachable!("checked above"),
            };
            env.insert(output.clone(), sig);
        }
        for name in &outputs {
            let sig = *env
                .get(name)
                .ok_or_else(|| ParseBlifError::UndefinedSignal { name: name.clone() })?;
            net.add_output(sig);
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample() -> Network {
        let mut net = Network::new(3);
        let (a, b, c) = (net.input(0), net.input(1), net.input(2));
        let ab = net.and(a, b).unwrap();
        let f = net.xor(ab, c).unwrap();
        net.add_output(f);
        net.add_output(f.not());
        net
    }

    #[test]
    fn writer_emits_expected_structure() {
        let blif = sample().to_blif("test");
        assert!(blif.starts_with(".model test"));
        assert!(blif.contains(".inputs x1 x2 x3"));
        assert!(blif.contains(".outputs f1 f2"));
        assert!(blif.contains(".names"));
        assert!(blif.trim_end().ends_with(".end"));
    }

    #[test]
    fn round_trip_preserves_functions() {
        let net = sample();
        let parsed = Network::from_blif(&net.to_blif("t")).unwrap();
        assert_eq!(parsed.simulate_outputs().unwrap(), net.simulate_outputs().unwrap());
    }

    #[test]
    fn round_trip_random_networks() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let net = crate::circuits::random_network(4, 12, 3, &mut rng).unwrap();
            let parsed = Network::from_blif(&net.to_blif("r")).unwrap();
            assert_eq!(
                parsed.simulate_outputs().unwrap(),
                net.simulate_outputs().unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parses_hand_written_blif() {
        let text = "\
# a comment
.model adder
.inputs a b
.outputs s c
.names a b s
10 1
01 1
.names a b c
11 1
.end
";
        let net = Network::from_blif(text).unwrap();
        let outs = net.simulate_outputs().unwrap();
        assert_eq!(outs[0].to_hex(), "6"); // XOR
        assert_eq!(outs[1].to_hex(), "8"); // AND
    }

    #[test]
    fn parses_dont_care_cubes() {
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n1- 1\n-1 1\n.end\n";
        let net = Network::from_blif(text).unwrap();
        assert_eq!(net.simulate_outputs().unwrap()[0].to_hex(), "e"); // OR
    }

    #[test]
    fn parses_constants_and_buffers() {
        let text = "\
.model t
.inputs a
.outputs f g h
.names k1
1
.names a buf
1 1
.names buf inv
0 1
.names k1 inv f
11 1
.names buf g
1 1
.names k1 h
1 1
.end
";
        let net = Network::from_blif(text).unwrap();
        let outs = net.simulate_outputs().unwrap();
        assert_eq!(outs[0].to_hex(), "1"); // f = 1 & !a = !a
        assert_eq!(outs[1].to_hex(), "2"); // g = a
        assert_eq!(outs[2].to_hex(), "3"); // h = const 1
    }

    #[test]
    fn rejects_unsupported_content() {
        assert!(matches!(
            Network::from_blif(".model t\n.inputs a\n.outputs f\n.latch a f\n.end\n"),
            Err(ParseBlifError::UnsupportedDirective { .. })
        ));
        assert!(matches!(
            Network::from_blif(
                ".model t\n.inputs a b c\n.outputs f\n.names a b c f\n111 1\n.end\n"
            ),
            Err(ParseBlifError::TooManyInputs { .. })
        ));
        assert!(matches!(
            Network::from_blif(".model t\n.inputs a\n.outputs f\n.names z f\n1 1\n.end\n"),
            Err(ParseBlifError::UndefinedSignal { .. })
        ));
        assert!(matches!(
            Network::from_blif("just text\n"),
            Err(ParseBlifError::UnsupportedDirective { .. })
        ));
    }

    #[test]
    fn continuation_lines_joined() {
        let text = ".model t\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let net = Network::from_blif(text).unwrap();
        assert_eq!(net.num_inputs(), 2);
        assert_eq!(net.simulate_outputs().unwrap()[0].to_hex(), "8");
    }
}
