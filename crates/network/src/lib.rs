//! Multi-output 2-LUT logic networks with cut enumeration and
//! exact-synthesis rewriting.
//!
//! The paper motivates fast exact synthesis through DAG-aware rewriting
//! (its ref.\[2\]): real optimizers call exact synthesis on millions of
//! small cut functions, so per-call speed — especially on the
//! DSD-structured functions dominating real cut distributions — is what
//! matters. This crate provides that downstream application:
//!
//! * [`Network`] — multi-output networks of arbitrary 2-input LUTs with
//!   complemented edges, structural hashing, and simplification;
//! * [`enumerate_cuts`] / [`cut_function`] — k-feasible cut
//!   enumeration;
//! * [`rewrite`] — DAG-aware rewriting that replaces cut cones with
//!   STP-exact-synthesis optima, cached per NPN class
//!   ([`SynthesisCache`]);
//! * [`ripple_carry_adder`] and friends — parametric benchmark
//!   circuits.
//!
//! # Quick start
//!
//! ```
//! use stp_network::{rewrite, Network, RewriteConfig, SynthesisCache};
//!
//! // A wasteful XOR: (a & !b) | (!a & b) spends three gates.
//! let mut net = Network::new(2);
//! let (a, b) = (net.input(0), net.input(1));
//! let t1 = net.and(a, b.not())?;
//! let t2 = net.and(a.not(), b)?;
//! let f = net.or(t1, t2)?;
//! net.add_output(f);
//!
//! let cache = SynthesisCache::new();
//! let result = rewrite(&net, &RewriteConfig::default(), &cache)?;
//! assert_eq!(result.gates_after, 1); // XOR is one 2-LUT
//! # Ok::<(), stp_network::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod blif;
mod circuits;
mod cuts;
mod equiv;
mod error;
mod network;
mod rewrite;

pub use blif::ParseBlifError;
pub use circuits::{
    equality_comparator, mux_tree, random_network, ripple_carry_adder, ripple_carry_adder_sop,
};
pub use cuts::{cut_function, enumerate_cuts, Cut, CutSet};
pub use equiv::{equivalent_exhaustive, equivalent_sat, EquivResult};
pub use error::NetworkError;
pub use network::{NetNode, Network, Sig};
pub use rewrite::{
    exact_network, rewrite, Replacement, RewriteConfig, RewriteResult, SynthesisCache,
};
