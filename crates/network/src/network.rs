//! Multi-output logic networks of 2-input LUT nodes.
//!
//! The network model matches the chains the STP engine synthesizes —
//! every node is an arbitrary 2-input LUT — extended with what a
//! rewriting substrate needs: complemented edges, structural hashing,
//! and on-the-fly simplification. Signal 0 is the constant false
//! (Knuth's `x_0 = 0`), signals `1..=n` are the primary inputs, and
//! gates follow in topological order.
//!
//! Complements live on edges ([`Sig`]) and are absorbed into LUT
//! functions at gate creation, so structurally-hashed nodes also share
//! complementary functions (each stored node is *normal*: its LUT
//! outputs 0 on the all-false fanin pair).

use std::collections::HashMap;
use std::fmt;

use stp_chain::{Chain, OutputRef};
use stp_tt::TruthTable;

use crate::error::NetworkError;

/// A signal edge: a node index with a complement flag, packed like a
/// SAT literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sig(u32);

impl Sig {
    /// The constant-false signal.
    pub const FALSE: Sig = Sig(0);
    /// The constant-true signal.
    pub const TRUE: Sig = Sig(1);

    /// Builds a signal from a node index and complement flag.
    pub fn new(index: usize, negated: bool) -> Sig {
        Sig(((index as u32) << 1) | (negated as u32))
    }

    /// The underlying node index.
    pub fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge is complemented.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented edge.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Sig {
        Sig(self.0 ^ 1)
    }
}

impl fmt::Display for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!s{}", self.index())
        } else {
            write!(f, "s{}", self.index())
        }
    }
}

/// A 2-input LUT node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetNode {
    /// Fanin node indices (always positive edges; complements are
    /// absorbed into `tt2`).
    pub fanin: [usize; 2],
    /// The node's LUT (bit `a + 2b`), kept *normal* (`bit 0 == 0`).
    pub tt2: u8,
}

/// A multi-output network of 2-input LUTs.
#[derive(Debug, Clone)]
pub struct Network {
    num_inputs: usize,
    /// Gate nodes; node index `i` in signals is `1 + num_inputs + i`.
    gates: Vec<NetNode>,
    outputs: Vec<Sig>,
    strash: HashMap<(usize, usize, u8), usize>,
}

/// Flips one operand of a 2-input truth table.
fn flip_operand(tt2: u8, slot: usize) -> u8 {
    let mut out = 0u8;
    for a in 0..2u8 {
        for b in 0..2u8 {
            let (sa, sb) = if slot == 0 { (1 - a, b) } else { (a, 1 - b) };
            if (tt2 >> (sa + 2 * sb)) & 1 == 1 {
                out |= 1 << (a + 2 * b);
            }
        }
    }
    out
}

/// Swaps the operands of a 2-input truth table.
fn swap_operands(tt2: u8) -> u8 {
    let mut out = tt2 & 0b1001; // (0,0) and (1,1) fixed
    if tt2 & 0b0010 != 0 {
        out |= 0b0100;
    }
    if tt2 & 0b0100 != 0 {
        out |= 0b0010;
    }
    out
}

impl Network {
    /// Creates a network with `num_inputs` primary inputs.
    pub fn new(num_inputs: usize) -> Self {
        Network { num_inputs, gates: Vec::new(), outputs: Vec::new(), strash: HashMap::new() }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The positive edge of primary input `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics when `i >= num_inputs`.
    pub fn input(&self, i: usize) -> Sig {
        assert!(i < self.num_inputs, "input {i} out of range");
        Sig::new(1 + i, false)
    }

    /// Total number of node slots (constant + inputs + gates).
    pub fn num_signals(&self) -> usize {
        1 + self.num_inputs + self.gates.len()
    }

    /// The gate nodes (their signal index is `1 + num_inputs + i`).
    pub fn gates(&self) -> &[NetNode] {
        &self.gates
    }

    /// The output edges.
    pub fn outputs(&self) -> &[Sig] {
        &self.outputs
    }

    /// Registers an output.
    pub fn add_output(&mut self, sig: Sig) {
        self.outputs.push(sig);
    }

    /// `true` when `index` names a gate node (not the constant or an
    /// input).
    pub fn is_gate(&self, index: usize) -> bool {
        index > self.num_inputs && index < self.num_signals()
    }

    /// The gate stored at signal `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is not a gate.
    pub fn gate(&self, index: usize) -> NetNode {
        assert!(self.is_gate(index), "signal {index} is not a gate");
        self.gates[index - 1 - self.num_inputs]
    }

    /// Adds (or reuses) a gate computing `tt2` over two signal edges,
    /// simplifying constants, projections, and repeated fanins, and
    /// structurally hashing the normalized node.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::SignalOutOfRange`] when an edge
    /// references a signal that does not exist.
    pub fn add_gate(&mut self, a: Sig, b: Sig, tt2: u8) -> Result<Sig, NetworkError> {
        for s in [a, b] {
            if s.index() >= self.num_signals() {
                return Err(NetworkError::SignalOutOfRange {
                    signal: s.index(),
                    available: self.num_signals(),
                });
            }
        }
        let mut tt2 = tt2 & 0xf;
        // Absorb edge complements into the LUT.
        if a.is_negated() {
            tt2 = flip_operand(tt2, 0);
        }
        if b.is_negated() {
            tt2 = flip_operand(tt2, 1);
        }
        let (mut ia, mut ib) = (a.index(), b.index());
        // Constant fanins restrict the LUT.
        if ia == 0 {
            // First operand is constant false: σ(0, b).
            let bit0 = tt2 & 1 != 0;
            let bit2 = tt2 & 0b0100 != 0;
            return self.unary(ib, bit0, bit2);
        }
        if ib == 0 {
            let bit0 = tt2 & 1 != 0;
            let bit1 = tt2 & 0b0010 != 0;
            return self.unary(ia, bit0, bit1);
        }
        if ia == ib {
            // σ(a, a): diagonal.
            let low = tt2 & 1 != 0;
            let high = tt2 & 0b1000 != 0;
            return self.unary(ia, low, high);
        }
        // Canonical operand order.
        if ia > ib {
            std::mem::swap(&mut ia, &mut ib);
            tt2 = swap_operands(tt2);
        }
        // LUT-level simplification.
        match tt2 {
            0x0 => return Ok(Sig::FALSE),
            0xf => return Ok(Sig::TRUE),
            0xa => return Ok(Sig::new(ia, false)),
            0x5 => return Ok(Sig::new(ia, true)),
            0xc => return Ok(Sig::new(ib, false)),
            0x3 => return Ok(Sig::new(ib, true)),
            _ => {}
        }
        // Normalize output phase so strashing shares complements.
        let negated = tt2 & 1 != 0;
        if negated {
            tt2 ^= 0xf;
        }
        let key = (ia, ib, tt2);
        let index = match self.strash.get(&key) {
            Some(&node) => node,
            None => {
                let index = self.num_signals();
                self.gates.push(NetNode { fanin: [ia, ib], tt2 });
                self.strash.insert(key, index);
                index
            }
        };
        Ok(Sig::new(index, negated))
    }

    /// Emits the unary function `f(x)` with `f(0) = low`, `f(1) = high`.
    fn unary(&mut self, index: usize, low: bool, high: bool) -> Result<Sig, NetworkError> {
        Ok(match (low, high) {
            (false, false) => Sig::FALSE,
            (true, true) => Sig::TRUE,
            (false, true) => Sig::new(index, false),
            (true, false) => Sig::new(index, true),
        })
    }

    /// Convenience: AND of two edges.
    pub fn and(&mut self, a: Sig, b: Sig) -> Result<Sig, NetworkError> {
        self.add_gate(a, b, 0x8)
    }

    /// Convenience: OR of two edges.
    pub fn or(&mut self, a: Sig, b: Sig) -> Result<Sig, NetworkError> {
        self.add_gate(a, b, 0xe)
    }

    /// Convenience: XOR of two edges.
    pub fn xor(&mut self, a: Sig, b: Sig) -> Result<Sig, NetworkError> {
        self.add_gate(a, b, 0x6)
    }

    /// Convenience: 2:1 multiplexer `sel ? t : e`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] from gate creation.
    pub fn mux(&mut self, sel: Sig, t: Sig, e: Sig) -> Result<Sig, NetworkError> {
        let a = self.and(sel, t)?;
        let b = self.and(sel.not(), e)?;
        self.or(a, b)
    }

    /// Splices a [`Chain`] into the network, mapping chain input `i` to
    /// `inputs[i]`; returns one edge per chain output, in declaration
    /// order. Shared internal nodes of a multi-output chain splice once
    /// (and structural hashing merges them with pre-existing logic).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::SignalOutOfRange`] on bad input edges or
    /// [`NetworkError::Chain`] if the chain is malformed.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len()` differs from the chain's input count.
    pub fn add_chain_outputs(
        &mut self,
        chain: &Chain,
        inputs: &[Sig],
    ) -> Result<Vec<Sig>, NetworkError> {
        assert_eq!(inputs.len(), chain.num_inputs(), "one edge per chain input");
        chain.validate()?;
        let mut map: Vec<Sig> = inputs.to_vec();
        for gate in chain.gates() {
            let a = map[gate.fanin[0]];
            let b = map[gate.fanin[1]];
            let sig = self.add_gate(a, b, gate.tt2)?;
            map.push(sig);
        }
        Ok(chain
            .outputs()
            .iter()
            .map(|out| match out {
                OutputRef::Signal { index, negated } => {
                    let s = map[*index];
                    if *negated {
                        s.not()
                    } else {
                        s
                    }
                }
                OutputRef::Constant(v) => {
                    if *v {
                        Sig::TRUE
                    } else {
                        Sig::FALSE
                    }
                }
            })
            .collect())
    }

    /// Splices a [`Chain`] and returns the edge of its first output
    /// (the single-output convenience over [`Network::add_chain_outputs`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::add_chain_outputs`].
    ///
    /// # Panics
    ///
    /// Additionally panics when the chain has no outputs.
    pub fn add_chain(&mut self, chain: &Chain, inputs: &[Sig]) -> Result<Sig, NetworkError> {
        let outputs = self.add_chain_outputs(chain, inputs)?;
        Ok(*outputs.first().expect("chain has an output"))
    }

    /// Number of gate nodes reachable from the outputs (dead nodes are
    /// not counted).
    pub fn live_gate_count(&self) -> usize {
        let mut live = vec![false; self.num_signals()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|s| s.index()).collect();
        let mut count = 0usize;
        while let Some(idx) = stack.pop() {
            if live[idx] || !self.is_gate(idx) {
                if !self.is_gate(idx) {
                    live[idx] = true;
                }
                continue;
            }
            live[idx] = true;
            count += 1;
            for f in self.gate(idx).fanin {
                if !live[f] {
                    stack.push(f);
                }
            }
        }
        count
    }

    /// Fanout reference counts per signal index (outputs count as one
    /// reference each).
    pub fn reference_counts(&self) -> Vec<usize> {
        let mut refs = vec![0usize; self.num_signals()];
        for gate in &self.gates {
            for f in gate.fanin {
                refs[f] += 1;
            }
        }
        for out in &self.outputs {
            refs[out.index()] += 1;
        }
        refs
    }

    /// Per-signal logic levels (constant and inputs are level 0).
    pub fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.num_signals()];
        for (i, gate) in self.gates.iter().enumerate() {
            let idx = 1 + self.num_inputs + i;
            levels[idx] = 1 + gate.fanin.iter().map(|&f| levels[f]).max().unwrap_or(0);
        }
        levels
    }

    /// Network depth: maximum output level.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs.iter().map(|s| levels[s.index()]).max().unwrap_or(0)
    }

    /// Simulates every signal exhaustively (inputs ≤
    /// [`stp_tt::MAX_VARS`]), returning one table per signal index.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooManyInputsForSimulation`] when the
    /// input count exceeds the truth-table substrate.
    pub fn simulate(&self) -> Result<Vec<TruthTable>, NetworkError> {
        if self.num_inputs > stp_tt::MAX_VARS {
            return Err(NetworkError::TooManyInputsForSimulation { inputs: self.num_inputs });
        }
        let mut signals = Vec::with_capacity(self.num_signals());
        signals.push(TruthTable::constant(self.num_inputs, false)?);
        for i in 0..self.num_inputs {
            signals.push(TruthTable::variable(self.num_inputs, i)?);
        }
        for gate in &self.gates {
            let a = &signals[gate.fanin[0]];
            let b = &signals[gate.fanin[1]];
            signals.push(a.binary_op(gate.tt2, b)?);
        }
        Ok(signals)
    }

    /// Simulates the output functions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::simulate`].
    pub fn simulate_outputs(&self) -> Result<Vec<TruthTable>, NetworkError> {
        let signals = self.simulate()?;
        Ok(self
            .outputs
            .iter()
            .map(|s| {
                let tt = signals[s.index()].clone();
                if s.is_negated() {
                    !tt
                } else {
                    tt
                }
            })
            .collect())
    }

    /// Simulates the network on explicit input patterns: one 64-bit
    /// word per input, bit `k` of each word forming pattern `k`.
    /// Returns one word per output. Works for any input count — the
    /// random-simulation workhorse for networks too wide for
    /// [`Network::simulate`].
    ///
    /// # Panics
    ///
    /// Panics when `patterns.len()` differs from the input count.
    pub fn simulate_patterns(&self, patterns: &[u64]) -> Vec<u64> {
        assert_eq!(patterns.len(), self.num_inputs, "one word per input");
        let mut values = Vec::with_capacity(self.num_signals());
        values.push(0u64);
        values.extend_from_slice(patterns);
        for gate in &self.gates {
            let a = values[gate.fanin[0]];
            let b = values[gate.fanin[1]];
            let mut w = 0u64;
            if gate.tt2 & 0b0001 != 0 {
                w |= !a & !b;
            }
            if gate.tt2 & 0b0010 != 0 {
                w |= a & !b;
            }
            if gate.tt2 & 0b0100 != 0 {
                w |= !a & b;
            }
            if gate.tt2 & 0b1000 != 0 {
                w |= a & b;
            }
            values.push(w);
        }
        self.outputs
            .iter()
            .map(|s| {
                let v = values[s.index()];
                if s.is_negated() {
                    !v
                } else {
                    v
                }
            })
            .collect()
    }

    /// Renders the network as a Graphviz DOT digraph.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{\n  rankdir=BT;");
        let _ = writeln!(out, "  s0 [shape=box, label=\"0\"];");
        for i in 0..self.num_inputs {
            let _ = writeln!(out, "  s{} [shape=box, label=\"x{}\"];", i + 1, i + 1);
        }
        for (i, gate) in self.gates.iter().enumerate() {
            let idx = 1 + self.num_inputs + i;
            let _ = writeln!(out, "  s{idx} [label=\"0x{:x}\"];", gate.tt2);
            for f in gate.fanin {
                let _ = writeln!(out, "  s{f} -> s{idx};");
            }
        }
        for (k, sig) in self.outputs.iter().enumerate() {
            let style = if sig.is_negated() { " [style=dashed]" } else { "" };
            let _ = writeln!(out, "  o{k} [shape=doublecircle, label=\"f{}\"];", k + 1);
            let _ = writeln!(out, "  s{} -> o{k}{style};", sig.index());
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_inputs() {
        let mut net = Network::new(2);
        assert_eq!(net.num_signals(), 3);
        let tts = net.simulate().unwrap();
        assert_eq!(tts[0], TruthTable::constant(2, false).unwrap());
        assert_eq!(tts[1], TruthTable::variable(2, 0).unwrap());
        net.add_output(Sig::TRUE);
        assert_eq!(net.simulate_outputs().unwrap()[0], TruthTable::constant(2, true).unwrap());
    }

    #[test]
    fn gate_simplifications() {
        let mut net = Network::new(2);
        let (a, b) = (net.input(0), net.input(1));
        // Projections collapse to wires.
        assert_eq!(net.add_gate(a, b, 0xa).unwrap(), a);
        assert_eq!(net.add_gate(a, b, 0x5).unwrap(), a.not());
        assert_eq!(net.add_gate(a, b, 0xc).unwrap(), b);
        // Constants collapse.
        assert_eq!(net.add_gate(a, b, 0x0).unwrap(), Sig::FALSE);
        assert_eq!(net.add_gate(a, b, 0xf).unwrap(), Sig::TRUE);
        // Diagonal: σ(a, a) = XOR(a, a) = 0.
        assert_eq!(net.add_gate(a, a, 0x6).unwrap(), Sig::FALSE);
        assert_eq!(net.add_gate(a, a, 0x8).unwrap(), a);
        // Constant fanin: AND(0, b) = 0, OR(0, b) = b.
        assert_eq!(net.add_gate(Sig::FALSE, b, 0x8).unwrap(), Sig::FALSE);
        assert_eq!(net.add_gate(Sig::FALSE, b, 0xe).unwrap(), b);
        // No gates were created by any of this.
        assert_eq!(net.gates().len(), 0);
    }

    #[test]
    fn strashing_shares_structure_and_complements() {
        let mut net = Network::new(2);
        let (a, b) = (net.input(0), net.input(1));
        let g1 = net.and(a, b).unwrap();
        let g2 = net.and(a, b).unwrap();
        assert_eq!(g1, g2);
        // NAND shares the node with complement on the edge.
        let g3 = net.add_gate(a, b, 0x7).unwrap();
        assert_eq!(g3, g1.not());
        // Operand order does not matter.
        let g4 = net.and(b, a).unwrap();
        assert_eq!(g4, g1);
        assert_eq!(net.gates().len(), 1);
    }

    #[test]
    fn complemented_edges_absorbed() {
        let mut net = Network::new(2);
        let (a, b) = (net.input(0), net.input(1));
        // AND(!a, b) == 0x4 applied to (a, b).
        let g1 = net.and(a.not(), b).unwrap();
        let g2 = net.add_gate(a, b, 0x4).unwrap();
        assert_eq!(g1, g2);
        net.add_output(g1);
        let tt = net.simulate_outputs().unwrap()[0].clone();
        assert_eq!(tt, TruthTable::from_fn(2, |x| !x[0] & x[1]).unwrap());
    }

    #[test]
    fn mux_semantics() {
        let mut net = Network::new(3);
        let (s, t, e) = (net.input(0), net.input(1), net.input(2));
        let m = net.mux(s, t, e).unwrap();
        net.add_output(m);
        let tt = net.simulate_outputs().unwrap()[0].clone();
        assert_eq!(tt, TruthTable::from_fn(3, |x| if x[0] { x[1] } else { x[2] }).unwrap());
    }

    #[test]
    fn add_chain_splices_example7() {
        let mut chain = Chain::new(4);
        let x5 = chain.add_gate(2, 3, 0x6).unwrap();
        let x6 = chain.add_gate(0, 1, 0x8).unwrap();
        let x7 = chain.add_gate(x5, x6, 0xe).unwrap();
        chain.add_output(OutputRef::signal(x7));
        let mut net = Network::new(4);
        let inputs: Vec<Sig> = (0..4).map(|i| net.input(i)).collect();
        let out = net.add_chain(&chain, &inputs).unwrap();
        net.add_output(out);
        assert_eq!(net.simulate_outputs().unwrap()[0], TruthTable::from_hex(4, "8ff8").unwrap());
        assert_eq!(net.live_gate_count(), 3);
    }

    #[test]
    fn add_chain_outputs_splices_shared_nodes_once() {
        // Full-adder chain: sum and carry share the a⊕b node.
        let mut chain = Chain::new(3);
        let x1 = chain.add_gate(0, 1, 0x6).unwrap();
        let s = chain.add_gate(x1, 2, 0x6).unwrap();
        let t = chain.add_gate(x1, 2, 0x8).unwrap();
        let u = chain.add_gate(0, 1, 0x8).unwrap();
        let m = chain.add_gate(t, u, 0xe).unwrap();
        chain.add_output(OutputRef::signal(s));
        chain.add_output(OutputRef::negated_signal(m));
        let mut net = Network::new(3);
        let inputs: Vec<Sig> = (0..3).map(|i| net.input(i)).collect();
        let outs = net.add_chain_outputs(&chain, &inputs).unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            net.add_output(*o);
        }
        let tts = net.simulate_outputs().unwrap();
        assert_eq!(tts[0], TruthTable::from_fn(3, |x| x[0] ^ x[1] ^ x[2]).unwrap());
        assert_eq!(
            tts[1],
            !TruthTable::from_fn(3, |x| (x[0] as u8 + x[1] as u8 + x[2] as u8) >= 2).unwrap()
        );
        assert_eq!(net.live_gate_count(), 5, "the shared a⊕b node splices once");
        // add_chain returns the first of the same outputs.
        let first = net.add_chain(&chain, &inputs).unwrap();
        assert_eq!(first, outs[0]);
    }

    #[test]
    fn live_gate_count_ignores_dead_logic() {
        let mut net = Network::new(2);
        let (a, b) = (net.input(0), net.input(1));
        let live = net.and(a, b).unwrap();
        let _dead = net.xor(a, b).unwrap();
        net.add_output(live);
        assert_eq!(net.gates().len(), 2);
        assert_eq!(net.live_gate_count(), 1);
    }

    #[test]
    fn levels_and_depth() {
        let mut net = Network::new(3);
        let (a, b, c) = (net.input(0), net.input(1), net.input(2));
        let g1 = net.and(a, b).unwrap();
        let g2 = net.or(g1, c).unwrap();
        net.add_output(g2);
        assert_eq!(net.depth(), 2);
    }

    #[test]
    fn out_of_range_signal_rejected() {
        let mut net = Network::new(1);
        let bogus = Sig::new(99, false);
        assert!(matches!(
            net.add_gate(bogus, net.input(0), 0x8),
            Err(NetworkError::SignalOutOfRange { .. })
        ));
    }

    #[test]
    fn dot_output_mentions_everything() {
        let mut net = Network::new(2);
        let g = net.and(net.input(0), net.input(1)).unwrap();
        net.add_output(g.not());
        let dot = net.to_dot("t");
        assert!(dot.contains("digraph t"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn pattern_simulation_matches_exhaustive() {
        let mut net = Network::new(3);
        let (a, b, c) = (net.input(0), net.input(1), net.input(2));
        let g1 = net.xor(a, b).unwrap();
        let g2 = net.and(g1, c.not()).unwrap();
        net.add_output(g2);
        net.add_output(g2.not());
        let tts = net.simulate_outputs().unwrap();
        // Pack the 8 minterms into pattern words.
        let mut patterns = [0u64; 3];
        for m in 0..8usize {
            for (i, p) in patterns.iter_mut().enumerate() {
                if (m >> i) & 1 == 1 {
                    *p |= 1 << m;
                }
            }
        }
        let words = net.simulate_patterns(&patterns);
        for (out, tt) in words.iter().zip(&tts) {
            for m in 0..8usize {
                assert_eq!((out >> m) & 1 == 1, tt.bit(m), "minterm {m}");
            }
        }
    }

    #[test]
    fn swap_and_flip_helpers() {
        assert_eq!(swap_operands(0x2), 0x4);
        assert_eq!(swap_operands(0x6), 0x6);
        assert_eq!(flip_operand(0x8, 0), 0x4);
        assert_eq!(flip_operand(0x8, 1), 0x2);
    }
}
