//! DAG-aware rewriting with exact synthesis.
//!
//! The paper's introduction motivates fast exact synthesis through this
//! application (its ref. [2], DATE'19): enumerate small cuts, ask exact
//! synthesis for the optimum implementation of each cut function, and
//! replace the cut's cone when that saves gates. The expensive step is
//! the synthesis call, which is why it is cached per NPN class — and
//! why an engine that is fast on the DSD-shaped functions dominating
//! real cut distributions (the paper's headline) matters.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stp_chain::Chain;
use stp_store::{NpnOutcome, RepOutcome, Store};
use stp_synth::{
    synthesize, synthesize_multi, GateCountObjective, MultiSpec, SynthesisConfig, SynthesisError,
};
use stp_tt::TruthTable;

use crate::cuts::{cut_function, enumerate_cuts, Cut};
use crate::error::NetworkError;
use crate::network::{Network, Sig};

/// Configuration for [`rewrite`].
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// Cut size (leaves per cut); 4 matches the paper's NPN4 world.
    pub cut_size: usize,
    /// Cuts kept per node during enumeration.
    pub cut_limit: usize,
    /// Per-synthesis-call time budget.
    pub synthesis_budget: Duration,
    /// Maximum rewriting passes.
    pub max_passes: usize,
    /// Worker threads per exact-synthesis call (`0` = one per CPU,
    /// `1` = sequential; see [`stp_synth::SynthesisConfig::jobs`]).
    /// Defaults to the `STP_JOBS` environment variable (or `1`).
    pub jobs: usize,
    /// Rewrite whole multi-root cut cones in one shared synthesis call:
    /// roots sharing an identical leaf set are synthesized jointly
    /// (`stp_synth::synthesize_multi` through the store's multi-output
    /// keyspace) and spliced as one chain with shared internal nodes. A
    /// joint replacement is taken only when it saves strictly more
    /// gates than the best per-root replacements combined.
    pub multi_output: bool,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            cut_size: 4,
            cut_limit: 8,
            synthesis_budget: Duration::from_secs(2),
            max_passes: 4,
            jobs: stp_synth::jobs_from_env(),
            multi_output: true,
        }
    }
}

/// Cap on the roots jointly rewritten per shared cut cone: the shared
/// merge enumerates cross products of per-output optima, so the cost of
/// a joint call grows quickly with the output count.
const MAX_GROUP_OUTPUTS: usize = 3;

/// A cache of optimum chains per NPN class representative, shared
/// across rewriting calls (and typically across networks and threads).
///
/// Since the store refactor this is a thin, clonable handle over an
/// [`stp_store::Store`]: the canonicalize → lookup-or-synthesize →
/// map-back pipeline lives in [`Store::solve_npn`], shared with
/// `stp_synth::synthesize_npn`. Wrap a warmed, disk-loaded store with
/// [`SynthesisCache::with_store`] and rewriting answers every NPN4 cut
/// without a single synthesis call.
#[derive(Debug, Clone, Default)]
pub struct SynthesisCache {
    store: Arc<Store>,
}

impl SynthesisCache {
    /// Creates a cache over a fresh private store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing (possibly disk-loaded, possibly shared)
    /// solution store.
    pub fn with_store(store: Arc<Store>) -> Self {
        SynthesisCache { store }
    }

    /// The underlying solution store, e.g. for persisting after a run.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Cache hits so far (lookups answered from a stored entry).
    pub fn hits(&self) -> u64 {
        self.store.hits()
    }

    /// Cache misses (synthesis calls) so far.
    pub fn misses(&self) -> u64 {
        self.store.misses()
    }

    /// Returns an optimum chain for `spec` (through its NPN
    /// representative), synthesizing and caching on first sight.
    /// Constants and (complemented) projections are answered by the
    /// store's trivial fast path without paying NPN canonicalization.
    ///
    /// A synthesis failure (timeout or gate limit) under `budget` is
    /// recorded as exhausted at that budget and returns `Ok(None)`; a
    /// later call offering a strictly larger budget retries.
    ///
    /// # Errors
    ///
    /// Propagates chain-mapping and non-budget synthesis failures.
    pub fn optimum_chain(
        &self,
        spec: &TruthTable,
        budget: Duration,
        jobs: usize,
    ) -> Result<Option<Chain>, NetworkError> {
        let mut synthesized = false;
        let outcome = self.store.solve_npn(spec, budget, |rep| {
            synthesized = true;
            stp_telemetry::counter!("network.synth_cache_misses").inc();
            let config = SynthesisConfig {
                deadline: Some(Instant::now() + budget),
                max_solutions: 1,
                jobs,
                ..SynthesisConfig::default()
            };
            match synthesize(rep, &config) {
                Ok(r) => Ok(RepOutcome::Solved(r.chains)),
                Err(SynthesisError::Timeout | SynthesisError::GateLimitExceeded { .. }) => {
                    Ok(RepOutcome::Exhausted)
                }
                Err(e) => Err(NetworkError::from(e)),
            }
        })?;
        if !synthesized {
            stp_telemetry::counter!("network.synth_cache_hits").inc();
        }
        match outcome {
            NpnOutcome::Trivial(chain) => Ok(Some(chain)),
            NpnOutcome::Solved(mut chains) => Ok(Some(chains.swap_remove(0))),
            NpnOutcome::Exhausted { .. } | NpnOutcome::WaitTimeout => Ok(None),
            NpnOutcome::Poisoned { message } => {
                Err(NetworkError::from(SynthesisError::JobPanicked { message }))
            }
        }
    }

    /// Returns one shared chain realizing every spec (through the
    /// multi-output NPN class tuple), synthesizing and caching on first
    /// sight — the multi-output analogue of
    /// [`SynthesisCache::optimum_chain`]. The chain's outputs follow
    /// `specs` order and its internal gates are shared across outputs.
    ///
    /// A synthesis failure (timeout or gate limit) under `budget` is
    /// recorded as exhausted at that budget and returns `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Propagates chain-mapping and non-budget synthesis failures.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty.
    pub fn optimum_shared_chain(
        &self,
        specs: &[TruthTable],
        budget: Duration,
        jobs: usize,
    ) -> Result<Option<Chain>, NetworkError> {
        let mut synthesized = false;
        let outcome = self.store.solve_npn_multi(specs, budget, |reps| {
            synthesized = true;
            stp_telemetry::counter!("network.synth_cache_misses").inc();
            let config = SynthesisConfig {
                deadline: Some(Instant::now() + budget),
                jobs,
                ..SynthesisConfig::default()
            };
            let multi = MultiSpec::new(reps.to_vec()).map_err(NetworkError::from)?;
            match synthesize_multi(&multi, &GateCountObjective, &config) {
                Ok(r) => Ok(RepOutcome::Solved(vec![r.chain])),
                Err(SynthesisError::Timeout | SynthesisError::GateLimitExceeded { .. }) => {
                    Ok(RepOutcome::Exhausted)
                }
                Err(e) => Err(NetworkError::from(e)),
            }
        })?;
        if !synthesized {
            stp_telemetry::counter!("network.synth_cache_hits").inc();
        }
        match outcome {
            NpnOutcome::Trivial(chain) => Ok(Some(chain)),
            NpnOutcome::Solved(mut chains) => Ok(Some(chains.swap_remove(0))),
            NpnOutcome::Exhausted { .. } | NpnOutcome::WaitTimeout => Ok(None),
            NpnOutcome::Poisoned { message } => {
                Err(NetworkError::from(SynthesisError::JobPanicked { message }))
            }
        }
    }
}

/// Builds a multi-output network realizing every specification with
/// exact-synthesis optima, sharing structure through strashing and the
/// NPN cache (§II-B of the paper defines multi-output chains; the STP
/// engine synthesizes single outputs, so a collection is assembled by
/// splicing per-output optima into one structurally-hashed network).
///
/// Specifications exceeding the per-call budget fall back to a Shannon
/// decomposition on their highest support variable.
///
/// `jobs` configures the worker threads of each synthesis call (`0` =
/// one per CPU, `1` = sequential), exactly like
/// [`RewriteConfig::jobs`]; pass [`stp_synth::jobs_from_env()`] to keep
/// the old environment-driven behavior.
///
/// # Errors
///
/// Propagates construction and synthesis failures.
///
/// # Panics
///
/// Panics when `specs` is empty or the arities disagree.
pub fn exact_network(
    specs: &[TruthTable],
    cache: &SynthesisCache,
    budget: Duration,
    jobs: usize,
) -> Result<Network, NetworkError> {
    assert!(!specs.is_empty(), "need at least one output");
    let n = specs[0].num_vars();
    assert!(specs.iter().all(|s| s.num_vars() == n), "all outputs share one input space");
    let mut net = Network::new(n);
    let inputs: Vec<Sig> = (0..n).map(|i| net.input(i)).collect();
    for spec in specs {
        let sig = build_function(&mut net, &inputs, spec, cache, budget, jobs)?;
        net.add_output(sig);
    }
    Ok(net)
}

fn build_function(
    net: &mut Network,
    inputs: &[Sig],
    spec: &TruthTable,
    cache: &SynthesisCache,
    budget: Duration,
    jobs: usize,
) -> Result<Sig, NetworkError> {
    // Trivial cases first.
    let ones = spec.count_ones();
    if ones == 0 {
        return Ok(Sig::FALSE);
    }
    if ones == spec.num_bits() {
        return Ok(Sig::TRUE);
    }
    let support = spec.support();
    if support.len() == 1 {
        let v = support[0];
        let proj = TruthTable::variable(spec.num_vars(), v)?;
        return Ok(if *spec == proj { inputs[v] } else { inputs[v].not() });
    }
    if let Some(chain) = cache.optimum_chain(spec, budget, jobs)? {
        return net.add_chain(&chain, inputs);
    }
    // Budget exceeded: Shannon-decompose on the last support variable
    // and recurse (each cofactor has strictly smaller support).
    let v = *support.last().expect("non-trivial support");
    let hi = build_function(net, inputs, &spec.cofactor(v, true), cache, budget, jobs)?;
    let lo = build_function(net, inputs, &spec.cofactor(v, false), cache, budget, jobs)?;
    net.mux(inputs[v], hi, lo)
}

/// One applied replacement, for reporting.
#[derive(Debug, Clone)]
pub struct Replacement {
    /// The primary replaced root signal (in the *old* network's
    /// numbering); for a multi-output replacement, the smallest root.
    pub root: usize,
    /// Every replaced root, ascending — more than one exactly when a
    /// shared cut cone was rewritten in one joint synthesis call.
    pub roots: Vec<usize>,
    /// Leaves of the chosen cut.
    pub leaves: Vec<usize>,
    /// Estimated gates saved.
    pub gain: usize,
}

/// Result of a rewriting run.
#[derive(Debug)]
pub struct RewriteResult {
    /// The rewritten network.
    pub network: Network,
    /// Gate count before.
    pub gates_before: usize,
    /// Gate count after.
    pub gates_after: usize,
    /// Replacements applied per pass.
    pub replacements: Vec<Replacement>,
    /// Number of passes executed.
    pub passes: usize,
}

/// Size of the maximum fanout-free cone of `root` above the cut: the
/// gates that die if `root` is replaced by new logic over the cut
/// leaves.
fn mffc_size(net: &Network, root: usize, cut: &Cut, refs: &[usize]) -> usize {
    joint_mffc_size(net, &[root], cut, refs)
}

/// Joint MFFC of several roots above one shared cut: the gates that die
/// if *all* roots are re-sourced from new logic over the cut leaves.
/// Shared interior gates are counted once; a root inside another root's
/// cone is counted once too.
fn joint_mffc_size(net: &Network, roots: &[usize], cut: &Cut, refs: &[usize]) -> usize {
    fn deref(
        net: &Network,
        s: usize,
        cut: &Cut,
        refs: &mut [usize],
        dead: &mut [bool],
        count: &mut usize,
    ) {
        if cut.leaves.binary_search(&s).is_ok() || !net.is_gate(s) || dead[s] {
            return;
        }
        dead[s] = true;
        *count += 1;
        for f in net.gate(s).fanin {
            refs[f] -= 1;
            if refs[f] == 0 {
                deref(net, f, cut, refs, dead, count);
            }
        }
    }
    let mut refs = refs.to_vec();
    let mut dead = vec![false; net.num_signals()];
    let mut count = 0;
    for &root in roots {
        deref(net, root, cut, &mut refs, &mut dead, &mut count);
    }
    count
}

/// Rewrites the network: for every gate, tries to replace some 4-cut
/// cone with the exact-synthesis optimum, greedily applying
/// non-overlapping positive-gain replacements until a pass yields no
/// improvement (or [`RewriteConfig::max_passes`] is hit).
///
/// The rewritten network computes the same output functions (checked by
/// the test-suite via exhaustive simulation).
///
/// # Errors
///
/// Propagates construction and synthesis errors; per-cut synthesis
/// timeouts simply skip the cut.
pub fn rewrite(
    net: &Network,
    config: &RewriteConfig,
    cache: &SynthesisCache,
) -> Result<RewriteResult, NetworkError> {
    let gates_before = net.live_gate_count();
    let mut current = net.clone();
    let mut all_replacements = Vec::new();
    let mut passes = 0usize;
    for _ in 0..config.max_passes {
        passes += 1;
        let (next, replacements) = rewrite_pass(&current, config, cache)?;
        let improved = next.live_gate_count() < current.live_gate_count();
        all_replacements.extend(replacements);
        current = next;
        if !improved {
            break;
        }
    }
    let gates_after = current.live_gate_count();
    stp_telemetry::counter!("network.rewrite_replacements").add(all_replacements.len() as u64);
    stp_telemetry::debug!(
        "rewrite: {gates_before} -> {gates_after} gates over {passes} passes ({} replacements)",
        all_replacements.len()
    );
    Ok(RewriteResult {
        network: current,
        gates_before,
        gates_after,
        replacements: all_replacements,
        passes,
    })
}

fn rewrite_pass(
    net: &Network,
    config: &RewriteConfig,
    cache: &SynthesisCache,
) -> Result<(Network, Vec<Replacement>), NetworkError> {
    let _pass = stp_telemetry::span!("rewrite.pass");
    let cuts = {
        let _enum = stp_telemetry::span!("rewrite.cut_enum");
        enumerate_cuts(net, config.cut_size, config.cut_limit)
    };
    let refs = net.reference_counts();

    // Collect candidate replacements. A candidate replaces one or more
    // roots over one cut: single-root candidates come from the classic
    // per-cone synthesis, multi-root ones from a joint synthesis of
    // every root sharing the cut's leaf set.
    struct Candidate {
        /// Ascending; one root for the classic per-cone replacement.
        roots: Vec<usize>,
        cut: Cut,
        chain: Chain,
        gain: usize,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for s in 0..net.num_signals() {
        if !net.is_gate(s) || refs[s] == 0 {
            continue;
        }
        for cut in &cuts.cuts[s] {
            if cut.leaves.len() < 2 || cut.leaves == [s] {
                continue;
            }
            let f = cut_function(net, s, cut)?;
            if f.is_trivial() {
                continue;
            }
            let Some(chain) = cache.optimum_chain(&f, config.synthesis_budget, config.jobs)? else {
                continue;
            };
            let old_cost = mffc_size(net, s, cut, &refs);
            let new_cost = chain.num_gates();
            if new_cost < old_cost {
                candidates.push(Candidate {
                    roots: vec![s],
                    cut: cut.clone(),
                    chain,
                    gain: old_cost - new_cost,
                });
            }
        }
    }
    if config.multi_output {
        // Best single-root gain per root: a joint replacement must beat
        // the per-root replacements it displaces combined.
        let mut single_gain: HashMap<usize, usize> = HashMap::new();
        for cand in &candidates {
            let best = single_gain.entry(cand.roots[0]).or_insert(0);
            *best = (*best).max(cand.gain);
        }
        // Output-driving gates sharing an identical leaf set form one
        // joint cut cone. Joint candidates are restricted to output
        // roots: interior nodes already compete through the per-cone
        // path, and admitting them here would fold a cone's own
        // sub-cones into its group, diluting the joint gain.
        let mut output_roots: Vec<usize> =
            net.outputs().iter().map(|s| s.index()).filter(|&s| net.is_gate(s)).collect();
        output_roots.sort_unstable();
        output_roots.dedup();
        let mut by_leaves: HashMap<&[usize], Vec<usize>> = HashMap::new();
        for &s in &output_roots {
            if refs[s] == 0 {
                continue;
            }
            for cut in &cuts.cuts[s] {
                if cut.leaves.len() < 2 || cut.leaves == [s] {
                    continue;
                }
                let roots = by_leaves.entry(cut.leaves.as_slice()).or_default();
                if !roots.contains(&s) {
                    roots.push(s);
                }
            }
        }
        // HashMap order is not deterministic; the transcript contract is.
        let mut groups: Vec<(&[usize], Vec<usize>)> =
            by_leaves.into_iter().filter(|(_, roots)| roots.len() >= 2).collect();
        groups.sort();
        for (leaves, mut roots) in groups {
            roots.sort_unstable();
            roots.truncate(MAX_GROUP_OUTPUTS);
            let cut = Cut { leaves: leaves.to_vec() };
            let mut specs = Vec::with_capacity(roots.len());
            for &root in &roots {
                specs.push(cut_function(net, root, &cut)?);
            }
            if specs.iter().all(TruthTable::is_trivial) {
                continue;
            }
            let Some(chain) =
                cache.optimum_shared_chain(&specs, config.synthesis_budget, config.jobs)?
            else {
                continue;
            };
            let old_cost = joint_mffc_size(net, &roots, &cut, &refs);
            let new_cost = chain.num_gates();
            if new_cost >= old_cost {
                continue;
            }
            let gain = old_cost - new_cost;
            let displaced: usize =
                roots.iter().map(|r| single_gain.get(r).copied().unwrap_or(0)).sum();
            if gain <= displaced {
                continue;
            }
            stp_telemetry::counter!("network.mo_rewrites").inc();
            candidates.push(Candidate { roots, cut, chain, gain });
        }
    }
    // Greedy: best gains first; skip candidates whose cone overlaps an
    // already-replaced one.
    candidates.sort_by(|a, b| b.gain.cmp(&a.gain).then(a.roots.cmp(&b.roots)));
    // root -> (candidate index, output position within its chain).
    let mut replaced: HashMap<usize, (usize, usize)> = HashMap::new();
    let mut claimed = vec![false; net.num_signals()];
    let mut report = Vec::new();
    for (ci, cand) in candidates.iter().enumerate() {
        // The cone between the roots and the leaves must be unclaimed.
        let mut cone = Vec::new();
        let mut stack = cand.roots.clone();
        let mut ok = true;
        while let Some(x) = stack.pop() {
            if cand.cut.leaves.binary_search(&x).is_ok() || !net.is_gate(x) {
                continue;
            }
            if claimed[x] {
                ok = false;
                break;
            }
            if cone.contains(&x) {
                continue;
            }
            cone.push(x);
            for fanin in net.gate(x).fanin {
                stack.push(fanin);
            }
        }
        if !ok || cand.roots.iter().any(|r| replaced.contains_key(r)) {
            continue;
        }
        for &x in &cone {
            claimed[x] = true;
        }
        for (position, &root) in cand.roots.iter().enumerate() {
            replaced.insert(root, (ci, position));
        }
        report.push(Replacement {
            root: cand.roots[0],
            roots: cand.roots.clone(),
            leaves: cand.cut.leaves.clone(),
            gain: cand.gain,
        });
    }

    // Rebuild the network, splicing replacements. A multi-root
    // candidate splices its shared chain once — when the first of its
    // roots is reached — and maps every root to its output edge.
    let _apply = stp_telemetry::span!("rewrite.apply");
    let mut out = Network::new(net.num_inputs());
    let mut map: Vec<Option<Sig>> = vec![None; net.num_signals()];
    map[0] = Some(Sig::FALSE);
    for i in 0..net.num_inputs() {
        map[1 + i] = Some(out.input(i));
    }
    fn copy(
        net: &Network,
        s: usize,
        out: &mut Network,
        map: &mut Vec<Option<Sig>>,
        candidates: &[Candidate],
        replaced: &HashMap<usize, (usize, usize)>,
    ) -> Result<Sig, NetworkError> {
        if let Some(sig) = map[s] {
            return Ok(sig);
        }
        let sig = if let Some(&(ci, position)) = replaced.get(&s) {
            let cand = &candidates[ci];
            let mut leaf_sigs = Vec::with_capacity(cand.cut.leaves.len());
            for &leaf in &cand.cut.leaves {
                leaf_sigs.push(copy(net, leaf, out, map, candidates, replaced)?);
            }
            let outputs = out.add_chain_outputs(&cand.chain, &leaf_sigs)?;
            for (j, &root) in cand.roots.iter().enumerate() {
                map[root] = Some(outputs[j]);
            }
            outputs[position]
        } else {
            let gate = net.gate(s);
            let a = copy(net, gate.fanin[0], out, map, candidates, replaced)?;
            let b = copy(net, gate.fanin[1], out, map, candidates, replaced)?;
            out.add_gate(a, b, gate.tt2)?
        };
        map[s] = Some(sig);
        Ok(sig)
    }
    for output in net.outputs() {
        let sig = copy(net, output.index(), &mut out, &mut map, &candidates, &replaced)?;
        out.add_output(if output.is_negated() { sig.not() } else { sig });
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_network_realizes_all_outputs() {
        // Full adder: sum and carry over (a, b, cin).
        let sum = TruthTable::from_fn(3, |x| x[0] ^ x[1] ^ x[2]).unwrap();
        let carry =
            TruthTable::from_fn(3, |x| (x[0] as u8 + x[1] as u8 + x[2] as u8) >= 2).unwrap();
        let cache = SynthesisCache::new();
        let net = exact_network(&[sum.clone(), carry.clone()], &cache, Duration::from_secs(30), 1)
            .unwrap();
        let outs = net.simulate_outputs().unwrap();
        assert_eq!(outs[0], sum);
        assert_eq!(outs[1], carry);
    }

    #[test]
    fn exact_network_handles_trivial_outputs() {
        let specs = vec![
            TruthTable::constant(2, true).unwrap(),
            TruthTable::constant(2, false).unwrap(),
            TruthTable::variable(2, 1).unwrap(),
            !TruthTable::variable(2, 0).unwrap(),
        ];
        let cache = SynthesisCache::new();
        let net = exact_network(&specs, &cache, Duration::from_secs(5), 1).unwrap();
        let outs = net.simulate_outputs().unwrap();
        assert_eq!(outs, specs);
        assert_eq!(net.live_gate_count(), 0);
    }

    #[test]
    fn exact_network_falls_back_under_zero_budget() {
        // With no budget every non-trivial spec goes through the
        // Shannon fallback — the result must still be correct.
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let cache = SynthesisCache::new();
        let net = exact_network(std::slice::from_ref(&spec), &cache, Duration::ZERO, 1).unwrap();
        assert_eq!(net.simulate_outputs().unwrap()[0], spec);
    }

    /// A deliberately wasteful XOR: (a & !b) | (!a & b) costs 3 gates.
    fn wasteful_xor() -> Network {
        let mut net = Network::new(2);
        let (a, b) = (net.input(0), net.input(1));
        let t1 = net.and(a, b.not()).unwrap();
        let t2 = net.and(a.not(), b).unwrap();
        let f = net.or(t1, t2).unwrap();
        net.add_output(f);
        net
    }

    #[test]
    fn rewrites_wasteful_xor_to_one_gate() {
        let net = wasteful_xor();
        assert_eq!(net.live_gate_count(), 3);
        let before = net.simulate_outputs().unwrap();
        let cache = SynthesisCache::new();
        let result = rewrite(&net, &RewriteConfig::default(), &cache).unwrap();
        assert_eq!(result.gates_after, 1, "XOR is a single 2-LUT");
        assert_eq!(result.network.simulate_outputs().unwrap(), before);
        assert!(!result.replacements.is_empty());
    }

    #[test]
    fn preserves_functionality_on_shared_logic() {
        // Shared subexpression feeding two outputs.
        let mut net = Network::new(4);
        let (a, b, c, d) = (net.input(0), net.input(1), net.input(2), net.input(3));
        let ab = net.and(a, b).unwrap();
        let nab = net.add_gate(a, b, 0x7).unwrap(); // NAND shares the node
        let f1 = net.or(ab, c).unwrap();
        let f2 = net.and(nab, d).unwrap();
        net.add_output(f1);
        net.add_output(f2.not());
        let before = net.simulate_outputs().unwrap();
        let cache = SynthesisCache::new();
        let result = rewrite(&net, &RewriteConfig::default(), &cache).unwrap();
        assert_eq!(result.network.simulate_outputs().unwrap(), before);
        assert!(result.gates_after <= result.gates_before);
    }

    #[test]
    fn cache_is_reused_across_calls() {
        let cache = SynthesisCache::new();
        let net = wasteful_xor();
        let _ = rewrite(&net, &RewriteConfig::default(), &cache).unwrap();
        let misses_first = cache.misses();
        let _ = rewrite(&wasteful_xor(), &RewriteConfig::default(), &cache).unwrap();
        assert_eq!(cache.misses(), misses_first, "second run must be fully cached");
        assert!(cache.hits() > 0);
    }

    #[test]
    fn timeout_is_retried_with_a_larger_budget() {
        let cache = SynthesisCache::new();
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        // Zero budget: recorded as exhausted, not as a permanent failure.
        assert!(cache.optimum_chain(&spec, Duration::ZERO, 1).unwrap().is_none());
        let misses = cache.misses();
        // Same budget again: answered from the exhaustion record.
        assert!(cache.optimum_chain(&spec, Duration::ZERO, 1).unwrap().is_none());
        assert_eq!(cache.misses(), misses, "equal budget must not re-attempt");
        // Strictly larger budget: retried and solved.
        let chain =
            cache.optimum_chain(&spec, Duration::from_secs(30), 1).unwrap().expect("solvable");
        assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        assert_eq!(cache.misses(), misses + 1);
    }

    #[test]
    fn trivial_specs_skip_the_store() {
        let cache = SynthesisCache::new();
        let proj = !TruthTable::variable(4, 2).unwrap();
        let chain = cache.optimum_chain(&proj, Duration::ZERO, 1).unwrap().expect("trivial");
        assert_eq!(chain.num_gates(), 0);
        assert_eq!(chain.simulate_outputs().unwrap()[0], proj);
        assert_eq!(cache.misses(), 0, "no canonicalization, no store round-trip");
        assert_eq!(cache.store().trivial_hits(), 1);
        assert!(cache.store().is_empty());
    }

    #[test]
    fn caches_share_one_store() {
        let store = Arc::new(Store::new());
        let first = SynthesisCache::with_store(Arc::clone(&store));
        let second = SynthesisCache::with_store(Arc::clone(&store));
        let _ = rewrite(&wasteful_xor(), &RewriteConfig::default(), &first).unwrap();
        let misses = store.misses();
        assert!(misses > 0);
        let _ = rewrite(&wasteful_xor(), &RewriteConfig::default(), &second).unwrap();
        assert_eq!(store.misses(), misses, "second cache must reuse the shared store");
    }

    #[test]
    fn mffc_respects_external_fanout() {
        // ab feeds both the candidate cone and an external output: it
        // must not be counted in the cone's MFFC.
        let mut net = Network::new(3);
        let (a, b, c) = (net.input(0), net.input(1), net.input(2));
        let ab = net.and(a, b).unwrap();
        let f = net.or(ab, c).unwrap();
        net.add_output(f);
        net.add_output(ab);
        let refs = net.reference_counts();
        let cut = Cut { leaves: vec![1, 2, 3] };
        assert_eq!(mffc_size(&net, f.index(), &cut, &refs), 1);
        // Without the external output the whole cone dies.
        let mut net2 = Network::new(3);
        let (a, b, c) = (net2.input(0), net2.input(1), net2.input(2));
        let ab2 = net2.and(a, b).unwrap();
        let f2 = net2.or(ab2, c).unwrap();
        net2.add_output(f2);
        let refs2 = net2.reference_counts();
        assert_eq!(mffc_size(&net2, f2.index(), &cut, &refs2), 2);
    }

    /// A full adder whose cones are individually optimal but unshared:
    /// sum = (a⊕b)⊕c (2 gates), carry = (a∧b)∨((a∨b)∧c) (4 gates).
    fn unshared_full_adder() -> Network {
        let mut net = Network::new(3);
        let (a, b, c) = (net.input(0), net.input(1), net.input(2));
        let x1 = net.xor(a, b).unwrap();
        let sum = net.xor(x1, c).unwrap();
        let u = net.and(a, b).unwrap();
        let v = net.or(a, b).unwrap();
        let w = net.and(v, c).unwrap();
        let m = net.or(u, w).unwrap();
        net.add_output(sum);
        net.add_output(m);
        net
    }

    #[test]
    fn joint_rewrite_shares_a_two_output_cut_cone() {
        let net = unshared_full_adder();
        assert_eq!(net.live_gate_count(), 6);
        let before = net.simulate_outputs().unwrap();

        // Every cone is per-output optimal, so the classic path finds
        // nothing to do.
        let single_only = RewriteConfig { multi_output: false, ..RewriteConfig::default() };
        let untouched = rewrite(&net, &single_only, &SynthesisCache::new()).unwrap();
        assert_eq!(untouched.gates_after, 6);
        assert!(untouched.replacements.is_empty());

        // Joint synthesis of the shared {a, b, c} cut cone shares the
        // a⊕b node between sum and carry: 5 gates, strictly fewer than
        // the per-output optimum sum.
        let cache = SynthesisCache::new();
        let result = rewrite(&net, &RewriteConfig::default(), &cache).unwrap();
        assert_eq!(result.network.simulate_outputs().unwrap(), before);
        assert_eq!(result.gates_after, 5, "joint synthesis must share one gate");
        let joint =
            result.replacements.iter().find(|r| r.roots.len() == 2).expect("a joint replacement");
        assert_eq!(joint.gain, 1);
        assert_eq!(joint.root, joint.roots[0]);

        // A second run over the same cache answers from the store.
        let misses = cache.misses();
        let again = rewrite(&net, &RewriteConfig::default(), &cache).unwrap();
        assert_eq!(again.gates_after, 5);
        assert_eq!(cache.misses(), misses, "joint classes must be cached too");
    }

    #[test]
    fn joint_rewrite_transcript_is_jobs_invariant() {
        let net = unshared_full_adder();
        let run = |jobs: usize| {
            let config = RewriteConfig { jobs, ..RewriteConfig::default() };
            let result = rewrite(&net, &config, &SynthesisCache::new()).unwrap();
            let mut transcript = result.network.to_blif("t");
            for r in &result.replacements {
                transcript.push_str(&format!(
                    "roots={:?} leaves={:?} gain={}\n",
                    r.roots, r.leaves, r.gain
                ));
            }
            transcript
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn already_optimal_network_is_untouched() {
        let mut net = Network::new(2);
        let g = net.xor(net.input(0), net.input(1)).unwrap();
        net.add_output(g);
        let cache = SynthesisCache::new();
        let result = rewrite(&net, &RewriteConfig::default(), &cache).unwrap();
        assert_eq!(result.gates_after, 1);
        assert_eq!(result.network.simulate_outputs().unwrap(), net.simulate_outputs().unwrap());
    }
}
