//! Benchmark circuit generators.
//!
//! Small parametric circuits for exercising cut enumeration and
//! rewriting: a ripple-carry adder, an equality comparator, a
//! multiplexer tree, and seeded random LUT networks.

use rand::{Rng, RngExt};

use crate::error::NetworkError;
use crate::network::{Network, Sig};

/// An `n`-bit ripple-carry adder: inputs `a[0..n], b[0..n], cin`;
/// outputs `sum[0..n], cout`. Built from textbook full adders (5 gates
/// each), leaving obvious room for rewriting.
///
/// # Errors
///
/// Propagates [`NetworkError`] from construction.
pub fn ripple_carry_adder(bits: usize) -> Result<Network, NetworkError> {
    let mut net = Network::new(2 * bits + 1);
    let mut carry = net.input(2 * bits);
    for i in 0..bits {
        let a = net.input(i);
        let b = net.input(bits + i);
        let axb = net.xor(a, b)?;
        let sum = net.xor(axb, carry)?;
        let t1 = net.and(a, b)?;
        let t2 = net.and(axb, carry)?;
        let cout = net.or(t1, t2)?;
        net.add_output(sum);
        carry = cout;
    }
    net.add_output(carry);
    Ok(net)
}

/// An `n`-bit ripple-carry adder built from *two-level* (sum of
/// minterms) full adders — a deliberately redundant realization
/// (over 10 gates per bit) that rewriting should collapse towards the
/// 5-gate textbook cell.
///
/// # Errors
///
/// Propagates [`NetworkError`] from construction.
pub fn ripple_carry_adder_sop(bits: usize) -> Result<Network, NetworkError> {
    let mut net = Network::new(2 * bits + 1);
    let mut carry = net.input(2 * bits);
    for i in 0..bits {
        let a = net.input(i);
        let b = net.input(bits + i);
        // sum = Σ minterms with odd parity; cout = Σ minterms with ≥ 2
        // ones — both as explicit AND-OR trees.
        let mut sum_terms: Vec<Sig> = Vec::new();
        let mut cout_terms: Vec<Sig> = Vec::new();
        for m in 0..8usize {
            let lits = [
                if m & 1 == 1 { a } else { a.not() },
                if m & 2 == 2 { b } else { b.not() },
                if m & 4 == 4 { carry } else { carry.not() },
            ];
            let ones = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
            if ones % 2 == 1 || ones >= 2 {
                let t0 = net.and(lits[0], lits[1])?;
                let term = net.and(t0, lits[2])?;
                if ones % 2 == 1 {
                    sum_terms.push(term);
                }
                if ones >= 2 {
                    cout_terms.push(term);
                }
            }
        }
        let or_tree = |net: &mut Network, mut terms: Vec<Sig>| -> Result<Sig, NetworkError> {
            while terms.len() > 1 {
                let a = terms.remove(0);
                let b = terms.remove(0);
                terms.push(net.or(a, b)?);
            }
            Ok(terms[0])
        };
        let sum = or_tree(&mut net, sum_terms)?;
        let cout = or_tree(&mut net, cout_terms)?;
        net.add_output(sum);
        carry = cout;
    }
    net.add_output(carry);
    Ok(net)
}

/// An `n`-bit equality comparator: output is 1 iff `a == b`.
///
/// # Errors
///
/// Propagates [`NetworkError`] from construction.
pub fn equality_comparator(bits: usize) -> Result<Network, NetworkError> {
    let mut net = Network::new(2 * bits);
    let mut acc = Sig::TRUE;
    for i in 0..bits {
        let a = net.input(i);
        let b = net.input(bits + i);
        let eq = net.add_gate(a, b, 0x9)?; // XNOR
        acc = net.and(acc, eq)?;
    }
    net.add_output(acc);
    Ok(net)
}

/// A `2^k`-to-1 multiplexer tree: inputs are `k` select bits followed
/// by `2^k` data bits; one output.
///
/// # Errors
///
/// Propagates [`NetworkError`] from construction.
pub fn mux_tree(select_bits: usize) -> Result<Network, NetworkError> {
    let data = 1usize << select_bits;
    let mut net = Network::new(select_bits + data);
    let mut layer: Vec<Sig> = (0..data).map(|i| net.input(select_bits + i)).collect();
    for level in 0..select_bits {
        let sel = net.input(level);
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(net.mux(sel, pair[1], pair[0])?);
        }
        layer = next;
    }
    net.add_output(layer[0]);
    Ok(net)
}

/// A seeded random network: `gates` random 2-LUTs over random earlier
/// signals, with the last few gates exported as outputs.
///
/// # Errors
///
/// Propagates [`NetworkError`] from construction.
///
/// # Panics
///
/// Panics if `inputs < 2` or `gates == 0`.
pub fn random_network<R: Rng>(
    inputs: usize,
    gates: usize,
    outputs: usize,
    rng: &mut R,
) -> Result<Network, NetworkError> {
    assert!(inputs >= 2, "need at least two inputs");
    assert!(gates > 0, "need at least one gate");
    let mut net = Network::new(inputs);
    let mut sigs: Vec<Sig> = (0..inputs).map(|i| net.input(i)).collect();
    for _ in 0..gates {
        let a = sigs[rng.random_range(0..sigs.len())];
        let mut b = sigs[rng.random_range(0..sigs.len())];
        if b.index() == a.index() {
            b = sigs[(0..sigs.len())
                .find(|&i| sigs[i].index() != a.index())
                .expect("at least two distinct signals exist")];
        }
        let op = stp_tt::NONTRIVIAL_OPS[rng.random_range(0..stp_tt::NONTRIVIAL_OPS.len())];
        let a = if rng.random_bool(0.3) { a.not() } else { a };
        let g = net.add_gate(a, b, op)?;
        sigs.push(g);
    }
    let take = outputs.min(sigs.len());
    for sig in sigs.iter().rev().take(take) {
        net.add_output(*sig);
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn adder_computes_sums() {
        let bits = 3;
        let net = ripple_carry_adder(bits).unwrap();
        let outs = net.simulate_outputs().unwrap();
        assert_eq!(outs.len(), bits + 1);
        for m in 0..(1usize << (2 * bits + 1)) {
            let a = m & ((1 << bits) - 1);
            let b = (m >> bits) & ((1 << bits) - 1);
            let cin = (m >> (2 * bits)) & 1;
            let expected = a + b + cin;
            let mut got = 0usize;
            for (i, out) in outs.iter().enumerate() {
                if out.bit(m) {
                    got |= 1 << i;
                }
            }
            assert_eq!(got, expected, "a={a} b={b} cin={cin}");
        }
    }

    #[test]
    fn sop_adder_matches_textbook_adder() {
        let bits = 2;
        let sop = ripple_carry_adder_sop(bits).unwrap();
        let fast = ripple_carry_adder(bits).unwrap();
        assert_eq!(sop.simulate_outputs().unwrap(), fast.simulate_outputs().unwrap());
        assert!(sop.live_gate_count() > fast.live_gate_count());
    }

    #[test]
    fn comparator_detects_equality() {
        let bits = 3;
        let net = equality_comparator(bits).unwrap();
        let out = net.simulate_outputs().unwrap().remove(0);
        for m in 0..(1usize << (2 * bits)) {
            let a = m & ((1 << bits) - 1);
            let b = m >> bits;
            assert_eq!(out.bit(m), a == b);
        }
    }

    #[test]
    fn mux_selects_data() {
        let net = mux_tree(2).unwrap();
        let out = net.simulate_outputs().unwrap().remove(0);
        for m in 0..(1usize << 6) {
            let sel = m & 0b11;
            let data = (m >> 2) & 0b1111;
            assert_eq!(out.bit(m), (data >> sel) & 1 == 1, "m={m}");
        }
    }

    #[test]
    fn random_network_is_reproducible() {
        let a = random_network(4, 10, 2, &mut SmallRng::seed_from_u64(1)).unwrap();
        let b = random_network(4, 10, 2, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(a.simulate_outputs().unwrap(), b.simulate_outputs().unwrap());
        assert!(a.live_gate_count() > 0);
    }
}
