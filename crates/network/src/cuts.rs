//! K-feasible cut enumeration.
//!
//! A *cut* of node `v` is a set of signals (leaves) such that every
//! path from the inputs to `v` passes through a leaf; a cut is
//! `k`-feasible when it has at most `k` leaves. Rewriting enumerates
//! the cuts of every node bottom-up (merging fanin cuts, pruning
//! dominated ones), computes each cut's local function, and asks exact
//! synthesis for a cheaper implementation.

use stp_tt::TruthTable;

use crate::error::NetworkError;
use crate::network::Network;

/// A cut: sorted leaf signal indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    /// Sorted signal indices of the leaves.
    pub leaves: Vec<usize>,
}

impl Cut {
    /// The trivial cut `{v}`.
    pub fn trivial(v: usize) -> Cut {
        Cut { leaves: vec![v] }
    }

    /// Merges two cuts; `None` when the union exceeds `k` leaves.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        let mut leaves = Vec::with_capacity(self.leaves.len() + other.leaves.len());
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() || j < other.leaves.len() {
            let next = match (self.leaves.get(i), other.leaves.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!("loop condition"),
            };
            if leaves.len() == k {
                return None;
            }
            leaves.push(next);
        }
        Some(Cut { leaves })
    }

    /// `true` when every leaf of `self` appears in `other` (`self`
    /// dominates `other`: anything realizable from `other`'s leaves is
    /// realizable from `self`'s).
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.iter().all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Per-node cut sets for a network.
#[derive(Debug, Clone)]
pub struct CutSet {
    /// `cuts[s]` lists the cuts of signal `s` (smallest first).
    pub cuts: Vec<Vec<Cut>>,
}

/// Enumerates the `k`-feasible cuts of every signal, keeping at most
/// `limit` non-trivial cuts per node (smaller cuts preferred).
///
/// Constants and inputs get only their trivial cut.
pub fn enumerate_cuts(net: &Network, k: usize, limit: usize) -> CutSet {
    let n = net.num_signals();
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(n);
    for s in 0..n {
        if !net.is_gate(s) {
            cuts.push(vec![Cut::trivial(s)]);
            continue;
        }
        let gate = net.gate(s);
        let mut mine: Vec<Cut> = Vec::new();
        for c1 in &cuts[gate.fanin[0]] {
            for c2 in &cuts[gate.fanin[1]] {
                if let Some(merged) = c1.merge(c2, k) {
                    // Drop if dominated by an existing cut; drop existing
                    // cuts it dominates.
                    if mine.iter().any(|c| c.dominates(&merged)) {
                        continue;
                    }
                    mine.retain(|c| !merged.dominates(c));
                    mine.push(merged);
                }
            }
        }
        mine.sort_by_key(|c| c.leaves.len());
        mine.truncate(limit);
        // The trivial cut always present (last: it is never useful for
        // rewriting but is needed for fanout merges).
        mine.push(Cut::trivial(s));
        cuts.push(mine);
    }
    stp_telemetry::counter!("network.cuts_enumerated")
        .add(cuts.iter().map(Vec::len).sum::<usize>() as u64);
    CutSet { cuts }
}

/// Computes the function of `root` in terms of a cut's leaves.
///
/// # Errors
///
/// Returns [`NetworkError::TooManyInputsForSimulation`] when the cut
/// has more leaves than the truth-table substrate supports (cuts used
/// for rewriting are ≤ 4 leaves, far below the limit).
///
/// # Panics
///
/// Panics when `root` is not actually covered by the cut (some path
/// reaches an input without crossing a leaf).
pub fn cut_function(net: &Network, root: usize, cut: &Cut) -> Result<TruthTable, NetworkError> {
    let k = cut.leaves.len();
    if k > stp_tt::MAX_VARS {
        return Err(NetworkError::TooManyInputsForSimulation { inputs: k });
    }
    let mut memo: Vec<Option<TruthTable>> = vec![None; net.num_signals()];
    for (i, &leaf) in cut.leaves.iter().enumerate() {
        memo[leaf] = Some(TruthTable::variable(k, i)?);
    }
    // Constant leaf semantics: signal 0 is always false unless it is a
    // declared leaf.
    if memo[0].is_none() {
        memo[0] = Some(TruthTable::constant(k, false)?);
    }
    fn eval(
        net: &Network,
        s: usize,
        memo: &mut Vec<Option<TruthTable>>,
    ) -> Result<TruthTable, NetworkError> {
        if let Some(tt) = &memo[s] {
            return Ok(tt.clone());
        }
        assert!(net.is_gate(s), "cut does not cover signal {s}");
        let gate = net.gate(s);
        let a = eval(net, gate.fanin[0], memo)?;
        let b = eval(net, gate.fanin[1], memo)?;
        let tt = a.binary_op(gate.tt2, &b)?;
        memo[s] = Some(tt.clone());
        Ok(tt)
    }
    eval(net, root, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Sig;

    fn sample_network() -> (Network, Sig, Sig) {
        // f = (a & b) ^ (c | d), g = (a & b) | c.
        let mut net = Network::new(4);
        let (a, b, c, d) = (net.input(0), net.input(1), net.input(2), net.input(3));
        let ab = net.and(a, b).unwrap();
        let cd = net.or(c, d).unwrap();
        let f = net.xor(ab, cd).unwrap();
        let g = net.or(ab, c).unwrap();
        net.add_output(f);
        net.add_output(g);
        (net, f, g)
    }

    #[test]
    fn cut_merge_respects_k() {
        let c1 = Cut { leaves: vec![1, 2] };
        let c2 = Cut { leaves: vec![3, 4] };
        assert!(c1.merge(&c2, 4).is_some());
        assert!(c1.merge(&c2, 3).is_none());
        let c3 = Cut { leaves: vec![1, 3] };
        assert_eq!(c1.merge(&c3, 3).unwrap().leaves, vec![1, 2, 3]);
    }

    #[test]
    fn domination() {
        let small = Cut { leaves: vec![1, 2] };
        let big = Cut { leaves: vec![1, 2, 3] };
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
    }

    #[test]
    fn enumerate_finds_expected_cuts() {
        let (net, f, _) = sample_network();
        let cuts = enumerate_cuts(&net, 4, 8);
        let f_cuts = &cuts.cuts[f.index()];
        // The input cut {a, b, c, d} must be among f's cuts.
        assert!(f_cuts.iter().any(|c| c.leaves == vec![1, 2, 3, 4]));
        // And the fanin cut {ab, cd}.
        assert!(f_cuts.iter().any(|c| c.leaves.len() == 2 && c.leaves[0] > 4));
    }

    #[test]
    fn cut_functions_match_global_simulation() {
        let (net, f, g) = sample_network();
        let cuts = enumerate_cuts(&net, 4, 8);
        let global = net.simulate().unwrap();
        for root in [f.index(), g.index()] {
            for cut in &cuts.cuts[root] {
                let local = cut_function(&net, root, cut).unwrap();
                // Check on every assignment: the local function applied
                // to the leaves' global values equals the root's global
                // value.
                for m in 0..16usize {
                    let leaf_vals: Vec<bool> =
                        cut.leaves.iter().map(|&l| global[l].bit(m)).collect();
                    assert_eq!(
                        local.eval(&leaf_vals),
                        global[root].bit(m),
                        "root {root}, cut {:?}, minterm {m}",
                        cut.leaves
                    );
                }
            }
        }
    }

    #[test]
    fn trivial_cut_function_is_identity() {
        let (net, f, _) = sample_network();
        let tt = cut_function(&net, f.index(), &Cut::trivial(f.index())).unwrap();
        assert_eq!(tt, TruthTable::variable(1, 0).unwrap());
    }

    #[test]
    fn dominated_cuts_are_pruned() {
        let (net, f, _) = sample_network();
        let cuts = enumerate_cuts(&net, 4, 8);
        let f_cuts = &cuts.cuts[f.index()];
        for (i, a) in f_cuts.iter().enumerate() {
            for (j, b) in f_cuts.iter().enumerate() {
                if i != j && a.leaves != b.leaves {
                    assert!(
                        !(a.dominates(b) && a.leaves.len() < b.leaves.len()),
                        "dominated cut {:?} kept alongside {:?}",
                        b.leaves,
                        a.leaves
                    );
                }
            }
        }
    }
}
