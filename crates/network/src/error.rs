//! Error types for the network crate.

use std::error::Error;
use std::fmt;

use stp_chain::ChainError;
use stp_synth::SynthesisError;
use stp_tt::TruthTableError;

/// Errors raised by network construction and rewriting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A gate fanin references a signal that does not exist yet.
    SignalOutOfRange {
        /// The offending signal.
        signal: usize,
        /// Number of signals available.
        available: usize,
    },
    /// Whole-network simulation needs at most
    /// [`stp_tt::MAX_VARS`] primary inputs.
    TooManyInputsForSimulation {
        /// The network's input count.
        inputs: usize,
    },
    /// A truth-table operation failed.
    TruthTable(TruthTableError),
    /// A chain operation failed.
    Chain(ChainError),
    /// Exact synthesis failed during rewriting.
    Synthesis(SynthesisError),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::SignalOutOfRange { signal, available } => {
                write!(f, "signal {signal} out of range, only {available} exist")
            }
            NetworkError::TooManyInputsForSimulation { inputs } => {
                write!(f, "cannot simulate {inputs} inputs exhaustively")
            }
            NetworkError::TruthTable(e) => write!(f, "truth table error: {e}"),
            NetworkError::Chain(e) => write!(f, "chain error: {e}"),
            NetworkError::Synthesis(e) => write!(f, "synthesis error: {e}"),
        }
    }
}

impl Error for NetworkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetworkError::TruthTable(e) => Some(e),
            NetworkError::Chain(e) => Some(e),
            NetworkError::Synthesis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TruthTableError> for NetworkError {
    fn from(e: TruthTableError) -> Self {
        NetworkError::TruthTable(e)
    }
}

impl From<ChainError> for NetworkError {
    fn from(e: ChainError) -> Self {
        NetworkError::Chain(e)
    }
}

impl From<SynthesisError> for NetworkError {
    fn from(e: SynthesisError) -> Self {
        NetworkError::Synthesis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(NetworkError::SignalOutOfRange { signal: 9, available: 3 }
            .to_string()
            .contains('9'));
        assert!(NetworkError::TooManyInputsForSimulation { inputs: 40 }.to_string().contains("40"));
    }
}
