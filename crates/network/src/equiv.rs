//! Combinational equivalence checking.
//!
//! Two routes, chosen by scale:
//!
//! * [`equivalent_exhaustive`] — full truth-table simulation, exact for
//!   networks of up to [`stp_tt::MAX_VARS`] inputs;
//! * [`equivalent_sat`] — the classic *miter* construction on the
//!   workspace's CDCL solver (`stp-sat`): encode both networks in CNF
//!   (Tseitin over the 2-LUT nodes), XOR corresponding outputs, OR the
//!   XORs, and ask for satisfiability — UNSAT means equivalent. Scales
//!   past the simulation limit and returns a counterexample otherwise.
//!
//! The rewriting tests use both and cross-check them against each
//! other.

use stp_sat::{Lit, SolveResult, Solver, Var};

use crate::error::NetworkError;
use crate::network::Network;

/// Result of a SAT equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// The networks agree on every input assignment.
    Equivalent,
    /// A distinguishing input assignment (one `bool` per input).
    Counterexample(Vec<bool>),
    /// The conflict budget ran out before an answer was reached.
    Unknown,
}

/// Exhaustive equivalence check by full simulation.
///
/// # Errors
///
/// Returns [`NetworkError::TooManyInputsForSimulation`] past the
/// truth-table limit, and propagates simulation failures.
pub fn equivalent_exhaustive(a: &Network, b: &Network) -> Result<bool, NetworkError> {
    if a.num_inputs() != b.num_inputs() || a.outputs().len() != b.outputs().len() {
        return Ok(false);
    }
    Ok(a.simulate_outputs()? == b.simulate_outputs()?)
}

/// Encodes a network into the solver with Tseitin clauses per 2-LUT
/// node; returns one literal per output.
fn encode(net: &Network, solver: &mut Solver, input_vars: &[Var]) -> Vec<Lit> {
    let mut lit_of: Vec<Option<Lit>> = vec![None; net.num_signals()];
    // Constant false: a fresh variable pinned to 0 (only allocated when
    // actually referenced).
    let mut const_lit: Option<Lit> = None;
    for i in 0..net.num_inputs() {
        lit_of[1 + i] = Some(input_vars[i].pos());
    }
    let num_inputs = net.num_inputs();
    for (g, gate) in net.gates().iter().enumerate() {
        let idx = 1 + num_inputs + g;
        let mut fanin_lit = |solver: &mut Solver, s: usize| -> Lit {
            if s == 0 {
                *const_lit.get_or_insert_with(|| {
                    let v = solver.new_var();
                    solver.add_clause(&[v.neg()]);
                    v.pos()
                })
            } else {
                lit_of[s].expect("fanins precede gates")
            }
        };
        let a = fanin_lit(solver, gate.fanin[0]);
        let b = fanin_lit(solver, gate.fanin[1]);
        let y = solver.new_var().pos();
        // For each fanin value pair, force y to the LUT output.
        for (av, bv) in [(false, false), (true, false), (false, true), (true, true)] {
            let out = (gate.tt2 >> ((av as u8) + 2 * (bv as u8))) & 1 == 1;
            let la = if av { !a } else { a };
            let lb = if bv { !b } else { b };
            let ly = if out { y } else { !y };
            solver.add_clause(&[la, lb, ly]);
        }
        lit_of[idx] = Some(y);
    }
    net.outputs()
        .iter()
        .map(|sig| {
            let base = if sig.index() == 0 {
                *const_lit.get_or_insert_with(|| {
                    let v = solver.new_var();
                    solver.add_clause(&[v.neg()]);
                    v.pos()
                })
            } else {
                lit_of[sig.index()].expect("outputs reference defined signals")
            };
            if sig.is_negated() {
                !base
            } else {
                base
            }
        })
        .collect()
}

/// Miter-based SAT equivalence check.
///
/// `conflict_budget` bounds the solving effort (`None` = unbounded).
///
/// # Errors
///
/// Returns [`NetworkError::SignalOutOfRange`] when the interfaces
/// (input/output counts) disagree — shape mismatches are programming
/// errors rather than counterexamples here.
pub fn equivalent_sat(
    a: &Network,
    b: &Network,
    conflict_budget: Option<u64>,
) -> Result<EquivResult, NetworkError> {
    if a.num_inputs() != b.num_inputs() || a.outputs().len() != b.outputs().len() {
        return Err(NetworkError::SignalOutOfRange {
            signal: b.num_inputs(),
            available: a.num_inputs(),
        });
    }
    let mut solver = Solver::new();
    let inputs: Vec<Var> = (0..a.num_inputs()).map(|_| solver.new_var()).collect();
    let outs_a = encode(a, &mut solver, &inputs);
    let outs_b = encode(b, &mut solver, &inputs);
    // XOR each output pair into a fresh variable.
    let mut diffs = Vec::with_capacity(outs_a.len());
    for (&la, &lb) in outs_a.iter().zip(&outs_b) {
        let d = solver.new_var().pos();
        // d ↔ (la ⊕ lb)
        solver.add_clause(&[!d, la, lb]);
        solver.add_clause(&[!d, !la, !lb]);
        solver.add_clause(&[d, !la, lb]);
        solver.add_clause(&[d, la, !lb]);
        diffs.push(d);
    }
    // Some output must differ.
    solver.add_clause(&diffs);
    solver.set_conflict_budget(conflict_budget);
    Ok(match solver.solve() {
        SolveResult::Unsat => EquivResult::Equivalent,
        SolveResult::Unknown => EquivResult::Unknown,
        SolveResult::Sat => {
            let model = solver.model();
            EquivResult::Counterexample(inputs.iter().map(|v| model[v.index()]).collect())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Sig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn xor_two_ways() -> (Network, Network) {
        let mut direct = Network::new(2);
        let g = direct.xor(direct.input(0), direct.input(1)).unwrap();
        direct.add_output(g);
        let mut sop = Network::new(2);
        let (a, b) = (sop.input(0), sop.input(1));
        let t1 = sop.and(a, b.not()).unwrap();
        let t2 = sop.and(a.not(), b).unwrap();
        let f = sop.or(t1, t2).unwrap();
        sop.add_output(f);
        (direct, sop)
    }

    #[test]
    fn equivalent_realizations_detected() {
        let (a, b) = xor_two_ways();
        assert!(equivalent_exhaustive(&a, &b).unwrap());
        assert_eq!(equivalent_sat(&a, &b, None).unwrap(), EquivResult::Equivalent);
    }

    #[test]
    fn counterexample_produced_for_inequivalent_networks() {
        let mut a = Network::new(2);
        let g = a.xor(a.input(0), a.input(1)).unwrap();
        a.add_output(g);
        let mut b = Network::new(2);
        let g = b.or(b.input(0), b.input(1)).unwrap();
        b.add_output(g);
        assert!(!equivalent_exhaustive(&a, &b).unwrap());
        match equivalent_sat(&a, &b, None).unwrap() {
            EquivResult::Counterexample(cex) => {
                // XOR and OR differ exactly at (1, 1).
                assert_eq!(cex, vec![true, true]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn negated_and_constant_outputs() {
        let mut a = Network::new(1);
        a.add_output(Sig::TRUE);
        a.add_output(a.input(0).not());
        let mut b = Network::new(1);
        let inv = b.add_gate(b.input(0), Sig::TRUE, 0x6).unwrap(); // a XOR 1
        b.add_output(Sig::FALSE.not());
        b.add_output(inv);
        assert_eq!(equivalent_sat(&a, &b, None).unwrap(), EquivResult::Equivalent);
    }

    #[test]
    fn sat_and_exhaustive_agree_on_random_pairs() {
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = crate::circuits::random_network(4, 8, 2, &mut rng).unwrap();
            let b = crate::circuits::random_network(4, 8, 2, &mut rng).unwrap();
            let exact = equivalent_exhaustive(&a, &b).unwrap();
            let sat = equivalent_sat(&a, &b, None).unwrap();
            match (exact, &sat) {
                (true, EquivResult::Equivalent) => {}
                (false, EquivResult::Counterexample(cex)) => {
                    // The counterexample must actually distinguish them.
                    let mut m = 0usize;
                    for (i, &v) in cex.iter().enumerate() {
                        if v {
                            m |= 1 << i;
                        }
                    }
                    let oa = a.simulate_outputs().unwrap();
                    let ob = b.simulate_outputs().unwrap();
                    assert!(
                        oa.iter().zip(&ob).any(|(x, y)| x.bit(m) != y.bit(m)),
                        "seed {seed}: counterexample does not distinguish"
                    );
                }
                (e, s) => panic!("seed {seed}: exhaustive={e}, sat={s:?}"),
            }
        }
    }

    #[test]
    fn rewriting_verified_by_sat_miter() {
        let net = crate::circuits::ripple_carry_adder_sop(2).unwrap();
        let cache = crate::rewrite::SynthesisCache::new();
        let result =
            crate::rewrite::rewrite(&net, &crate::rewrite::RewriteConfig::default(), &cache)
                .unwrap();
        assert_eq!(equivalent_sat(&net, &result.network, None).unwrap(), EquivResult::Equivalent);
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = Network::new(2);
        let b = Network::new(3);
        assert!(equivalent_sat(&a, &b, None).is_err());
    }
}
