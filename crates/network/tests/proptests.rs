//! Property-based tests for networks, cuts, and rewriting.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stp_network::{
    cut_function, enumerate_cuts, random_network, rewrite, Network, RewriteConfig, SynthesisCache,
};

fn random_net(seed: u64, inputs: usize, gates: usize) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_network(inputs, gates, 2, &mut rng).expect("construction succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural hashing never changes semantics: rebuilding a network
    /// gate by gate yields identical output functions.
    #[test]
    fn rebuild_preserves_semantics(seed: u64, gates in 3usize..20) {
        let net = random_net(seed, 4, gates);
        let mut copy = Network::new(net.num_inputs());
        let mut map = vec![stp_network::Sig::FALSE; net.num_signals()];
        for i in 0..net.num_inputs() {
            map[1 + i] = copy.input(i);
        }
        for idx in (1 + net.num_inputs())..net.num_signals() {
            let gate = net.gate(idx);
            map[idx] = copy
                .add_gate(map[gate.fanin[0]], map[gate.fanin[1]], gate.tt2)
                .unwrap();
        }
        for out in net.outputs() {
            let s = map[out.index()];
            copy.add_output(if out.is_negated() { s.not() } else { s });
        }
        prop_assert_eq!(
            copy.simulate_outputs().unwrap(),
            net.simulate_outputs().unwrap()
        );
        prop_assert!(copy.gates().len() <= net.gates().len());
    }

    /// Every enumerated cut's local function agrees with global
    /// simulation on every minterm.
    #[test]
    fn cut_functions_sound(seed: u64, gates in 3usize..15) {
        let net = random_net(seed, 4, gates);
        let cuts = enumerate_cuts(&net, 4, 6);
        let global = net.simulate().unwrap();
        for s in 0..net.num_signals() {
            if !net.is_gate(s) {
                continue;
            }
            for cut in &cuts.cuts[s] {
                let local = cut_function(&net, s, cut).unwrap();
                for m in 0..16usize {
                    let leaves: Vec<bool> = cut.leaves.iter().map(|&l| global[l].bit(m)).collect();
                    prop_assert_eq!(local.eval(&leaves), global[s].bit(m));
                }
            }
        }
    }

    /// Rewriting preserves every output function and never increases
    /// the live gate count.
    #[test]
    fn rewriting_is_safe(seed: u64, gates in 4usize..16) {
        let net = random_net(seed, 4, gates);
        let before = net.simulate_outputs().unwrap();
        let cache = SynthesisCache::new();
        let result = rewrite(&net, &RewriteConfig::default(), &cache).unwrap();
        prop_assert_eq!(result.network.simulate_outputs().unwrap(), before);
        prop_assert!(result.gates_after <= result.gates_before);
    }
}
