//! `stp-faultsim`: compile-time-free failpoint injection.
//!
//! Fault-tolerance claims are only as good as the faults you can
//! actually produce. This crate lets the synthesis pipeline seed named
//! *failpoints* — `fail_point!("store.save.pre_rename")` — at the exact
//! code locations where a crash, an error return, or a stall would be
//! most damaging, and then drive them from tests or from the
//! environment without touching production behaviour:
//!
//! * **Zero cost when off.** The [`fail_point!`] macros expand to
//!   *nothing* unless the defining crate's `enabled` cargo feature is
//!   on (consumer crates forward it as their own `faultsim` feature).
//!   No branch, no atomic, no string — release binaries are unchanged.
//! * **Deterministic triggers.** A spec can fire on every hit
//!   (`panic`) or exactly on the *n*-th hit (`3:panic`), and call sites
//!   may supply an explicit hit index (e.g. a shape index) so the
//!   trigger is deterministic even under work-stealing parallelism.
//! * **Two control surfaces.** Programmatic ([`set`] / [`remove`] /
//!   [`clear_all`]) for tests, and the `STP_FAILPOINTS` environment
//!   variable (`name=spec;name2=spec2`) for whole-binary runs.
//! * **Observable.** Every triggered action bumps the global telemetry
//!   counter `faultsim.hits`; per-point evaluation and trip tallies are
//!   readable via [`evaluations`] and [`trips`].
//!
//! # Spec grammar
//!
//! ```text
//! spec    := [nth ":"] action
//! action  := "panic" | "abort" | "err" | "return" | "off" | "sleep:" millis
//! nth     := 1-based decimal hit index (fires once, then disarms)
//! ```
//!
//! `err` and `return` both *divert*: a `fail_point!(name, err = expr)`
//! call site early-returns `expr`. `panic` unwinds with a message
//! naming the point; `abort` kills the whole process on the spot (a
//! true kill window — no unwinding, no destructors, no flushes);
//! `sleep:ms` stalls the hit and continues; `off` disarms without
//! removing the point.
//!
//! # Example
//!
//! ```
//! use stp_faultsim as fp;
//! let _serial = fp::test_guard(); // failpoints are process-global
//! fp::clear_all();
//! fp::set("demo.point", "2:err").unwrap();
//! assert!(!fp::eval("demo.point", None)); // hit 1: armed for hit 2
//! assert!(fp::eval("demo.point", None)); // hit 2: diverts…
//! assert!(!fp::eval("demo.point", None)); // …then disarms
//! assert_eq!(fp::trips("demo.point"), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What a triggered failpoint does at the instrumented site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Unwind with a panic naming the failpoint — the stand-in for a
    /// crashed worker or a killed process (tests pair it with
    /// `catch_unwind`).
    Panic,
    /// Kill the process immediately via [`std::process::abort`] — the
    /// honest simulation of `kill -9` or a power cut. Unlike
    /// [`Action::Panic`] nothing unwinds: no destructors run, no
    /// buffers flush, no `catch_unwind` can intercept it. Crash-window
    /// tests arm this in a *child* process and assert on what the
    /// survivor finds on disk.
    Abort,
    /// Divert: `fail_point!(name, err = expr)` sites early-return their
    /// `expr`. Plain `fail_point!(name)` sites just count the trip.
    Err,
    /// Synonym of [`Action::Err`] (the spec grammar accepts both).
    Return,
    /// Stall the hit for the given number of milliseconds, then
    /// continue normally — for exercising timeout and contention paths.
    Sleep(u64),
    /// Armed but inert: evaluations are counted, nothing triggers.
    Off,
}

/// A malformed failpoint spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The spec that failed to parse.
    pub spec: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad failpoint spec `{}`: {}", self.spec, self.message)
    }
}

impl Error for SpecError {}

/// An armed trigger: fire on every hit (`nth: None`) or exactly on the
/// `nth` hit (1-based, one-shot: the trigger disarms after firing).
#[derive(Debug, Clone, Copy)]
struct Trigger {
    nth: Option<u64>,
    action: Action,
}

/// One named failpoint: its (optional) trigger plus lifetime tallies.
/// Points are leaked into the registry so evaluation never races a
/// removal; tallies survive `clear_all` on purpose (tests read them
/// after disarming).
#[derive(Debug, Default)]
struct Point {
    trigger: Mutex<Option<Trigger>>,
    evals: AtomicU64,
    trips: AtomicU64,
}

struct Registry {
    points: Mutex<HashMap<String, &'static Point>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let reg = Registry { points: Mutex::new(HashMap::new()) };
        if let Ok(env) = std::env::var("STP_FAILPOINTS") {
            if let Err(e) = apply_env(&reg, &env) {
                // A typo in the env var must be loud, not silent: the
                // whole point of the variable is injecting faults.
                stp_telemetry::error!("STP_FAILPOINTS ignored: {e}");
            }
        }
        reg
    })
}

fn point(name: &str) -> &'static Point {
    let mut points = registry().points.lock().unwrap_or_else(|e| e.into_inner());
    points.entry(name.to_string()).or_insert_with(|| Box::leak(Box::default()))
}

/// Parses `STP_FAILPOINTS`-style `name=spec[;name=spec…]` into `reg`.
fn apply_env(reg: &Registry, env: &str) -> Result<(), SpecError> {
    for clause in env.split(';').map(str::trim).filter(|c| !c.is_empty()) {
        let Some((name, spec)) = clause.split_once('=') else {
            return Err(SpecError {
                spec: clause.to_string(),
                message: "expected `name=spec`".to_string(),
            });
        };
        let trigger = parse_spec(spec.trim())?;
        let mut points = reg.points.lock().unwrap_or_else(|e| e.into_inner());
        let p = points.entry(name.trim().to_string()).or_insert_with(|| Box::leak(Box::default()));
        *p.trigger.lock().unwrap_or_else(|e| e.into_inner()) = Some(trigger);
    }
    Ok(())
}

fn parse_spec(spec: &str) -> Result<Trigger, SpecError> {
    let bad = |message: &str| SpecError { spec: spec.to_string(), message: message.to_string() };
    // An all-digit prefix before the first `:` is the hit index; this
    // cannot collide with `sleep:ms` because `sleep` is not numeric.
    let (nth, action) = match spec.split_once(':') {
        Some((pre, rest)) if !pre.is_empty() && pre.bytes().all(|b| b.is_ascii_digit()) => {
            let n: u64 = pre.parse().map_err(|_| bad("hit index out of range"))?;
            if n == 0 {
                return Err(bad("hit index is 1-based; `0:` can never fire"));
            }
            (Some(n), rest)
        }
        _ => (None, spec),
    };
    let action = match action {
        "panic" => Action::Panic,
        "abort" => Action::Abort,
        "err" => Action::Err,
        "return" => Action::Return,
        "off" => Action::Off,
        other => match other.strip_prefix("sleep:") {
            Some(ms) => Action::Sleep(ms.parse().map_err(|_| bad("bad sleep milliseconds"))?),
            None => return Err(bad("expected panic|abort|err|return|off|sleep:<ms>")),
        },
    };
    Ok(Trigger { nth, action })
}

/// Arms the failpoint `name` with `spec` (see the crate docs for the
/// grammar). Replaces any existing trigger.
///
/// # Errors
///
/// [`SpecError`] when the spec does not parse.
pub fn set(name: &str, spec: &str) -> Result<(), SpecError> {
    let trigger = parse_spec(spec)?;
    *point(name).trigger.lock().unwrap_or_else(|e| e.into_inner()) = Some(trigger);
    Ok(())
}

/// Disarms the failpoint `name` (its tallies are kept).
pub fn remove(name: &str) {
    let points = registry().points.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(p) = points.get(name) {
        *p.trigger.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Disarms every failpoint. Call at the start of each fault-injection
/// test (under [`test_guard`]) so triggers never leak across tests.
pub fn clear_all() {
    let points = registry().points.lock().unwrap_or_else(|e| e.into_inner());
    for p in points.values() {
        *p.trigger.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Times the failpoint `name` was evaluated (triggered or not).
pub fn evaluations(name: &str) -> u64 {
    point(name).evals.load(Ordering::Relaxed)
}

/// Times the failpoint `name` actually triggered an action.
pub fn trips(name: &str) -> u64 {
    point(name).trips.load(Ordering::Relaxed)
}

/// Serializes fault-injection tests: failpoints are process-global, so
/// concurrent tests arming different triggers would interfere. The
/// guard is panic-tolerant (a poisoned mutex is taken over, since
/// panicking *is* what fault tests do).
pub fn test_guard() -> MutexGuard<'static, ()> {
    static TEST_MUTEX: Mutex<()> = Mutex::new(());
    TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner())
}

/// Evaluates the failpoint `name`: the engine behind [`fail_point!`].
///
/// `explicit_hit` supplies a caller-chosen 1-based hit index (so
/// `N:`-triggers stay deterministic under parallelism); `None` uses the
/// point's own evaluation counter. Returns `true` when the armed action
/// asks the call site to **divert** (an `err`/`return` trigger);
/// `panic` unwinds instead of returning and `sleep` stalls then returns
/// `false`.
pub fn eval(name: &str, explicit_hit: Option<u64>) -> bool {
    let p = point(name);
    let seq = p.evals.fetch_add(1, Ordering::Relaxed) + 1;
    let hit = explicit_hit.unwrap_or(seq);
    let action = {
        let mut trigger = p.trigger.lock().unwrap_or_else(|e| e.into_inner());
        match *trigger {
            None => return false,
            Some(Trigger { nth: Some(n), .. }) if n != hit => return false,
            Some(Trigger { nth: Some(_), action }) => {
                // One-shot: an exact-hit trigger disarms after firing.
                *trigger = None;
                action
            }
            Some(Trigger { nth: None, action }) => action,
        }
    };
    if action == Action::Off {
        return false;
    }
    p.trips.fetch_add(1, Ordering::Relaxed);
    stp_telemetry::counter!("faultsim.hits").inc();
    stp_telemetry::warn!("failpoint `{name}` triggered ({action:?}, hit {hit})");
    match action {
        Action::Panic => panic!("failpoint `{name}` triggered (hit {hit})"),
        Action::Abort => std::process::abort(),
        Action::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            false
        }
        Action::Err | Action::Return => true,
        Action::Off => unreachable!("handled above"),
    }
}

/// Declares a failpoint. With the `enabled` feature off this expands to
/// nothing; with it on, the point is evaluated against the registry.
///
/// Forms:
///
/// * `fail_point!("name")` — count the hit; `panic`/`sleep` triggers
///   act, divert triggers merely count a trip.
/// * `fail_point!("name", hit = expr)` — like the above with an
///   explicit 1-based hit index (deterministic under parallelism).
/// * `fail_point!("name", err = expr)` — a divert trigger makes the
///   enclosing function `return expr;`.
/// * `fail_point!("name", hit = expr, err = expr)` — both.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        let _ = $crate::eval($name, ::core::option::Option::None);
    };
    ($name:expr, hit = $hit:expr) => {
        let _ = $crate::eval($name, ::core::option::Option::Some($hit));
    };
    ($name:expr, err = $ret:expr) => {
        if $crate::eval($name, ::core::option::Option::None) {
            return $ret;
        }
    };
    ($name:expr, hit = $hit:expr, err = $ret:expr) => {
        if $crate::eval($name, ::core::option::Option::Some($hit)) {
            return $ret;
        }
    };
}

/// Declares a failpoint. With the `enabled` feature off this expands to
/// nothing; with it on, the point is evaluated against the registry.
/// (See the feature-on docs for the accepted forms.)
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {};
    ($name:expr, hit = $hit:expr) => {};
    ($name:expr, err = $ret:expr) => {};
    ($name:expr, hit = $hit:expr, err = $ret:expr) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_parses() {
        assert!(matches!(
            parse_spec("panic").unwrap(),
            Trigger { nth: None, action: Action::Panic }
        ));
        assert!(matches!(parse_spec("err").unwrap(), Trigger { nth: None, action: Action::Err }));
        assert!(matches!(
            parse_spec("return").unwrap(),
            Trigger { nth: None, action: Action::Return }
        ));
        assert!(matches!(parse_spec("off").unwrap(), Trigger { nth: None, action: Action::Off }));
        assert!(matches!(
            parse_spec("abort").unwrap(),
            Trigger { nth: None, action: Action::Abort }
        ));
        assert!(matches!(
            parse_spec("4:abort").unwrap(),
            Trigger { nth: Some(4), action: Action::Abort }
        ));
        assert!(matches!(
            parse_spec("sleep:250").unwrap(),
            Trigger { nth: None, action: Action::Sleep(250) }
        ));
        assert!(matches!(
            parse_spec("3:panic").unwrap(),
            Trigger { nth: Some(3), action: Action::Panic }
        ));
        assert!(matches!(
            parse_spec("2:sleep:10").unwrap(),
            Trigger { nth: Some(2), action: Action::Sleep(10) }
        ));
    }

    #[test]
    fn bad_specs_are_rejected() {
        for spec in ["", "explode", "0:panic", "sleep:", "sleep:abc", "x:panic", ":panic"] {
            assert!(parse_spec(spec).is_err(), "spec `{spec}` should not parse");
        }
    }

    #[test]
    fn every_hit_trigger_fires_until_removed() {
        let _serial = test_guard();
        clear_all();
        set("t.every", "err").unwrap();
        assert!(eval("t.every", None));
        assert!(eval("t.every", None));
        remove("t.every");
        assert!(!eval("t.every", None));
        assert_eq!(trips("t.every"), 2);
    }

    #[test]
    fn nth_hit_trigger_is_one_shot() {
        let _serial = test_guard();
        clear_all();
        set("t.nth", "2:err").unwrap();
        assert!(!eval("t.nth", None), "hit 1 must not fire");
        assert!(eval("t.nth", None), "hit 2 must fire");
        assert!(!eval("t.nth", None), "trigger disarms after firing");
        assert_eq!(trips("t.nth"), 1);
        assert!(evaluations("t.nth") >= 3);
    }

    #[test]
    fn explicit_hit_index_overrides_the_internal_counter() {
        let _serial = test_guard();
        clear_all();
        set("t.explicit", "7:err").unwrap();
        assert!(!eval("t.explicit", Some(3)));
        assert!(eval("t.explicit", Some(7)));
        assert!(!eval("t.explicit", Some(7)), "one-shot even with explicit hits");
    }

    #[test]
    fn panic_action_unwinds_with_the_point_name() {
        let _serial = test_guard();
        clear_all();
        set("t.panic", "panic").unwrap();
        let err = std::panic::catch_unwind(|| eval("t.panic", None)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t.panic"), "panic message `{msg}` must name the point");
        clear_all();
    }

    #[test]
    fn sleep_action_stalls_then_continues() {
        let _serial = test_guard();
        clear_all();
        set("t.sleep", "sleep:30").unwrap();
        let start = std::time::Instant::now();
        assert!(!eval("t.sleep", None), "sleep continues normally");
        assert!(start.elapsed() >= Duration::from_millis(25));
        clear_all();
    }

    #[test]
    fn off_action_counts_evaluations_but_never_trips() {
        let _serial = test_guard();
        clear_all();
        set("t.off", "off").unwrap();
        let trips_before = trips("t.off");
        assert!(!eval("t.off", None));
        assert_eq!(trips("t.off"), trips_before);
    }

    #[test]
    fn env_grammar_arms_multiple_points() {
        let _serial = test_guard();
        clear_all();
        let reg = registry();
        apply_env(reg, "t.env.a=err; t.env.b=2:return").unwrap();
        assert!(eval("t.env.a", None));
        assert!(!eval("t.env.b", Some(1)));
        assert!(eval("t.env.b", Some(2)));
        assert!(apply_env(reg, "missing-equals").is_err());
        assert!(apply_env(reg, "t.env.c=bogus").is_err());
        clear_all();
    }
}
