//! Deterministic load generation against a running `stpd`.
//!
//! The generator drives an *open-loop* arrival process: each connection
//! sends its requests on a fixed schedule derived from the configured
//! rate, regardless of whether earlier responses have arrived, and
//! drains responses opportunistically between sends. That models real
//! clients (which do not politely wait for the server) and is what
//! makes admission control observable — a closed-loop client can never
//! overload anything.
//!
//! The request mix is seeded: a multiplicative LCG picks each request's
//! truth table from a deduplicated pool, so two runs with one seed send
//! byte-identical request streams and the server-side counters
//! (`serve.accepted`, `store.misses`, ...) are reproducible. Malformed
//! and oversized frames are probed on dedicated connections *after* the
//! timed burst, keeping the latency rows clean.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stp_telemetry::Json;

/// Parameters for one loadgen run (one row of the benchmark doc).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests sent per connection.
    pub requests_per_conn: usize,
    /// Open-loop send rate per connection, requests/second.
    pub rate_per_conn: f64,
    /// LCG seed for the request mix.
    pub seed: u64,
    /// Arity of the generated truth tables.
    pub arity: usize,
    /// Size of the deduplicated table pool.
    pub classes: usize,
    /// Per-request `timeout_ms` sent to the server.
    pub timeout_ms: u64,
    /// Malformed-frame probes sent after the burst (dedicated
    /// connections; the server answers and closes).
    pub malformed_probes: usize,
    /// Oversized-frame probes sent after the burst.
    pub oversized_probes: usize,
    /// Bytes of newline-free junk per oversized probe (must exceed the
    /// server's frame cap to trip it).
    pub oversized_bytes: usize,
    /// How long the final drain waits for outstanding responses before
    /// declaring them lost.
    pub response_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            connections: 1,
            requests_per_conn: 60,
            rate_per_conn: 200.0,
            seed: 42,
            arity: 3,
            classes: 24,
            timeout_ms: 30_000,
            malformed_probes: 6,
            oversized_probes: 3,
            oversized_bytes: 8192,
            response_timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregated outcome of one row (all connections of one run).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Work requests sent.
    pub sent: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `timeout` responses.
    pub timeout: u64,
    /// `overloaded` responses.
    pub overloaded: u64,
    /// `error` / `shutting_down` responses.
    pub error: u64,
    /// Requests with no response inside the drain window.
    pub lost: u64,
    /// `coalesced: true` ok-responses (same-class requests that shared
    /// one solver run).
    pub coalesced: u64,
    /// Malformed probes sent / acknowledged with a structured response.
    pub malformed_sent: u64,
    /// Structured `malformed` responses received for those probes.
    pub malformed_acked: u64,
    /// Oversized probes sent.
    pub oversized_sent: u64,
    /// Structured responses received for oversized probes.
    pub oversized_acked: u64,
    /// Per-request latency, milliseconds, for answered work requests.
    pub latencies_ms: Vec<f64>,
    /// Wall time of the timed burst (send start to drain end), seconds.
    pub wall_s: f64,
}

impl RunStats {
    fn absorb(&mut self, other: RunStats) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.timeout += other.timeout;
        self.overloaded += other.overloaded;
        self.error += other.error;
        self.lost += other.lost;
        self.coalesced += other.coalesced;
        self.malformed_sent += other.malformed_sent;
        self.malformed_acked += other.malformed_acked;
        self.oversized_sent += other.oversized_sent;
        self.oversized_acked += other.oversized_acked;
        self.latencies_ms.extend(other.latencies_ms);
        self.wall_s = self.wall_s.max(other.wall_s);
    }

    /// The `p`-th latency percentile in milliseconds (`p` in 0..=100),
    /// 0 when nothing was measured.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Answered work requests per second of burst wall time.
    pub fn throughput_rps(&self) -> f64 {
        let answered = (self.ok + self.timeout + self.overloaded + self.error) as f64;
        if self.wall_s > 0.0 {
            answered / self.wall_s
        } else {
            0.0
        }
    }
}

/// The multiplicative LCG used for the request mix (MMIX constants).
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // The high bits of an LCG are the good ones.
        self.0 >> 11
    }
}

/// Builds the deduplicated table pool: `classes` distinct hex tables of
/// the given arity, deterministically from `seed`.
pub fn generate_tables(seed: u64, arity: usize, classes: usize) -> Vec<String> {
    let digits = ((1usize << arity) / 4).max(1);
    let mut lcg = Lcg::new(seed);
    let mut pool: Vec<String> = Vec::with_capacity(classes);
    while pool.len() < classes {
        let mut hex = String::with_capacity(digits);
        for _ in 0..digits {
            let nibble = (lcg.next_u64() & 0xf) as u32;
            hex.push(char::from_digit(nibble, 16).expect("nibble < 16"));
        }
        if !pool.contains(&hex) {
            pool.push(hex);
        }
    }
    pool
}

/// Reads whatever complete lines are available without blocking past
/// the stream's read timeout; appends them to `lines`.
fn drain_available(stream: &mut TcpStream, buf: &mut Vec<u8>, lines: &mut Vec<String>) -> bool {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
        // Keep reading only while data keeps arriving instantly.
        if !buf.contains(&b'\n') {
            continue;
        }
        break;
    }
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = buf.drain(..=pos).collect();
        lines.push(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
    }
    true
}

/// Classifies one response line against the oldest pending request.
fn classify(line: &str, pending: &mut VecDeque<(String, Instant)>, stats: &mut RunStats) {
    let Ok(resp) = Json::parse(line) else {
        stats.error += 1;
        return;
    };
    let id = resp.get("id").and_then(Json::as_str).unwrap_or("");
    // The server answers one connection's frames in order; tolerate a
    // response for a later id by dropping the skipped ones as lost.
    let mut matched = None;
    while let Some((front_id, sent_at)) = pending.pop_front() {
        if front_id == id {
            matched = Some(sent_at);
            break;
        }
        stats.lost += 1;
    }
    let Some(sent_at) = matched else {
        return;
    };
    let latency_ms = sent_at.elapsed().as_secs_f64() * 1e3;
    match resp.get("status").and_then(Json::as_str) {
        Some("ok") => {
            stats.ok += 1;
            stats.latencies_ms.push(latency_ms);
            if resp.get("coalesced") == Some(&Json::Bool(true)) {
                stats.coalesced += 1;
            }
        }
        Some("timeout") => {
            stats.timeout += 1;
            stats.latencies_ms.push(latency_ms);
        }
        Some("overloaded") => {
            stats.overloaded += 1;
            stats.latencies_ms.push(latency_ms);
        }
        _ => stats.error += 1,
    }
}

/// One connection's open-loop worker.
fn run_connection(
    config: &LoadgenConfig,
    conn_index: usize,
    pool: &[String],
) -> std::io::Result<RunStats> {
    let mut stats = RunStats::default();
    let mut stream = TcpStream::connect(&config.addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(5)))?;
    let mut lcg = Lcg::new(config.seed ^ (conn_index as u64).wrapping_mul(0xA5A5_A5A5));
    let mut pending: VecDeque<(String, Instant)> = VecDeque::new();
    let mut buf = Vec::new();
    let mut lines = Vec::new();
    let interval = Duration::from_secs_f64(1.0 / config.rate_per_conn.max(1e-6));
    let start = Instant::now();
    for i in 0..config.requests_per_conn {
        let due = start + interval * (i as u32);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let table = &pool[(lcg.next_u64() as usize) % pool.len()];
        let id = format!("c{conn_index}-{i}");
        let frame = format!(
            "{{\"op\":\"synth\",\"id\":\"{id}\",\"tables\":[\"{table}\"],\"timeout_ms\":{}}}\n",
            config.timeout_ms
        );
        stream.write_all(frame.as_bytes())?;
        stats.sent += 1;
        pending.push_back((id, Instant::now()));
        lines.clear();
        let alive = drain_available(&mut stream, &mut buf, &mut lines);
        for line in &lines {
            classify(line, &mut pending, &mut stats);
        }
        if !alive {
            break;
        }
    }
    // Final drain: block (in poll-sized steps) until everything pending
    // is answered or the drain window closes.
    let drain_deadline = Instant::now() + config.response_timeout;
    while !pending.is_empty() && Instant::now() < drain_deadline {
        lines.clear();
        let alive = drain_available(&mut stream, &mut buf, &mut lines);
        for line in &lines {
            classify(line, &mut pending, &mut stats);
        }
        if !alive {
            break;
        }
    }
    stats.lost += pending.len() as u64;
    stats.wall_s = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Sends one junk frame on a dedicated connection and waits briefly for
/// the structured `malformed` acknowledgment.
fn probe(addr: &str, payload: &[u8], window: Duration) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    if stream.write_all(payload).is_err() {
        return false;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let deadline = Instant::now() + window;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.contains(&b'\n') {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let Some(line) = text.lines().next() else {
        return false;
    };
    matches!(
        Json::parse(line).ok().as_ref().and_then(|r| r.get("status")).and_then(Json::as_str),
        Some("malformed")
    )
}

/// Runs one row: `connections` open-loop workers, then the malformed
/// and oversized probes.
///
/// # Errors
///
/// `io::Error` when the server cannot be reached at all; per-request
/// failures are folded into the stats instead.
pub fn run(config: &LoadgenConfig) -> std::io::Result<RunStats> {
    let pool = generate_tables(config.seed, config.arity, config.classes);
    let mut total = RunStats::default();
    let mut workers = Vec::new();
    for conn in 0..config.connections {
        let config = config.clone();
        let pool = pool.clone();
        workers.push(std::thread::spawn(move || run_connection(&config, conn, &pool)));
    }
    let mut first_err = None;
    for worker in workers {
        match worker.join() {
            Ok(Ok(stats)) => total.absorb(stats),
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err =
                    first_err.or_else(|| Some(std::io::Error::other("loadgen worker panicked")));
            }
        }
    }
    if total.sent == 0 {
        if let Some(e) = first_err {
            return Err(e);
        }
    }
    let probe_window = Duration::from_secs(5);
    for _ in 0..config.malformed_probes {
        total.malformed_sent += 1;
        if probe(&config.addr, b"this is not json\n", probe_window) {
            total.malformed_acked += 1;
        }
    }
    let junk = vec![b'x'; config.oversized_bytes];
    for _ in 0..config.oversized_probes {
        total.oversized_sent += 1;
        if probe(&config.addr, &junk, probe_window) {
            total.oversized_acked += 1;
        }
    }
    Ok(total)
}

/// Sends one raw request line on a fresh connection and returns the
/// parsed response — the building block for control traffic (`stats`,
/// `shutdown`) from benchmarks and tests.
///
/// # Errors
///
/// `io::Error` on connect/write failure, a closed socket, an
/// unparsable response, or no response within `window`.
pub fn request_once(addr: &str, line: &str, window: Duration) -> std::io::Result<Json> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let deadline = Instant::now() + window;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.contains(&b'\n') {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text
        .lines()
        .next()
        .ok_or_else(|| std::io::Error::other("no response within the window"))?;
    Json::parse(line).map_err(|e| std::io::Error::other(format!("bad response: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pool_is_deterministic_and_distinct() {
        let a = generate_tables(42, 3, 24);
        let b = generate_tables(42, 3, 24);
        assert_eq!(a, b);
        assert_eq!(a.len(), 24);
        for (i, x) in a.iter().enumerate() {
            assert_eq!(x.len(), 2, "arity-3 tables are 2 hex digits");
            assert!(!a[..i].contains(x), "pool entries are distinct");
        }
        let c = generate_tables(43, 3, 24);
        assert_ne!(a, c, "different seeds give different pools");
    }

    #[test]
    fn percentiles_are_order_free() {
        let stats = RunStats { latencies_ms: vec![5.0, 1.0, 3.0, 2.0, 4.0], ..RunStats::default() };
        assert_eq!(stats.percentile_ms(0.0), 1.0);
        assert_eq!(stats.percentile_ms(50.0), 3.0);
        assert_eq!(stats.percentile_ms(100.0), 5.0);
        assert_eq!(RunStats::default().percentile_ms(50.0), 0.0);
    }
}
