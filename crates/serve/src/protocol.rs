//! The `stpd` wire protocol: line-delimited JSON over TCP.
//!
//! One request per line, one response line per request, in order. The
//! codec is built on [`stp_telemetry::Json`] (the repo's hand-rolled
//! parser) so the daemon stays registry-dependency-free.
//!
//! # Requests
//!
//! ```text
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! {"op":"synth","id":"r1","tables":["e8"],"timeout_ms":2000}
//! {"op":"synth","id":"r2","tables":["e8","96"],"vars":3}
//! {"op":"rewrite","id":"r3","blif":".model m\n...","timeout_ms":5000}
//! ```
//!
//! `id` (string or unsigned integer, echoed verbatim) and `timeout_ms`
//! are optional everywhere. `tables` are hex truth tables; the arity is
//! inferred from the digit count (as in `stpsynth`) unless `vars` is
//! given, and all tables of one request must agree on it. Several
//! tables mean one shared multi-output synthesis.
//!
//! # Responses
//!
//! Every response carries `"status"`; the daemon never answers a parsed
//! frame with a closed socket:
//!
//! * `ok` — op-specific payload (`gates`, `chain`, `report`, ...).
//! * `timeout` — the per-request deadline expired (`budget_ms`).
//! * `overloaded` — admission control shed the request
//!   (`retry_after_ms`).
//! * `shutting_down` — the daemon is draining; retry elsewhere/later.
//! * `malformed` — unparsable frame or bad fields (`message`); frame
//!   -level violations also close the connection.
//! * `error` — the engine failed for a non-budget reason (`message`).

use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stp_telemetry::Json;
use stp_tt::TruthTable;

/// Protocol cap on request arity: exhaustive NPN canonicalization is
/// `n! · 2^{n+1}` and intended for small `n`; a daemon must bound what
/// a client can make it chew on.
pub const MAX_REQUEST_VARS: usize = 8;

/// A parsed request frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
    },
    /// Telemetry snapshot: non-zero counters plus the Prometheus
    /// exposition text.
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
    },
    /// Graceful shutdown: stop accepting, drain in-flight work, save
    /// the store. The ISSUE-sanctioned no-signal-crate stand-in for
    /// SIGTERM (the daemon also drains on ctrl-c via the same flag
    /// when the host wires it up).
    Shutdown {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
    },
    /// Exact synthesis of one function, or one shared multi-output
    /// chain when several tables are given.
    Synth {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
        /// The specifications, all of one arity.
        tables: Vec<TruthTable>,
        /// Per-request deadline override (else the server default).
        timeout_ms: Option<u64>,
    },
    /// Cut rewriting of an inline BLIF network against the shared
    /// store.
    Rewrite {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
        /// The network, in the same BLIF dialect `stprewrite` reads.
        blif: String,
        /// Per-request deadline override (else the server default).
        timeout_ms: Option<u64>,
    },
}

impl Request {
    /// The request's correlation id, if any.
    pub fn id(&self) -> Option<&str> {
        match self {
            Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id }
            | Request::Synth { id, .. }
            | Request::Rewrite { id, .. } => id.as_deref(),
        }
    }
}

/// Infers the arity of a bare hex table the way `stpsynth` does: `d`
/// digits hold `4·d` bits, which must be a power of two.
fn infer_num_vars(hex: &str) -> Result<usize, String> {
    let bits = hex.len().saturating_mul(4);
    if hex.is_empty() || !bits.is_power_of_two() {
        return Err(format!(
            "table `{hex}` has {} hex digit(s); cannot infer its arity (pass \"vars\")",
            hex.len()
        ));
    }
    Ok(bits.trailing_zeros() as usize)
}

/// Parses one request line. The error string is what lands in the
/// structured `malformed` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Json::parse(line).map_err(|e| e.to_string())?;
    let Some(_) = value.as_obj() else {
        return Err("request must be a JSON object".to_string());
    };
    let id = match value.get("id") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::UInt(v)) => Some(v.to_string()),
        Some(_) => return Err("\"id\" must be a string or unsigned integer".to_string()),
    };
    let Some(op) = value.get("op").and_then(Json::as_str) else {
        return Err("missing required string field \"op\"".to_string());
    };
    let timeout_ms = match value.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_u64() {
            Some(ms) if ms > 0 => Some(ms),
            _ => return Err("\"timeout_ms\" must be a positive integer".to_string()),
        },
    };
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "synth" => {
            let Some(raw_tables) = value.get("tables").and_then(Json::as_arr) else {
                return Err("\"synth\" requires an array field \"tables\"".to_string());
            };
            if raw_tables.is_empty() {
                return Err("\"tables\" must not be empty".to_string());
            }
            let vars = match value.get("vars") {
                None | Some(Json::Null) => None,
                Some(v) => match v.as_u64() {
                    Some(n) if n >= 1 => Some(n as usize),
                    _ => return Err("\"vars\" must be a positive integer".to_string()),
                },
            };
            let mut tables = Vec::with_capacity(raw_tables.len());
            let mut arity: Option<usize> = None;
            for raw in raw_tables {
                let Some(hex) = raw.as_str() else {
                    return Err("\"tables\" entries must be hex strings".to_string());
                };
                let n = match vars {
                    Some(n) => n,
                    None => infer_num_vars(hex)?,
                };
                if n > MAX_REQUEST_VARS {
                    return Err(format!(
                        "table `{hex}` has arity {n}; this daemon caps requests at \
                         {MAX_REQUEST_VARS} variables"
                    ));
                }
                match arity {
                    None => arity = Some(n),
                    Some(prev) if prev != n => {
                        return Err(format!(
                            "tables disagree on arity ({prev} vs {n}); multi-output requests \
                             share one input set"
                        ));
                    }
                    Some(_) => {}
                }
                let table =
                    TruthTable::from_hex(n, hex).map_err(|e| format!("bad table `{hex}`: {e}"))?;
                tables.push(table);
            }
            Ok(Request::Synth { id, tables, timeout_ms })
        }
        "rewrite" => {
            let Some(blif) = value.get("blif").and_then(Json::as_str) else {
                return Err("\"rewrite\" requires a string field \"blif\"".to_string());
            };
            if blif.trim().is_empty() {
                return Err("\"blif\" must not be empty".to_string());
            }
            Ok(Request::Rewrite { id, blif: blif.to_string(), timeout_ms })
        }
        other => Err(format!("unknown op `{other}` (expected ping|stats|shutdown|synth|rewrite)")),
    }
}

/// Starts a response object: `status` first, then the echoed `id`.
fn base(status: &str, id: Option<&str>) -> Vec<(String, Json)> {
    let mut fields = vec![("status".to_string(), Json::Str(status.to_string()))];
    if let Some(id) = id {
        fields.push(("id".to_string(), Json::Str(id.to_string())));
    }
    fields
}

/// `ok` response for `ping`.
pub fn resp_pong(id: Option<&str>) -> Json {
    let mut fields = base("ok", id);
    fields.push(("op".to_string(), Json::Str("ping".to_string())));
    Json::Obj(fields)
}

/// `ok` acknowledgment for `shutdown` (sent before draining starts).
pub fn resp_shutdown_ack(id: Option<&str>) -> Json {
    let mut fields = base("ok", id);
    fields.push(("op".to_string(), Json::Str("shutdown".to_string())));
    Json::Obj(fields)
}

/// `ok` response for `stats`.
pub fn resp_stats(id: Option<&str>, counters: Json, prometheus: String) -> Json {
    let mut fields = base("ok", id);
    fields.push(("op".to_string(), Json::Str("stats".to_string())));
    fields.push(("counters".to_string(), counters));
    fields.push(("prometheus".to_string(), Json::Str(prometheus)));
    Json::Obj(fields)
}

/// `ok` response for `synth`.
#[allow(clippy::too_many_arguments)]
pub fn resp_synth(
    id: Option<&str>,
    gates: usize,
    outputs: usize,
    solutions: usize,
    chain_text: String,
    wall_ms: f64,
    coalesced: bool,
    report: Json,
) -> Json {
    let mut fields = base("ok", id);
    fields.push(("op".to_string(), Json::Str("synth".to_string())));
    fields.push(("gates".to_string(), Json::UInt(gates as u64)));
    fields.push(("outputs".to_string(), Json::UInt(outputs as u64)));
    fields.push(("solutions".to_string(), Json::UInt(solutions as u64)));
    fields.push(("chain".to_string(), Json::Str(chain_text)));
    fields.push(("wall_ms".to_string(), Json::Num(wall_ms)));
    fields.push(("coalesced".to_string(), Json::Bool(coalesced)));
    fields.push(("report".to_string(), report));
    Json::Obj(fields)
}

/// `ok` response for `rewrite`.
pub fn resp_rewrite(
    id: Option<&str>,
    gates_before: usize,
    gates_after: usize,
    passes: usize,
    blif: String,
    wall_ms: f64,
    report: Json,
) -> Json {
    let mut fields = base("ok", id);
    fields.push(("op".to_string(), Json::Str("rewrite".to_string())));
    fields.push(("gates_before".to_string(), Json::UInt(gates_before as u64)));
    fields.push(("gates_after".to_string(), Json::UInt(gates_after as u64)));
    fields.push(("passes".to_string(), Json::UInt(passes as u64)));
    fields.push(("blif".to_string(), Json::Str(blif)));
    fields.push(("wall_ms".to_string(), Json::Num(wall_ms)));
    fields.push(("report".to_string(), report));
    Json::Obj(fields)
}

/// Structured deadline expiry — the connection stays open.
pub fn resp_timeout(id: Option<&str>, budget_ms: u64) -> Json {
    let mut fields = base("timeout", id);
    fields.push(("budget_ms".to_string(), Json::UInt(budget_ms)));
    Json::Obj(fields)
}

/// Structured admission rejection — the connection stays open.
pub fn resp_overloaded(id: Option<&str>, retry_after_ms: u64) -> Json {
    let mut fields = base("overloaded", id);
    fields.push(("retry_after_ms".to_string(), Json::UInt(retry_after_ms)));
    Json::Obj(fields)
}

/// The daemon is draining: work requests are refused but answered.
pub fn resp_shutting_down(id: Option<&str>) -> Json {
    Json::Obj(base("shutting_down", id))
}

/// Structured parse/validation failure.
pub fn resp_malformed(id: Option<&str>, message: &str) -> Json {
    let mut fields = base("malformed", id);
    fields.push(("message".to_string(), Json::Str(message.to_string())));
    Json::Obj(fields)
}

/// Structured non-budget engine failure.
pub fn resp_error(id: Option<&str>, message: &str) -> Json {
    let mut fields = base("error", id);
    fields.push(("message".to_string(), Json::Str(message.to_string())));
    Json::Obj(fields)
}

/// Why [`FrameReader::next_frame`] stopped.
#[derive(Debug)]
pub enum Frame {
    /// One complete `\n`-terminated line (terminator stripped).
    Line(String),
    /// The peer closed its write half (any unterminated tail bytes are
    /// discarded — a frame without its newline was never committed).
    Eof,
    /// No bytes at all for the idle window: a parked connection, not a
    /// protocol violation.
    IdleTimeout,
    /// A frame started but its newline did not arrive within the frame
    /// window — the slow-loris guard.
    SlowLoris,
    /// The frame exceeded the byte cap before its newline arrived.
    TooLong {
        /// The configured cap that was exceeded.
        limit: usize,
    },
    /// The server's shutdown flag went up while the connection was
    /// between frames.
    ShuttingDown,
}

/// Incremental, deadline-aware reader of `\n`-delimited frames.
///
/// The underlying stream is switched to a short poll read-timeout so
/// every blocking read doubles as a checkpoint: idle windows, per-frame
/// deadlines (slow-loris), byte caps, and the server's shutdown flag
/// are all enforced between polls without extra threads.
pub struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame: usize,
    idle_timeout: Duration,
    frame_timeout: Duration,
}

/// Poll granularity for reads (and thus for shutdown responsiveness).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

impl FrameReader {
    /// Wraps `stream`; fails if the poll read-timeout cannot be set.
    pub fn new(
        stream: TcpStream,
        max_frame: usize,
        idle_timeout: Duration,
        frame_timeout: Duration,
    ) -> std::io::Result<FrameReader> {
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        Ok(FrameReader { stream, buf: Vec::new(), max_frame, idle_timeout, frame_timeout })
    }

    /// Reads until one of the [`Frame`] conditions holds. `shutting_down`
    /// is polled between reads (pipelined complete frames are still
    /// delivered first, so a client that sent `shutdown` right after a
    /// request gets both answers).
    pub fn next_frame(&mut self, shutting_down: &dyn Fn() -> bool) -> std::io::Result<Frame> {
        let entered = Instant::now();
        let mut frame_started: Option<Instant> =
            if self.buf.is_empty() { None } else { Some(entered) };
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Frame::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > self.max_frame {
                return Ok(Frame::TooLong { limit: self.max_frame });
            }
            match frame_started {
                Some(started) => {
                    if started.elapsed() >= self.frame_timeout {
                        return Ok(Frame::SlowLoris);
                    }
                }
                None => {
                    if shutting_down() {
                        return Ok(Frame::ShuttingDown);
                    }
                    if entered.elapsed() >= self.idle_timeout {
                        return Ok(Frame::IdleTimeout);
                    }
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Frame::Eof),
                Ok(n) => {
                    if self.buf.is_empty() {
                        frame_started = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_garbage_with_a_message() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request("{}").unwrap_err().contains("op"));
        assert!(parse_request("{\"op\":\"fly\"}").unwrap_err().contains("unknown op"));
    }

    #[test]
    fn parse_synth_infers_and_checks_arity() {
        let req = parse_request("{\"op\":\"synth\",\"tables\":[\"e8\"]}").unwrap();
        let Request::Synth { tables, .. } = req else { panic!("expected synth") };
        assert_eq!(tables[0].num_vars(), 3);

        let err = parse_request("{\"op\":\"synth\",\"tables\":[\"e8\",\"8ff8\"]}").unwrap_err();
        assert!(err.contains("disagree"), "{err}");

        let err = parse_request("{\"op\":\"synth\",\"tables\":[]}").unwrap_err();
        assert!(err.contains("empty"), "{err}");

        let big = "f".repeat(128); // 512 bits = 9 vars
        let err =
            parse_request(&format!("{{\"op\":\"synth\",\"tables\":[\"{big}\"]}}")).unwrap_err();
        assert!(err.contains("caps requests"), "{err}");
    }

    #[test]
    fn parse_echoes_numeric_and_string_ids() {
        let req = parse_request("{\"op\":\"ping\",\"id\":7}").unwrap();
        assert_eq!(req.id(), Some("7"));
        let req = parse_request("{\"op\":\"ping\",\"id\":\"abc\"}").unwrap();
        assert_eq!(req.id(), Some("abc"));
    }

    #[test]
    fn parse_validates_timeout() {
        let req =
            parse_request("{\"op\":\"synth\",\"tables\":[\"e8\"],\"timeout_ms\":250}").unwrap();
        let Request::Synth { timeout_ms, .. } = req else { panic!("expected synth") };
        assert_eq!(timeout_ms, Some(250));
        assert!(parse_request("{\"op\":\"synth\",\"tables\":[\"e8\"],\"timeout_ms\":0}").is_err());
    }

    #[test]
    fn responses_always_carry_a_status() {
        for resp in [
            resp_pong(Some("x")),
            resp_timeout(None, 5),
            resp_overloaded(Some("y"), 100),
            resp_malformed(None, "boom"),
            resp_error(Some("z"), "bad"),
            resp_shutting_down(None),
        ] {
            assert!(resp.get("status").and_then(Json::as_str).is_some());
        }
        assert_eq!(resp_pong(Some("x")).get("id").and_then(Json::as_str), Some("x"));
    }
}
