//! `loadgen` — deterministic load generator for `stpd`.
//!
//! ```text
//! Usage: loadgen --addr <host:port> [options]
//!
//! Options:
//!   --addr <host:port>      the running stpd to drive (required)
//!   --connections <list>    comma-separated row sizes, e.g. 1,4,16
//!                           (default 1,4,16); each entry is one
//!                           measurement row
//!   --requests <n>          work requests per connection (default 60)
//!   --rate <rps>            open-loop send rate per connection,
//!                           requests/second (default 200)
//!   --seed <n>              LCG seed for the request mix (default 42)
//!   --arity <n>             truth-table arity, 2..=8 (default 3)
//!   --classes <n>           distinct tables in the pool (default 24)
//!   --timeout-ms <ms>       per-request deadline sent to the server
//!                           (default 30000)
//!   --malformed <n>         malformed-frame probes per row (default 6)
//!   --oversized <n>         oversized-frame probes per row (default 3)
//!   --oversized-bytes <n>   junk bytes per oversized probe (default 8192)
//!   --out <path>            write the JSON doc there instead of stdout
//! ```
//!
//! Emits one `stp-bench-serve v1` JSON document: one row per
//! connection count (sent/ok/timeout/overloaded/lost splits, latency
//! percentiles, throughput) plus the server's own counters from a
//! final `stats` request. With a fixed seed the request mix — and
//! therefore every admission/store counter on a 1-CPU, capacity-bound
//! server — is reproducible; `BENCH_serve.json` pins those fields.

use std::process::ExitCode;
use std::time::Duration;

use stp_serve::loadgen::{request_once, run, LoadgenConfig, RunStats};
use stp_telemetry::Json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen --addr <host:port> [--connections <list>] [--requests <n>] \
         [--rate <rps>] [--seed <n>] [--arity <n>] [--classes <n>] [--timeout-ms <ms>] \
         [--malformed <n>] [--oversized <n>] [--oversized-bytes <n>] [--out <path>]"
    );
    ExitCode::FAILURE
}

/// A malformed or missing flag value: report it and exit 2, so scripts
/// can tell usage errors from load-run failures (exit 1).
fn flag_error(message: String) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

/// Parses the value of a `--flag <value>` pair, failing loudly: a
/// missing or unparsable value is an error, never a silent fallback to
/// the default.
fn parse_flag_value<T: std::str::FromStr>(
    flag: &str,
    value: Option<&String>,
    expects: &str,
) -> Result<T, ExitCode> {
    let Some(raw) = value else {
        return Err(flag_error(format!("{flag} expects {expects}")));
    };
    raw.parse().map_err(|_| flag_error(format!("{flag} expects {expects}, got `{raw}`")))
}

/// One measurement row as a JSON object.
fn row_json(connections: usize, stats: &RunStats) -> Json {
    Json::obj(vec![
        ("connections", Json::UInt(connections as u64)),
        ("sent", Json::UInt(stats.sent)),
        ("ok", Json::UInt(stats.ok)),
        ("timeout", Json::UInt(stats.timeout)),
        ("overloaded", Json::UInt(stats.overloaded)),
        ("error", Json::UInt(stats.error)),
        ("lost", Json::UInt(stats.lost)),
        ("coalesced", Json::UInt(stats.coalesced)),
        ("malformed_sent", Json::UInt(stats.malformed_sent)),
        ("malformed_acked", Json::UInt(stats.malformed_acked)),
        ("oversized_sent", Json::UInt(stats.oversized_sent)),
        ("oversized_acked", Json::UInt(stats.oversized_acked)),
        ("wall_s", Json::Num(stats.wall_s)),
        ("throughput_rps", Json::Num(stats.throughput_rps())),
        ("p50_ms", Json::Num(stats.percentile_ms(50.0))),
        ("p99_ms", Json::Num(stats.percentile_ms(99.0))),
    ])
}

fn main() -> ExitCode {
    stp_telemetry::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut base = LoadgenConfig::default();
    let mut connections_list: Vec<usize> = vec![1, 4, 16];
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                let Some(value) = args.get(i + 1) else {
                    return flag_error("--addr expects <host:port>".to_string());
                };
                base.addr = value.clone();
                i += 1;
            }
            "--connections" => {
                let Some(value) = args.get(i + 1) else {
                    return flag_error(
                        "--connections expects a comma-separated list, e.g. 1,4,16".to_string(),
                    );
                };
                let mut list = Vec::new();
                for part in value.split(',') {
                    match part.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => list.push(n),
                        _ => {
                            return flag_error(format!(
                                "--connections expects positive integers, got `{part}` in `{value}`"
                            ));
                        }
                    }
                }
                if list.is_empty() {
                    return flag_error("--connections expects at least one entry".to_string());
                }
                connections_list = list;
                i += 1;
            }
            "--requests" => {
                base.requests_per_conn =
                    match parse_flag_value("--requests", args.get(i + 1), "a request count") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                if base.requests_per_conn == 0 {
                    return flag_error("--requests expects a count >= 1, got `0`".into());
                }
                i += 1;
            }
            "--rate" => {
                base.rate_per_conn =
                    match parse_flag_value("--rate", args.get(i + 1), "requests/second") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                if !(base.rate_per_conn.is_finite() && base.rate_per_conn > 0.0) {
                    return flag_error(format!(
                        "--rate expects a finite rate > 0, got `{}`",
                        base.rate_per_conn
                    ));
                }
                i += 1;
            }
            "--seed" => {
                base.seed = match parse_flag_value("--seed", args.get(i + 1), "an integer seed") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                i += 1;
            }
            "--arity" => {
                base.arity = match parse_flag_value("--arity", args.get(i + 1), "an arity (2..=8)")
                {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                if !(2..=8).contains(&base.arity) {
                    return flag_error(format!(
                        "--arity expects an arity in 2..=8, got `{}`",
                        base.arity
                    ));
                }
                i += 1;
            }
            "--classes" => {
                base.classes = match parse_flag_value("--classes", args.get(i + 1), "a pool size") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let universe = 1usize << (1usize << base.arity).min(20);
                if base.classes == 0 || base.classes > universe / 2 {
                    return flag_error(format!(
                        "--classes expects 1..={} for arity {}, got `{}`",
                        universe / 2,
                        base.arity,
                        base.classes
                    ));
                }
                i += 1;
            }
            "--timeout-ms" => {
                base.timeout_ms =
                    match parse_flag_value("--timeout-ms", args.get(i + 1), "milliseconds") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                if base.timeout_ms == 0 {
                    return flag_error("--timeout-ms expects milliseconds >= 1, got `0`".into());
                }
                i += 1;
            }
            "--malformed" => {
                base.malformed_probes =
                    match parse_flag_value("--malformed", args.get(i + 1), "a probe count") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                i += 1;
            }
            "--oversized" => {
                base.oversized_probes =
                    match parse_flag_value("--oversized", args.get(i + 1), "a probe count") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                i += 1;
            }
            "--oversized-bytes" => {
                base.oversized_bytes =
                    match parse_flag_value("--oversized-bytes", args.get(i + 1), "a byte count") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                if base.oversized_bytes == 0 {
                    return flag_error(
                        "--oversized-bytes expects a byte count >= 1, got `0`".into(),
                    );
                }
                i += 1;
            }
            "--out" => {
                let Some(value) = args.get(i + 1) else {
                    return flag_error("--out expects a path".to_string());
                };
                out = Some(value.clone());
                i += 1;
            }
            "--help" | "-h" => return usage(),
            other => return flag_error(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if base.addr.is_empty() {
        return flag_error("--addr is required".to_string());
    }

    let mut rows = Vec::new();
    for &connections in &connections_list {
        let config = LoadgenConfig { connections, ..base.clone() };
        eprintln!(
            "loadgen: row connections={connections} requests={} rate={}/s",
            config.requests_per_conn, config.rate_per_conn
        );
        match run(&config) {
            Ok(stats) => rows.push(row_json(connections, &stats)),
            Err(e) => {
                eprintln!("loadgen: row connections={connections} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The server's own view, for the drift gate: admission and store
    // counters straight from a final stats request.
    let stats_resp = match request_once(
        &base.addr,
        "{\"op\":\"stats\",\"id\":\"loadgen\"}",
        Duration::from_secs(10),
    ) {
        Ok(resp) => resp,
        Err(e) => {
            eprintln!("loadgen: final stats request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server_counters = stats_resp.get("counters").cloned().unwrap_or(Json::Obj(Vec::new()));
    let hits = server_counters.get("store.hits").and_then(Json::as_u64).unwrap_or(0);
    let misses = server_counters.get("store.misses").and_then(Json::as_u64).unwrap_or(0);
    let hit_rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };

    let doc = Json::obj(vec![
        ("schema", Json::Str("stp-bench-serve v1".to_string())),
        ("seed", Json::UInt(base.seed)),
        ("arity", Json::UInt(base.arity as u64)),
        ("classes", Json::UInt(base.classes as u64)),
        ("requests_per_conn", Json::UInt(base.requests_per_conn as u64)),
        ("rate_per_conn", Json::Num(base.rate_per_conn)),
        ("timeout_ms", Json::UInt(base.timeout_ms)),
        ("rows", Json::Arr(rows)),
        ("server_counters", server_counters),
        (
            "store",
            Json::obj(vec![
                ("hits", Json::UInt(hits)),
                ("misses", Json::UInt(misses)),
                ("hit_rate", Json::Num(hit_rate)),
            ]),
        ),
    ]);
    let text = format!("{doc}\n");
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("loadgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("loadgen: wrote {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
