//! `stpd` — the crash-safe synthesis daemon.
//!
//! ```text
//! Usage: stpd [options]
//!
//! Options:
//!   --addr <host:port>        bind address (default 127.0.0.1:0; port 0
//!                             picks an ephemeral port, printed on stdout)
//!   --store <path>            persistent store snapshot; opened with its
//!                             crash journal and saved on graceful shutdown
//!   --capacity <n>            max concurrently admitted work requests
//!                             (default 4); excess gets `overloaded`
//!   --jobs <n>                worker threads per synthesis call
//!                             (default from STP_JOBS, else 1; 0 = one
//!                             per CPU)
//!   --max-gates <n>           gate-count ceiling per request (default 20)
//!   --timeout-ms <ms>         default per-request deadline (default 10000)
//!   --drain-timeout-ms <ms>   shutdown drain window (default 5000)
//!   --idle-timeout-ms <ms>    close byte-free connections after (default
//!                             60000)
//!   --frame-timeout-ms <ms>   slow-loris guard: max wall time per frame
//!                             (default 10000)
//!   --max-frame-bytes <n>     per-frame byte cap (default 1048576)
//!   --retry-after-ms <ms>     hint sent with `overloaded` (default 100)
//!   --port-file <path>        also write the bound address to <path>
//!   --log <level>             off|error|warn|info|debug|trace
//! ```
//!
//! The daemon speaks line-delimited JSON; see the `stp_serve::protocol`
//! docs for the wire format. Shutdown is a protocol request (`{"op":
//! "shutdown"}`): the daemon stops accepting, drains in-flight work
//! under the drain window, and saves the store atomically. Exit code 0
//! means a graceful drain; 1 a runtime failure; 2 a usage error.

use std::process::ExitCode;
use std::time::Duration;

use stp_serve::server::{ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!(
        "usage: stpd [--addr <host:port>] [--store <path>] [--capacity <n>] [--jobs <n>] \
         [--max-gates <n>] [--timeout-ms <ms>] [--drain-timeout-ms <ms>] \
         [--idle-timeout-ms <ms>] [--frame-timeout-ms <ms>] [--max-frame-bytes <n>] \
         [--retry-after-ms <ms>] [--port-file <path>] [--log <level>]"
    );
    ExitCode::FAILURE
}

/// A malformed or missing flag value: report it and exit 2, so scripts
/// can tell usage errors from runtime failures (exit 1).
fn flag_error(message: String) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

/// Parses the value of a `--flag <value>` pair, failing loudly: a
/// missing or unparsable value is an error, never a silent fallback to
/// the default.
fn parse_flag_value<T: std::str::FromStr>(
    flag: &str,
    value: Option<&String>,
    expects: &str,
) -> Result<T, ExitCode> {
    let Some(raw) = value else {
        return Err(flag_error(format!("{flag} expects {expects}")));
    };
    raw.parse().map_err(|_| flag_error(format!("{flag} expects {expects}, got `{raw}`")))
}

fn main() -> ExitCode {
    stp_telemetry::init_from_env();
    // A malformed STP_JOBS is a usage error, diagnosed before any other
    // argument handling — not a silent fall-back to sequential.
    let env_jobs = match stp_synth::jobs_from_env_checked() {
        Ok(jobs) => jobs,
        Err(message) => return flag_error(message),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig { jobs: env_jobs, ..ServeConfig::default() };
    let mut addr = "127.0.0.1:0".to_string();
    let mut port_file: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                let Some(value) = args.get(i + 1) else {
                    return flag_error("--addr expects <host:port>".to_string());
                };
                addr = value.clone();
                i += 1;
            }
            "--store" => {
                let Some(value) = args.get(i + 1) else {
                    return flag_error("--store expects a path".to_string());
                };
                config.store_path = Some(value.into());
                i += 1;
            }
            "--port-file" => {
                let Some(value) = args.get(i + 1) else {
                    return flag_error("--port-file expects a path".to_string());
                };
                port_file = Some(value.clone());
                i += 1;
            }
            "--capacity" => {
                config.capacity =
                    match parse_flag_value("--capacity", args.get(i + 1), "a slot count") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                if config.capacity == 0 {
                    return flag_error("--capacity expects a slot count >= 1, got `0`".into());
                }
                i += 1;
            }
            "--jobs" => {
                config.jobs = match parse_flag_value(
                    "--jobs",
                    args.get(i + 1),
                    "a thread count (0 = one per CPU)",
                ) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                i += 1;
            }
            "--max-gates" => {
                config.max_gates =
                    match parse_flag_value("--max-gates", args.get(i + 1), "a gate count") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                if config.max_gates == 0 {
                    return flag_error("--max-gates expects a gate count >= 1, got `0`".into());
                }
                i += 1;
            }
            "--max-frame-bytes" => {
                config.max_frame_bytes =
                    match parse_flag_value("--max-frame-bytes", args.get(i + 1), "a byte count") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                if config.max_frame_bytes == 0 {
                    return flag_error(
                        "--max-frame-bytes expects a byte count >= 1, got `0`".into(),
                    );
                }
                i += 1;
            }
            "--retry-after-ms" => {
                config.retry_after_ms =
                    match parse_flag_value("--retry-after-ms", args.get(i + 1), "milliseconds") {
                        Ok(v) => v,
                        Err(code) => return code,
                    };
                i += 1;
            }
            flag @ ("--timeout-ms" | "--drain-timeout-ms" | "--idle-timeout-ms"
            | "--frame-timeout-ms") => {
                let ms: u64 = match parse_flag_value(flag, args.get(i + 1), "milliseconds") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                if ms == 0 {
                    return flag_error(format!("{flag} expects milliseconds >= 1, got `0`"));
                }
                let value = Duration::from_millis(ms);
                match flag {
                    "--timeout-ms" => config.default_timeout = value,
                    "--drain-timeout-ms" => config.drain_timeout = value,
                    "--idle-timeout-ms" => config.idle_timeout = value,
                    "--frame-timeout-ms" => config.frame_timeout = value,
                    _ => unreachable!("matched above"),
                }
                i += 1;
            }
            "--log" => {
                let Some(value) = args.get(i + 1) else {
                    return flag_error("--log expects a level".to_string());
                };
                match stp_telemetry::log::Level::parse(value) {
                    Some(level) => stp_telemetry::set_level(level),
                    None => {
                        return flag_error(format!(
                            "--log expects off|error|warn|info|debug|trace, got `{value}`"
                        ));
                    }
                }
                i += 1;
            }
            "--help" | "-h" => return usage(),
            other => return flag_error(format!("unknown option `{other}`")),
        }
        i += 1;
    }

    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("stpd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stpd: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Tests and scripts parse this exact line to find the ephemeral
    // port; keep it first and flushed.
    println!("stpd listening on {bound}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, bound.to_string()) {
            eprintln!("stpd: cannot write --port-file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(summary) => {
            if summary.drained_clean {
                stp_telemetry::info!("stpd: drained clean");
            } else {
                stp_telemetry::warn!("stpd: drain deadline expired; in-flight work was aborted");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stpd: {e}");
            ExitCode::FAILURE
        }
    }
}
