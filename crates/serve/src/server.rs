//! The `stpd` server: accept loop, per-connection handlers, admission
//! control, deadlines, and graceful drain.
//!
//! # Admission control
//!
//! Work requests (`synth`, `rewrite`) pass through a bounded in-flight
//! gate of [`ServeConfig::capacity`] slots. A request that finds every
//! slot taken is rejected *immediately* with a structured
//! `overloaded` response carrying `retry_after_ms` — the connection
//! stays open, nothing queues, and the daemon's memory and latency
//! stay bounded under any offered load. `ping`, `stats`, and
//! `shutdown` bypass the gate so the daemon remains observable and
//! stoppable while saturated.
//!
//! # Deadlines
//!
//! Every work request gets a wall-clock deadline (its `timeout_ms`, or
//! [`ServeConfig::default_timeout`]) plumbed into
//! [`stp_synth::SynthesisConfig::deadline`], where the engine's
//! cooperative `check_deadline` polls it. Expiry produces a structured
//! `timeout` response — never a dropped connection.
//!
//! # Graceful drain
//!
//! A `shutdown` request (the no-signal-crate stand-in for SIGTERM —
//! hosts that can catch signals just set the same flag) flips the
//! shared shutdown flag. The accept loop stops taking connections,
//! idle handlers see the flag between frames and exit, and in-flight
//! work is given [`ServeConfig::drain_timeout`] to finish. Past that
//! deadline the shared [`stp_synth::SynthesisConfig::abort`] flag is
//! raised, which the engine's `check_deadline` converts into a
//! `Timeout` — so even stuck requests resolve to structured responses.
//! Handlers are then joined and the store is saved atomically
//! (journal cleared), so a graceful exit leaves no replay work behind.
//!
//! # Failpoints
//!
//! With the `faultsim` feature the daemon carries kill-window probes
//! for the chaos suite: `serve.accept`, `serve.request.admitted`,
//! `serve.request.pre_solve`, `serve.request.pre_respond`,
//! `serve.shutdown.pre_save`. An `abort` action at any of them is an
//! honest `kill -9`: the journal (fsynced on every publish) is all
//! that survives, and [`stp_store::Store::open`] replays it.

use std::io::Write;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stp_network::{rewrite, Network, RewriteConfig, SynthesisCache};
use stp_store::Store;
use stp_synth::{
    synthesize_multi_npn_with_store, synthesize_npn_with_store, MultiSpec, SynthesisConfig,
    SynthesisError,
};
use stp_telemetry::{CounterScope, Json, RunReport};
use stp_tt::TruthTable;

use crate::protocol::{
    parse_request, resp_error, resp_malformed, resp_overloaded, resp_pong, resp_rewrite,
    resp_shutdown_ack, resp_shutting_down, resp_stats, resp_synth, resp_timeout, Frame,
    FrameReader, Request,
};

/// Tuning knobs for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Snapshot path for the persistent store. `Some` opens with
    /// journaling ([`Store::open`]) and saves on graceful shutdown;
    /// `None` runs a purely in-memory store.
    pub store_path: Option<PathBuf>,
    /// Maximum concurrently *admitted* work requests; excess is shed
    /// with `overloaded`.
    pub capacity: usize,
    /// Worker threads per synthesis call (`1` = sequential, `0` = one
    /// per CPU).
    pub jobs: usize,
    /// Gate-count ceiling per synthesis request.
    pub max_gates: usize,
    /// Deadline for work requests that do not send `timeout_ms`.
    pub default_timeout: Duration,
    /// How long shutdown waits for in-flight work before raising the
    /// engine abort flag.
    pub drain_timeout: Duration,
    /// A connection with no bytes at all for this long is closed.
    pub idle_timeout: Duration,
    /// A frame that started but saw no newline for this long trips the
    /// slow-loris guard and the connection is closed.
    pub frame_timeout: Duration,
    /// Byte cap per frame; longer frames get a structured `malformed`
    /// response and the connection is closed.
    pub max_frame_bytes: usize,
    /// The `retry_after_ms` hint sent with `overloaded` rejections.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            store_path: None,
            capacity: 4,
            jobs: 1,
            max_gates: 20,
            default_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            frame_timeout: Duration::from_secs(10),
            max_frame_bytes: 1 << 20,
            retry_after_ms: 100,
        }
    }
}

/// Why [`Server::run`] failed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept, poll configuration).
    Io(std::io::Error),
    /// Store open/save failure.
    Store(stp_store::StoreFileError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<stp_store::StoreFileError> for ServeError {
    fn from(e: stp_store::StoreFileError) -> Self {
        ServeError::Store(e)
    }
}

/// What a completed [`Server::run`] looked like.
#[derive(Debug, Clone)]
pub struct ShutdownSummary {
    /// `true` when every in-flight request finished inside the drain
    /// window; `false` when the abort flag had to be raised.
    pub drained_clean: bool,
    /// `true` when a final snapshot was saved (a store path was
    /// configured).
    pub saved: bool,
}

/// State shared between the accept loop and every handler thread.
struct Shared {
    config: ServeConfig,
    store: Arc<Store>,
    /// Currently admitted work requests (not connections).
    inflight: AtomicUsize,
    /// The drain flag: set by a `shutdown` request (or the host's
    /// signal wiring); observed by the accept loop and between frames.
    shutdown: Arc<AtomicBool>,
    /// The engine kill switch, raised only past the drain deadline.
    /// `SynthesisConfig::abort` is never cleared by the engine, so one
    /// flag revokes every in-flight and future request at once.
    abort: Arc<AtomicBool>,
}

impl Shared {
    /// Takes one admission slot, or refuses when the gate is full.
    fn try_admit(&self) -> bool {
        self.inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                if n < self.config.capacity {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }
}

/// Releases an admission slot on drop — after the response write, so
/// drain's `inflight == 0` implies every response reached the socket.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Accept-loop poll granularity (shutdown responsiveness).
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Drain-loop poll granularity.
const DRAIN_POLL: Duration = Duration::from_millis(10);
/// Grace period after raising the abort flag, for the engine's
/// cooperative cancellation to take hold and responses to flush.
const ABORT_GRACE: Duration = Duration::from_secs(2);

/// A bound `stpd` instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` and opens (or creates) the store. Port `0` picks an
    /// ephemeral port; read it back with [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the socket cannot be bound or the store
    /// snapshot/journal cannot be opened.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> Result<Server, ServeError> {
        let store = match &config.store_path {
            Some(path) => Store::open(path)?,
            None => Store::new(),
        };
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            config,
            store: Arc::new(store),
            inflight: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            abort: Arc::new(AtomicBool::new(false)),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared solution store.
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.shared.store)
    }

    /// A handle to the drain flag, for hosts that wire up their own
    /// stop condition (a signal handler, a watchdog). Setting it has
    /// exactly the effect of a `shutdown` request.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.shutdown)
    }

    /// Serves until drained: accepts connections, dispatches requests,
    /// and on shutdown drains in-flight work and saves the store.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on accept-loop socket failures or a failed final
    /// store save. Per-connection I/O errors only close that
    /// connection.
    pub fn run(self) -> Result<ShutdownSummary, ServeError> {
        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    stp_faultsim::fail_point!("serve.accept");
                    stp_telemetry::counter!("serve.connections").inc();
                    stp_telemetry::debug!("stpd: connection from {peer}");
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || handle_connection(stream, &shared)));
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
            handlers.retain(|h| !h.is_finished());
        }

        // Drain: wait for admitted work, then escalate to the abort
        // flag, then join the handler threads (which exit on their own
        // once they observe the shutdown flag between frames).
        let drain_deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.inflight.load(Ordering::Acquire) > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(DRAIN_POLL);
        }
        let leftover = self.shared.inflight.load(Ordering::Acquire);
        let drained_clean = leftover == 0;
        if !drained_clean {
            stp_telemetry::counter!("serve.drain_aborts").add(leftover as u64);
            stp_telemetry::warn!(
                "stpd: drain deadline expired with {leftover} request(s) in flight; aborting"
            );
            self.shared.abort.store(true, Ordering::Release);
            let grace_deadline = Instant::now() + ABORT_GRACE;
            while self.shared.inflight.load(Ordering::Acquire) > 0
                && Instant::now() < grace_deadline
            {
                std::thread::sleep(DRAIN_POLL);
            }
        }
        for handle in handlers {
            let _ = handle.join();
        }

        stp_faultsim::fail_point!("serve.shutdown.pre_save");
        let mut saved = false;
        if let Some(path) = &self.shared.config.store_path {
            self.shared.store.save(path)?;
            saved = true;
        }
        Ok(ShutdownSummary { drained_clean, saved })
    }
}

/// Serializes `resp` as one frame and writes it. `false` means the
/// socket is gone and the connection should be abandoned.
fn write_response(stream: &mut TcpStream, resp: &Json) -> bool {
    let mut line = resp.to_string();
    line.push('\n');
    match stream.write_all(line.as_bytes()).and_then(|()| stream.flush()) {
        Ok(()) => true,
        Err(e) => {
            stp_telemetry::counter!("serve.write_errors").inc();
            stp_telemetry::debug!("stpd: response write failed: {e}");
            false
        }
    }
}

/// One connection, frame loop to close.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let _ = writer.set_write_timeout(Some(shared.config.frame_timeout));
    let mut reader = match FrameReader::new(
        stream,
        shared.config.max_frame_bytes,
        shared.config.idle_timeout,
        shared.config.frame_timeout,
    ) {
        Ok(r) => r,
        Err(_) => return,
    };
    loop {
        let frame = match reader.next_frame(&|| shared.shutdown.load(Ordering::Acquire)) {
            Ok(frame) => frame,
            Err(e) => {
                stp_telemetry::debug!("stpd: read failed: {e}");
                return;
            }
        };
        let line = match frame {
            Frame::Line(line) => line,
            Frame::Eof | Frame::ShuttingDown => return,
            Frame::IdleTimeout => {
                stp_telemetry::counter!("serve.idle_closed").inc();
                return;
            }
            Frame::SlowLoris => {
                stp_telemetry::counter!("serve.read_timeouts").inc();
                let _ = write_response(
                    &mut writer,
                    &resp_malformed(None, "frame read timed out before its newline arrived"),
                );
                return;
            }
            Frame::TooLong { limit } => {
                stp_telemetry::counter!("serve.malformed").inc();
                let _ = write_response(
                    &mut writer,
                    &resp_malformed(None, &format!("frame exceeds the {limit}-byte cap")),
                );
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(req) => req,
            Err(message) => {
                // Frame-level violation: answer, then drop the
                // connection — a peer that sends garbage once cannot be
                // trusted to frame the next request either.
                stp_telemetry::counter!("serve.malformed").inc();
                let _ = write_response(&mut writer, &resp_malformed(None, &message));
                return;
            }
        };
        if !dispatch(request, &mut writer, shared) {
            return;
        }
    }
}

/// Handles one parsed request. `false` closes the connection.
fn dispatch(request: Request, writer: &mut TcpStream, shared: &Shared) -> bool {
    match request {
        Request::Ping { id } => write_response(writer, &resp_pong(id.as_deref())),
        Request::Stats { id } => {
            let snapshot = stp_telemetry::metrics_global().snapshot();
            let counters = Json::Obj(
                snapshot
                    .counters
                    .iter()
                    .filter(|(_, v)| **v > 0)
                    .map(|(name, v)| (name.clone(), Json::UInt(*v)))
                    .collect(),
            );
            let prometheus = stp_telemetry::expose::render_prometheus(&snapshot);
            let mut resp = resp_stats(id.as_deref(), counters, prometheus);
            if let Json::Obj(fields) = &mut resp {
                fields.push(("store_entries".to_string(), Json::UInt(shared.store.len() as u64)));
                fields.push((
                    "inflight".to_string(),
                    Json::UInt(shared.inflight.load(Ordering::Acquire) as u64),
                ));
            }
            write_response(writer, &resp)
        }
        Request::Shutdown { id } => {
            stp_telemetry::info!("stpd: shutdown requested");
            let _ = write_response(writer, &resp_shutdown_ack(id.as_deref()));
            shared.shutdown.store(true, Ordering::Release);
            false
        }
        Request::Synth { id, tables, timeout_ms } => {
            handle_work(id, writer, shared, timeout_ms, move |shared, deadline| {
                run_synth(&tables, shared, deadline)
            })
        }
        Request::Rewrite { id, blif, timeout_ms } => {
            handle_work(id, writer, shared, timeout_ms, move |shared, deadline| {
                run_rewrite(&blif, shared, deadline)
            })
        }
    }
}

/// What a work closure resolved to, before response assembly.
enum WorkOutcome {
    /// A complete response object.
    Done(Json),
    /// The request deadline expired.
    TimedOut,
    /// Frame was well-formed JSON but semantically unusable (bad BLIF).
    Malformed(String),
}

/// Admission gate + deadline + panic isolation around one work
/// request. `false` closes the connection.
fn handle_work(
    id: Option<String>,
    writer: &mut TcpStream,
    shared: &Shared,
    timeout_ms: Option<u64>,
    work: impl FnOnce(&Shared, Instant) -> WorkOutcome,
) -> bool {
    let id = id.as_deref();
    if shared.shutdown.load(Ordering::Acquire) {
        stp_telemetry::counter!("serve.rejected_shutdown").inc();
        let _ = write_response(writer, &resp_shutting_down(id));
        return false;
    }
    if !shared.try_admit() {
        stp_telemetry::counter!("serve.rejected_overload").inc();
        return write_response(writer, &resp_overloaded(id, shared.config.retry_after_ms));
    }
    let guard = InflightGuard(&shared.inflight);
    stp_telemetry::counter!("serve.accepted").inc();
    stp_faultsim::fail_point!("serve.request.admitted");
    let timeout = timeout_ms.map(Duration::from_millis).unwrap_or(shared.config.default_timeout);
    let deadline = Instant::now() + timeout;
    let outcome = catch_unwind(AssertUnwindSafe(|| work(shared, deadline)));
    let resp = match outcome {
        Ok(WorkOutcome::Done(resp)) => resp,
        Ok(WorkOutcome::TimedOut) => {
            stp_telemetry::counter!("serve.timeouts").inc();
            resp_timeout(id, timeout.as_millis() as u64)
        }
        Ok(WorkOutcome::Malformed(message)) => {
            stp_telemetry::counter!("serve.malformed").inc();
            resp_malformed(id, &message)
        }
        Err(_) => {
            stp_telemetry::counter!("serve.panics").inc();
            resp_error(id, "internal panic while serving the request")
        }
    };
    let resp = inject_id(resp, id);
    stp_faultsim::fail_point!("serve.request.pre_respond");
    let ok = write_response(writer, &resp);
    if shared.shutdown.load(Ordering::Acquire) {
        stp_telemetry::counter!("serve.drained").inc();
    }
    drop(guard);
    ok
}

/// Ensures the echoed `id` is present on a response built inside the
/// work closure (which does not carry it around).
fn inject_id(resp: Json, id: Option<&str>) -> Json {
    let Some(id) = id else { return resp };
    let Json::Obj(mut fields) = resp else { return resp };
    if !fields.iter().any(|(k, _)| k == "id") {
        fields.insert(1.min(fields.len()), ("id".to_string(), Json::Str(id.to_string())));
    }
    Json::Obj(fields)
}

/// Builds the per-request `RunReport` from a finished counter scope.
fn work_report(
    op: &str,
    args: Vec<String>,
    outcome: &str,
    wall_s: f64,
    counters: std::collections::BTreeMap<String, u64>,
) -> Json {
    let report = RunReport {
        tool: "stpd".to_string(),
        args: {
            let mut a = vec![op.to_string()];
            a.extend(args);
            a
        },
        outcome: outcome.to_string(),
        wall_s,
        counters,
        phases: Vec::new(),
        profile: None,
        extra: Vec::new(),
    };
    report.to_json()
}

/// One `synth` request body, inside the admission gate.
fn run_synth(tables: &[TruthTable], shared: &Shared, deadline: Instant) -> WorkOutcome {
    let config = SynthesisConfig {
        max_gates: shared.config.max_gates,
        deadline: Some(deadline),
        jobs: shared.config.jobs,
        abort: Some(Arc::clone(&shared.abort)),
        ..SynthesisConfig::default()
    };
    let args: Vec<String> = tables.iter().map(|t| t.to_hex()).collect();
    let scope = CounterScope::enter();
    stp_faultsim::fail_point!("serve.request.pre_solve");
    let start = Instant::now();
    let solved = if tables.len() == 1 {
        synthesize_npn_with_store(&tables[0], &config, &shared.store).map(|result| {
            let solutions = result.chains.len();
            let chain = result
                .chains
                .into_iter()
                .next()
                .expect("a successful synthesis carries at least one chain");
            (chain, solutions)
        })
    } else {
        match MultiSpec::new(tables.to_vec()) {
            Ok(multi) => synthesize_multi_npn_with_store(&multi, &config, &shared.store)
                .map(|chain| (chain, 1)),
            Err(e) => Err(e),
        }
    };
    let wall_s = start.elapsed().as_secs_f64();
    let counters = scope.finish();
    // A positive pending-wait count means this request parked on
    // another request's in-flight slot for the same NPN class — the
    // coalescing path.
    let coalesced = counters.get("store.pending_waits").copied().unwrap_or(0) > 0;
    if coalesced {
        stp_telemetry::counter!("serve.coalesced").inc();
    }
    match solved {
        Ok((chain, solutions)) => {
            let report = work_report("synth", args, "ok", wall_s, counters);
            WorkOutcome::Done(resp_synth(
                None,
                chain.num_gates(),
                chain.outputs().len(),
                solutions,
                chain.to_string(),
                wall_s * 1e3,
                coalesced,
                report,
            ))
        }
        Err(SynthesisError::Timeout) => WorkOutcome::TimedOut,
        Err(e) => WorkOutcome::Done(resp_error(None, &e.to_string())),
    }
}

/// One `rewrite` request body, inside the admission gate.
fn run_rewrite(blif: &str, shared: &Shared, deadline: Instant) -> WorkOutcome {
    let network = match Network::from_blif(blif) {
        Ok(net) => net,
        // Semantic malformation, not a framing violation: the handler
        // keeps the connection (handle_work maps this to `malformed`).
        Err(e) => return WorkOutcome::Malformed(format!("bad BLIF: {e}")),
    };
    let budget = deadline.saturating_duration_since(Instant::now());
    let config = RewriteConfig {
        synthesis_budget: budget.min(Duration::from_secs(2)),
        jobs: shared.config.jobs,
        ..RewriteConfig::default()
    };
    let cache = SynthesisCache::with_store(Arc::clone(&shared.store));
    let scope = CounterScope::enter();
    stp_faultsim::fail_point!("serve.request.pre_solve");
    let start = Instant::now();
    let result = rewrite(&network, &config, &cache);
    let wall_s = start.elapsed().as_secs_f64();
    let counters = scope.finish();
    match result {
        Ok(result) => {
            if Instant::now() >= deadline {
                return WorkOutcome::TimedOut;
            }
            let report = work_report("rewrite", Vec::new(), "ok", wall_s, counters);
            WorkOutcome::Done(resp_rewrite(
                None,
                result.gates_before,
                result.gates_after,
                result.passes,
                result.network.to_blif("stpd"),
                wall_s * 1e3,
                report,
            ))
        }
        Err(e) => WorkOutcome::Done(resp_error(None, &e.to_string())),
    }
}
