//! `stp-serve`: the `stpd` synthesis daemon and its load generator.
//!
//! The crate turns the workspace's exact-synthesis engine and
//! persistent NPN store into a long-running network service with an
//! explicit failure model:
//!
//! - [`protocol`] — the line-delimited JSON wire protocol: request
//!   parsing, structured responses (every parsed frame gets one — the
//!   daemon answers with `timeout`/`overloaded`/`malformed` objects,
//!   never a silently dropped connection), and the deadline-aware
//!   [`FrameReader`](protocol::FrameReader) with slow-loris and
//!   frame-size guards.
//! - [`server`] — the daemon itself: bounded admission
//!   ([`ServeConfig::capacity`](server::ServeConfig)), per-request
//!   deadlines plumbed into the engine's cooperative cancellation,
//!   request coalescing through the store's pending slots, graceful
//!   drain with a final journaled save, and `serve.*` failpoints for
//!   kill-window chaos tests.
//! - [`loadgen`] — a seeded, open-loop load generator producing the
//!   deterministic request mixes behind `BENCH_serve.json`.
//!
//! See DESIGN.md, "Service layer & failure model", for the protocol
//! and the admission/drain state machines.

#![forbid(unsafe_code)]

pub mod loadgen;
pub mod protocol;
pub mod server;

pub use protocol::{parse_request, Frame, FrameReader, Request};
pub use server::{ServeConfig, ServeError, Server, ShutdownSummary};
