//! Kill-window and degradation chaos tests for `stpd`, driven through
//! the `serve.*` failpoints. Requires `--features faultsim` (the test
//! binary and the spawned daemon share the feature set, so the bins
//! carry the probes).
//!
//! The contract under test, from the failure model: an abort at *any*
//! failpoint loses at most the in-flight requests — every previously
//! acknowledged solution is recovered from the journal on restart —
//! and overload never produces anything but structured `overloaded`
//! responses.

#![cfg(feature = "faultsim")]

mod common;

use std::time::{Duration, Instant};

use common::{counter, shutdown_and_wait, spawn_stpd, status, Conn, Scratch};
use stp_telemetry::Json;

const WINDOW: Duration = Duration::from_secs(30);

/// Hex reps of `count` distinct non-trivial NPN-3 classes.
fn nontrivial_classes(count: usize) -> Vec<String> {
    let reps: Vec<String> = stp_tt::npn_classes(3)
        .into_iter()
        .filter(|t| stp_chain::trivial_chain(t).is_none())
        .map(|t| t.to_hex())
        .collect();
    assert!(reps.len() >= count, "need {count} non-trivial NPN3 classes, have {}", reps.len());
    reps[..count].to_vec()
}

fn synth_frame(table: &str, id: &str) -> String {
    format!("{{\"op\":\"synth\",\"id\":\"{id}\",\"tables\":[\"{table}\"]}}")
}

/// Waits for a killed daemon to be reaped, asserting it did NOT exit
/// cleanly (an abort is a crash, not a graceful drain).
fn expect_crash(daemon: &mut common::Daemon) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match daemon.child.try_wait().expect("poll crashed stpd") {
            Some(code) => {
                assert!(!code.success(), "an aborted stpd must not report success, got {code}");
                return;
            }
            None => {
                assert!(Instant::now() < deadline, "aborted stpd did not die");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Kill window mid-stream: the daemon aborts while responding to the
/// 3rd request. The first three classes were journaled at publish time,
/// so a restart recovers exactly them; only the in-flight response is
/// lost.
#[test]
fn abort_at_pre_respond_loses_only_the_inflight_request() {
    let scratch = Scratch::new("pre-respond-abort");
    let store_flag = scratch.store().to_str().unwrap().to_string();
    let classes = nontrivial_classes(6);

    let mut daemon =
        spawn_stpd(&["--store", &store_flag], Some("serve.request.pre_respond=3:abort"));
    let addr = daemon.addr.clone();
    let mut answered = 0usize;
    for (i, class) in classes.iter().enumerate() {
        // One connection per request: the abort kills the whole
        // process, so a shared connection would just see EOF anyway.
        let mut conn = Conn::open(&addr);
        conn.send(&synth_frame(class, &format!("k{i}")));
        match conn.recv(WINDOW) {
            Some(line) => {
                let resp = Json::parse(&line).expect("parsable response");
                assert_eq!(status(&resp), "ok", "{resp}");
                answered += 1;
            }
            None => break, // the kill window
        }
    }
    assert_eq!(answered, 2, "the abort fires while responding to request 3");
    expect_crash(&mut daemon);

    // Restart on the same store, no failpoints: the journal replays the
    // three published classes (the in-flight one included — publish
    // happens before the response).
    let daemon = spawn_stpd(&["--store", &store_flag], None);
    let mut conn = Conn::open(&daemon.addr);
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "store.journal_replayed"), 3, "{stats}");
    assert_eq!(counter(&stats, "store.journal_errors"), 0);

    // Re-request everything: the replayed classes hit, the rest miss.
    for (i, class) in classes.iter().enumerate() {
        let resp = conn.roundtrip(&synth_frame(class, &format!("r{i}")), WINDOW);
        assert_eq!(status(&resp), "ok", "{resp}");
    }
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "store.misses"), 3, "only the unjournaled classes re-solve");
    assert_eq!(counter(&stats, "store.hits"), 3);
    shutdown_and_wait(daemon);
}

/// Kill window in shutdown itself: the abort lands after drain but
/// before the final save. The journal alone must carry every
/// acknowledged solution into the next life.
#[test]
fn abort_before_final_save_recovers_from_the_journal() {
    let scratch = Scratch::new("pre-save-abort");
    let store_flag = scratch.store().to_str().unwrap().to_string();
    let classes = nontrivial_classes(4);

    let mut daemon = spawn_stpd(&["--store", &store_flag], Some("serve.shutdown.pre_save=abort"));
    let addr = daemon.addr.clone();
    let mut conn = Conn::open(&addr);
    for (i, class) in classes.iter().enumerate() {
        let resp = conn.roundtrip(&synth_frame(class, &format!("k{i}")), WINDOW);
        assert_eq!(status(&resp), "ok", "{resp}");
    }
    conn.send("{\"op\":\"shutdown\"}");
    // The ack may or may not flush before the abort; the crash itself
    // is the assertion.
    let _ = conn.recv(Duration::from_secs(10));
    expect_crash(&mut daemon);
    assert!(!scratch.store().exists(), "the abort preempted the snapshot save");

    let daemon = spawn_stpd(&["--store", &store_flag], None);
    let mut conn = Conn::open(&daemon.addr);
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "store.journal_replayed"), 4, "{stats}");
    for (i, class) in classes.iter().enumerate() {
        let resp = conn.roundtrip(&synth_frame(class, &format!("r{i}")), WINDOW);
        assert_eq!(status(&resp), "ok", "{resp}");
    }
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "store.misses"), 0, "zero-miss warm restart: {stats}");
    assert_eq!(counter(&stats, "store.hits"), 4);
    shutdown_and_wait(daemon);
}

/// Overload burst at 2× capacity: with every admitted request parked in
/// a 600ms failpoint sleep, 4 simultaneous requests against capacity 2
/// must split into exactly 2 `ok` + 2 structured `overloaded` — no
/// hangs, no closed sockets, and the counter matches the rejections.
#[test]
fn overload_burst_sheds_exactly_the_excess() {
    let classes = nontrivial_classes(4);
    let daemon = spawn_stpd(&["--capacity", "2"], Some("serve.request.pre_solve=sleep:600"));
    let addr = daemon.addr.clone();

    // Open all connections first, then fire the frames back to back so
    // all four are in flight well inside the 600ms sleep window.
    let mut conns: Vec<Conn> = (0..4).map(|_| Conn::open(&addr)).collect();
    for (i, conn) in conns.iter_mut().enumerate() {
        conn.send(&synth_frame(&classes[i], &format!("b{i}")));
    }
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for (i, conn) in conns.iter_mut().enumerate() {
        let line = conn
            .recv(WINDOW)
            .unwrap_or_else(|| panic!("request b{i} must get a structured response"));
        let resp = Json::parse(&line).expect("parsable response");
        match status(&resp) {
            "ok" => ok += 1,
            "overloaded" => {
                overloaded += 1;
                assert!(
                    resp.get("retry_after_ms").and_then(Json::as_u64).is_some(),
                    "overloaded carries a retry hint: {resp}"
                );
            }
            other => panic!("request b{i}: unexpected status {other}: {resp}"),
        }
    }
    assert_eq!((ok, overloaded), (2, 2), "2x capacity splits evenly");

    // Rejected connections stay usable: retry after the burst drains.
    let retry = conns[0].roundtrip(&synth_frame(&classes[3], "retry"), WINDOW);
    assert_eq!(status(&retry), "ok", "{retry}");

    let mut conn = Conn::open(&addr);
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "serve.rejected_overload"), 2);
    assert_eq!(counter(&stats, "serve.accepted"), 3, "2 burst winners + 1 retry");
    shutdown_and_wait(daemon);
}

/// Coalescing under a slow solver: while request 1 owns the pending
/// slot (held 400ms by a failpoint sleep inside the engine), a patient
/// same-class request parks on the slot and shares the result
/// (`coalesced: true`), and an impatient one gets a structured
/// `timeout` from the deadline-aware wait — the end-to-end face of
/// `Store`'s `WaitTimeout` resolution.
#[test]
fn same_class_requests_coalesce_and_impatient_waiters_time_out() {
    let classes = nontrivial_classes(1);
    let daemon = spawn_stpd(&[], Some("factor.deadline=1:sleep:400"));
    let addr = daemon.addr.clone();

    let mut owner = Conn::open(&addr);
    owner.send(&synth_frame(&classes[0], "owner"));
    std::thread::sleep(Duration::from_millis(100));

    let mut patient = Conn::open(&addr);
    patient.send(&synth_frame(&classes[0], "patient"));
    let mut impatient = Conn::open(&addr);
    impatient.send(&format!(
        "{{\"op\":\"synth\",\"id\":\"impatient\",\"tables\":[\"{}\"],\"timeout_ms\":50}}",
        classes[0]
    ));

    let impatient_resp = impatient.recv(WINDOW).expect("impatient waiter is answered");
    let impatient_resp = Json::parse(&impatient_resp).unwrap();
    assert_eq!(status(&impatient_resp), "timeout", "{impatient_resp}");

    let owner_resp = Json::parse(&owner.recv(WINDOW).expect("owner answered")).unwrap();
    assert_eq!(status(&owner_resp), "ok", "{owner_resp}");
    let patient_resp = Json::parse(&patient.recv(WINDOW).expect("patient answered")).unwrap();
    assert_eq!(status(&patient_resp), "ok", "{patient_resp}");
    assert_eq!(
        patient_resp.get("coalesced"),
        Some(&Json::Bool(true)),
        "the patient waiter rode the owner's solve: {patient_resp}"
    );
    assert_eq!(
        patient_resp.get("gates").and_then(Json::as_u64),
        owner_resp.get("gates").and_then(Json::as_u64)
    );

    let mut conn = Conn::open(&addr);
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "store.misses"), 1, "one solve served all three: {stats}");
    assert!(counter(&stats, "serve.coalesced") >= 1);
    assert!(counter(&stats, "store.wait_timeouts") >= 1);
    assert_eq!(counter(&stats, "serve.timeouts"), 1);
    shutdown_and_wait(daemon);
}

/// An abort in the accept path itself: the daemon dies, but a restart
/// on the same (journaled) store is routine. Covers the "kill window
/// anywhere" clause for `serve.accept`.
#[test]
fn abort_at_accept_is_survivable() {
    let scratch = Scratch::new("accept-abort");
    let store_flag = scratch.store().to_str().unwrap().to_string();
    let classes = nontrivial_classes(2);

    let mut daemon = spawn_stpd(&["--store", &store_flag], Some("serve.accept=3:abort"));
    let addr = daemon.addr.clone();
    for (i, class) in classes.iter().enumerate() {
        let mut conn = Conn::open(&addr);
        let resp = conn.roundtrip(&synth_frame(class, &format!("k{i}")), WINDOW);
        assert_eq!(status(&resp), "ok", "{resp}");
    }
    // The third accept aborts the daemon mid-handshake.
    let _ = std::net::TcpStream::connect(&addr);
    expect_crash(&mut daemon);

    let daemon = spawn_stpd(&["--store", &store_flag], None);
    let mut conn = Conn::open(&daemon.addr);
    for (i, class) in classes.iter().enumerate() {
        let resp = conn.roundtrip(&synth_frame(class, &format!("r{i}")), WINDOW);
        assert_eq!(status(&resp), "ok", "{resp}");
    }
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "store.misses"), 0, "journal recovery is complete: {stats}");
    shutdown_and_wait(daemon);
}
