//! End-to-end protocol smoke tests for `stpd`: request/response round
//! trips, structured error handling, deadlines, and graceful shutdown
//! with store persistence. No fault injection here — see
//! `serve_chaos.rs` for the kill-window suite.

mod common;

use std::time::Duration;

use common::{counter, shutdown_and_wait, spawn_stpd, status, Conn, Scratch};
use stp_telemetry::Json;

const WINDOW: Duration = Duration::from_secs(30);

#[test]
fn ping_synth_multi_and_stats_round_trip() {
    let daemon = spawn_stpd(&[], None);
    let mut conn = Conn::open(&daemon.addr);

    let pong = conn.roundtrip("{\"op\":\"ping\",\"id\":\"p1\"}", WINDOW);
    assert_eq!(status(&pong), "ok");
    assert_eq!(pong.get("id").and_then(Json::as_str), Some("p1"));

    // The paper's Example 7: 8ff8 has a 3-gate optimum.
    let synth = conn.roundtrip("{\"op\":\"synth\",\"id\":\"s1\",\"tables\":[\"8ff8\"]}", WINDOW);
    assert_eq!(status(&synth), "ok", "{synth}");
    assert_eq!(synth.get("gates").and_then(Json::as_u64), Some(3));
    assert_eq!(synth.get("outputs").and_then(Json::as_u64), Some(1));
    assert!(synth.get("chain").and_then(Json::as_str).is_some_and(|c| c.contains("f1")));
    let report = synth.get("report").expect("per-request RunReport");
    assert_eq!(report.get("tool").and_then(Json::as_str), Some("stpd"));
    assert_eq!(report.get("outcome").and_then(Json::as_str), Some("ok"));

    // Multi-output: full adder sum+carry share one chain.
    let multi =
        conn.roundtrip("{\"op\":\"synth\",\"id\":\"m1\",\"tables\":[\"e8\",\"96\"]}", WINDOW);
    assert_eq!(status(&multi), "ok", "{multi}");
    assert_eq!(multi.get("outputs").and_then(Json::as_u64), Some(2));
    assert!(multi.get("gates").and_then(Json::as_u64).unwrap() <= 5);

    let stats = conn.roundtrip("{\"op\":\"stats\",\"id\":\"t1\"}", WINDOW);
    assert_eq!(status(&stats), "ok");
    assert_eq!(counter(&stats, "serve.accepted"), 2);
    assert_eq!(counter(&stats, "serve.rejected_overload"), 0);
    assert!(counter(&stats, "store.misses") >= 2);
    assert!(stats
        .get("prometheus")
        .and_then(Json::as_str)
        .is_some_and(|p| p.contains("stp_counter")));
}

#[test]
fn repeated_class_hits_the_store_not_the_engine() {
    let daemon = spawn_stpd(&[], None);
    let mut conn = Conn::open(&daemon.addr);
    let first = conn.roundtrip("{\"op\":\"synth\",\"tables\":[\"8ff8\"]}", WINDOW);
    assert_eq!(status(&first), "ok");
    let second = conn.roundtrip("{\"op\":\"synth\",\"tables\":[\"8ff8\"]}", WINDOW);
    assert_eq!(status(&second), "ok");
    assert_eq!(
        second.get("gates").and_then(Json::as_u64),
        first.get("gates").and_then(Json::as_u64)
    );
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "store.misses"), 1, "second request must be a hit");
    assert!(counter(&stats, "store.hits") >= 1);
}

#[test]
fn malformed_frame_gets_structured_response_then_close() {
    let daemon = spawn_stpd(&[], None);
    let mut conn = Conn::open(&daemon.addr);
    conn.send("this is not json");
    let resp = conn.recv(WINDOW).expect("malformed frames are answered, not dropped");
    let resp = Json::parse(&resp).unwrap();
    assert_eq!(status(&resp), "malformed");
    assert!(resp.get("message").and_then(Json::as_str).is_some());
    assert!(conn.closed(Duration::from_secs(5)), "garbage closes the connection");

    // The daemon itself survives and serves the next connection.
    let mut fresh = Conn::open(&daemon.addr);
    let pong = fresh.roundtrip("{\"op\":\"ping\"}", WINDOW);
    assert_eq!(status(&pong), "ok");
    let stats = fresh.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "serve.malformed"), 1);
}

#[test]
fn semantic_violations_answer_without_closing() {
    let daemon = spawn_stpd(&[], None);
    let mut conn = Conn::open(&daemon.addr);
    for (frame, needle) in [
        ("{\"op\":\"fly\"}", "unknown op"),
        ("{\"op\":\"synth\",\"tables\":[]}", "empty"),
        ("{\"op\":\"synth\",\"tables\":[\"zz\"]}", "bad table"),
        ("{\"op\":\"synth\",\"tables\":[\"e8\",\"8ff8\"]}", "disagree"),
        ("{\"op\":\"synth\",\"tables\":[\"e8\"],\"timeout_ms\":0}", "timeout_ms"),
    ] {
        let mut probe = Conn::open(&daemon.addr);
        probe.send(frame);
        let resp = probe.recv(WINDOW).unwrap_or_else(|| panic!("no response to {frame}"));
        let resp = Json::parse(&resp).unwrap();
        assert_eq!(status(&resp), "malformed", "{frame} -> {resp}");
        let message = resp.get("message").and_then(Json::as_str).unwrap_or("");
        assert!(message.contains(needle), "{frame}: {message:?} missing {needle:?}");
    }
    // A bad BLIF is semantic too — same connection must stay usable.
    let resp = conn.roundtrip("{\"op\":\"rewrite\",\"id\":\"r\",\"blif\":\"nonsense\"}", WINDOW);
    assert_eq!(status(&resp), "malformed", "{resp}");
    let pong = conn.roundtrip("{\"op\":\"ping\"}", WINDOW);
    assert_eq!(status(&pong), "ok", "semantic errors keep the connection open");
}

#[test]
fn oversized_frame_is_rejected_with_the_limit_named() {
    let daemon = spawn_stpd(&["--max-frame-bytes", "256"], None);
    let mut conn = Conn::open(&daemon.addr);
    conn.send_raw(&vec![b'x'; 4096]);
    let resp = conn.recv(WINDOW).expect("oversized frames are answered");
    let resp = Json::parse(&resp).unwrap();
    assert_eq!(status(&resp), "malformed");
    assert!(
        resp.get("message").and_then(Json::as_str).is_some_and(|m| m.contains("256")),
        "the limit is named: {resp}"
    );
    assert!(conn.closed(Duration::from_secs(5)));
}

#[test]
fn tight_deadline_yields_structured_timeout_not_a_dropped_connection() {
    let daemon = spawn_stpd(&["--max-gates", "12"], None);
    let mut conn = Conn::open(&daemon.addr);
    // A 6-var table with no small realization; 1ms cannot finish it.
    let resp = conn.roundtrip(
        "{\"op\":\"synth\",\"id\":\"d\",\"tables\":[\"9ae7c3f1085b264d\"],\"timeout_ms\":1}",
        WINDOW,
    );
    assert_eq!(status(&resp), "timeout", "{resp}");
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("d"));
    assert_eq!(resp.get("budget_ms").and_then(Json::as_u64), Some(1));
    // Connection survives; the daemon counted the timeout.
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "serve.timeouts"), 1);
}

#[test]
fn rewrite_round_trip_shrinks_a_redundant_network() {
    let daemon = spawn_stpd(&[], None);
    let mut conn = Conn::open(&daemon.addr);
    // xor3 spelled wastefully: y^z twice (once as a LUT, once as
    // OR-of-ANDs, which structural hashing cannot merge), then
    // x^(y^z) expanded as (x|g4) & !(x&g1) — 7 gates, optimum 2.
    let blif = ".model waste\\n.inputs x y z\\n.outputs f\\n\
                .names y z g1\\n10 1\\n01 1\\n\
                .names y z g2\\n10 1\\n.names y z g3\\n01 1\\n\
                .names g2 g3 g4\\n1- 1\\n-1 1\\n\
                .names x g4 h1\\n1- 1\\n-1 1\\n.names x g1 h2\\n11 1\\n\
                .names h1 h2 f\\n10 1\\n.end";
    let resp = conn
        .roundtrip(&format!("{{\"op\":\"rewrite\",\"id\":\"rw\",\"blif\":\"{blif}\"}}"), WINDOW);
    assert_eq!(status(&resp), "ok", "{resp}");
    let before = resp.get("gates_before").and_then(Json::as_u64).unwrap();
    let after = resp.get("gates_after").and_then(Json::as_u64).unwrap();
    assert!(after < before, "rewriting must shrink {before} -> {after}");
    assert!(resp.get("blif").and_then(Json::as_str).is_some_and(|b| b.contains(".model")));
}

#[test]
fn graceful_shutdown_saves_the_store_and_restart_replays_zero_miss() {
    let scratch = Scratch::new("graceful");
    let store = scratch.store();
    let store_flag = store.to_str().unwrap().to_string();

    let daemon = spawn_stpd(&["--store", &store_flag], None);
    let addr = daemon.addr.clone();
    let mut conn = Conn::open(&addr);
    let resp = conn.roundtrip("{\"op\":\"synth\",\"tables\":[\"8ff8\"]}", WINDOW);
    assert_eq!(status(&resp), "ok");
    shutdown_and_wait(daemon);

    assert!(store.exists(), "graceful shutdown saves a snapshot");
    let journal = {
        let mut os = store.as_os_str().to_owned();
        os.push(".journal");
        std::path::PathBuf::from(os)
    };
    let journal_text = std::fs::read_to_string(&journal).unwrap_or_default();
    assert!(
        journal_text.lines().count() <= 1,
        "a graceful save clears the journal to its bare header, got {journal_text:?}"
    );

    // Restart on the same snapshot: the class is already there.
    let daemon = spawn_stpd(&["--store", &store_flag], None);
    let mut conn = Conn::open(&daemon.addr);
    let resp = conn.roundtrip("{\"op\":\"synth\",\"tables\":[\"8ff8\"]}", WINDOW);
    assert_eq!(status(&resp), "ok");
    let stats = conn.roundtrip("{\"op\":\"stats\"}", WINDOW);
    assert_eq!(counter(&stats, "store.misses"), 0, "warm restart answers from the store");
    assert!(counter(&stats, "store.hits") >= 1);
    shutdown_and_wait(daemon);
}

#[test]
fn work_after_shutdown_is_refused_with_shutting_down() {
    let daemon = spawn_stpd(&["--drain-timeout-ms", "2000"], None);
    let addr = daemon.addr.clone();
    let mut shut = Conn::open(&addr);
    let ack = shut.roundtrip("{\"op\":\"shutdown\"}", WINDOW);
    assert_eq!(status(&ack), "ok");
    // A pre-existing connection racing the drain either gets the
    // structured refusal or finds the socket already closed — both are
    // graceful; what must never happen is a hang or an unparsable
    // response.
    let mut conn = Conn::open(&addr);
    conn.send("{\"op\":\"synth\",\"tables\":[\"8ff8\"]}");
    if let Some(resp) = conn.recv(Duration::from_secs(5)) {
        let resp = Json::parse(&resp).unwrap();
        assert_eq!(status(&resp), "shutting_down", "{resp}");
    }
}

#[test]
fn stpd_cli_rejects_usage_errors_with_exit_2() {
    for args in [
        vec!["--capacity", "0"],
        vec!["--capacity", "lots"],
        vec!["--capacity"],
        vec!["--timeout-ms", "0"],
        vec!["--timeout-ms", "-5"],
        vec!["--drain-timeout-ms", "soon"],
        vec!["--max-frame-bytes", "0"],
        vec!["--max-gates", "0"],
        vec!["--jobs", "many"],
        vec!["--log", "loud"],
        vec!["--unknown-flag"],
    ] {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_stpd"))
            .args(&args)
            .output()
            .expect("run stpd");
        assert_eq!(
            output.status.code(),
            Some(2),
            "stpd {args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("error:"),
            "stpd {args:?} must explain itself"
        );
    }
}

#[test]
fn loadgen_cli_rejects_usage_errors_with_exit_2() {
    for args in [
        vec!["--addr", "127.0.0.1:1", "--connections", "0"],
        vec!["--addr", "127.0.0.1:1", "--connections", "1,x"],
        vec!["--addr", "127.0.0.1:1", "--requests", "0"],
        vec!["--addr", "127.0.0.1:1", "--rate", "0"],
        vec!["--addr", "127.0.0.1:1", "--rate", "nan"],
        vec!["--addr", "127.0.0.1:1", "--arity", "9"],
        vec!["--addr", "127.0.0.1:1", "--classes", "0"],
        vec!["--addr", "127.0.0.1:1", "--timeout-ms", "0"],
        vec!["--addr", "127.0.0.1:1", "--oversized-bytes", "0"],
        vec!["--addr", "127.0.0.1:1", "--bogus"],
        vec!["--connections", "1"],
    ] {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_loadgen"))
            .args(&args)
            .output()
            .expect("run loadgen");
        assert_eq!(
            output.status.code(),
            Some(2),
            "loadgen {args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
