//! CI drift gate for the committed serve baseline.
//!
//! `BENCH_serve.json` (repo root, written by the `loadgen` binary)
//! records the fixed request mix against a capacity-32, jobs-1 daemon
//! at 1, 4, and 16 connections. The mix is seeded and the admission
//! gate never engages at this load, so every *count* — requests sent
//! and answered, probe acknowledgments, admission and store counters —
//! is deterministic on any machine; only latencies, throughput, and
//! the coalescing split vary. This test re-runs the mix against a
//! fresh daemon and fails on any drift in the pinned counts.

mod common;

use std::process::Command;

use common::{shutdown_and_wait, spawn_stpd, Scratch};
use stp_telemetry::Json;

const RERECORD: &str = "re-record with the recipe in EXPERIMENTS.md (load-test section) only \
                        if the change in daemon behaviour is intentional";

/// Per-row fields that must not drift (everything but wall/latency).
const PINNED_ROW_FIELDS: &[&str] = &[
    "connections",
    "sent",
    "ok",
    "timeout",
    "overloaded",
    "error",
    "lost",
    "malformed_sent",
    "malformed_acked",
    "oversized_sent",
    "oversized_acked",
];

/// Server counters that must not drift. `serve.coalesced` and the
/// engine counters are timing- or scheduling-dependent and stay
/// informational.
const PINNED_COUNTERS: &[&str] = &[
    "serve.accepted",
    "serve.malformed",
    "serve.rejected_overload",
    "serve.timeouts",
    "store.misses",
    "store.hits",
    "store.trivial_hits",
];

fn committed() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    let doc = Json::parse(&text).expect("BENCH_serve.json must parse");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("stp-bench-serve v1"),
        "unknown baseline schema"
    );
    doc
}

#[test]
fn serve_load_counts_match_committed_baseline() {
    let pinned_doc = committed();
    let scratch = Scratch::new("baseline");
    let out = scratch.path("serve.json");

    let daemon =
        spawn_stpd(&["--capacity", "32", "--jobs", "1", "--max-frame-bytes", "4096"], None);
    let output = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--addr",
            &daemon.addr,
            "--connections",
            "1,4,16",
            "--requests",
            "60",
            "--rate",
            "200",
            "--seed",
            "42",
            "--arity",
            "3",
            "--classes",
            "24",
            "--timeout-ms",
            "30000",
            "--malformed",
            "6",
            "--oversized",
            "3",
            "--oversized-bytes",
            "8192",
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("run loadgen");
    assert!(output.status.success(), "loadgen failed: {}", String::from_utf8_lossy(&output.stderr));
    shutdown_and_wait(daemon);

    let fresh = Json::parse(&std::fs::read_to_string(&out).expect("loadgen wrote the doc"))
        .expect("fresh doc parses");

    let pinned_rows = pinned_doc.get("rows").and_then(Json::as_arr).expect("baseline rows");
    let fresh_rows = fresh.get("rows").and_then(Json::as_arr).expect("fresh rows");
    assert_eq!(fresh_rows.len(), pinned_rows.len(), "row count drifted; {RERECORD}");
    for (pinned, fresh) in pinned_rows.iter().zip(fresh_rows) {
        let conns = pinned.get("connections").and_then(Json::as_u64).unwrap();
        for &field in PINNED_ROW_FIELDS {
            assert_eq!(
                fresh.get(field).and_then(Json::as_u64),
                pinned.get(field).and_then(Json::as_u64),
                "row connections={conns}: `{field}` drifted; {RERECORD}"
            );
        }
        // The burst must have been fully answered — no silent losses
        // hiding inside a re-recorded baseline either.
        assert_eq!(pinned.get("lost").and_then(Json::as_u64), Some(0), "baseline has losses");
        assert_eq!(
            pinned.get("malformed_acked").and_then(Json::as_u64),
            pinned.get("malformed_sent").and_then(Json::as_u64),
            "baseline dropped malformed probes"
        );
    }

    let pinned_counters = pinned_doc.get("server_counters").expect("baseline counters");
    let fresh_counters = fresh.get("server_counters").expect("fresh counters");
    for &name in PINNED_COUNTERS {
        assert_eq!(
            fresh_counters.get(name).and_then(Json::as_u64).unwrap_or(0),
            pinned_counters.get(name).and_then(Json::as_u64).unwrap_or(0),
            "server counter `{name}` drifted; {RERECORD}"
        );
    }
    // Self-consistency of the admission ledger: everything sent was
    // either admitted or shed, and nothing was shed at this load.
    let sent: u64 = fresh_rows.iter().filter_map(|r| r.get("sent").and_then(Json::as_u64)).sum();
    assert_eq!(
        fresh_counters.get("serve.accepted").and_then(Json::as_u64),
        Some(sent),
        "admitted != sent at an under-capacity load"
    );
}
