//! Shared helpers for the stpd integration suites: scratch dirs, daemon
//! spawning (parsing the `stpd listening on <addr>` line), and a tiny
//! line-oriented client.

// Each integration binary compiles its own copy and uses a subset.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use stp_telemetry::Json;

/// Self-cleaning per-test temp dir.
pub struct Scratch(pub PathBuf);

impl Scratch {
    pub fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("stp-serve-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    pub fn store(&self) -> PathBuf {
        self.0.join("store.txt")
    }

    pub fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A running stpd child. Killed on drop unless it already exited.
pub struct Daemon {
    pub child: Child,
    pub addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `stpd` on an ephemeral port with `extra` flags (and optional
/// failpoint env), waiting for the listening line on stdout.
pub fn spawn_stpd(extra: &[&str], failpoints: Option<&str>) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_stpd"));
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .env("STP_JOBS", "1");
    match failpoints {
        Some(spec) => cmd.env("STP_FAILPOINTS", spec),
        None => cmd.env_remove("STP_FAILPOINTS"),
    };
    let mut child = cmd.spawn().expect("spawn stpd");
    let stdout = child.stdout.take().expect("stpd stdout is piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read stpd listening line");
    let addr = line
        .trim()
        .strip_prefix("stpd listening on ")
        .unwrap_or_else(|| panic!("unexpected stpd banner: {line:?}"))
        .to_string();
    Daemon { child, addr }
}

/// One client connection speaking the line protocol.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    pub fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect to stpd");
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_millis(50))).expect("set client read timeout");
        Conn { stream, buf: Vec::new() }
    }

    /// Sends one frame (newline appended).
    pub fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send frame");
        self.stream.write_all(b"\n").expect("send newline");
    }

    /// Sends raw bytes verbatim (for malformed/oversized probes).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send raw bytes");
    }

    /// Reads one response line within `window`; `None` on timeout or a
    /// closed socket with no buffered line.
    pub fn recv(&mut self, window: Duration) -> Option<String> {
        let deadline = Instant::now() + window;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Some(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
            }
            if Instant::now() >= deadline {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
    }

    /// Sends a frame and parses the next response line as JSON.
    pub fn roundtrip(&mut self, line: &str, window: Duration) -> Json {
        self.send(line);
        let resp =
            self.recv(window).unwrap_or_else(|| panic!("no response within {window:?} to {line}"));
        Json::parse(&resp).unwrap_or_else(|e| panic!("unparsable response {resp:?}: {e}"))
    }

    /// `true` once the server has closed this connection (EOF).
    pub fn closed(&mut self, window: Duration) -> bool {
        let deadline = Instant::now() + window;
        let mut chunk = [0u8; 256];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return true,
            }
            if Instant::now() >= deadline {
                return false;
            }
        }
    }
}

/// The `status` field of a response.
pub fn status(resp: &Json) -> &str {
    resp.get("status").and_then(Json::as_str).unwrap_or("<missing>")
}

/// A named counter out of a `stats` response (0 when absent).
pub fn counter(stats: &Json, name: &str) -> u64 {
    stats.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

/// Requests a graceful shutdown and waits for exit, asserting exit 0.
pub fn shutdown_and_wait(mut daemon: Daemon) {
    let mut conn = Conn::open(&daemon.addr);
    let resp = conn.roundtrip("{\"op\":\"shutdown\"}", Duration::from_secs(5));
    assert_eq!(status(&resp), "ok", "shutdown must be acknowledged: {resp}");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match daemon.child.try_wait().expect("poll stpd") {
            Some(code) => {
                assert!(code.success(), "stpd must exit 0 after graceful shutdown, got {code}");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "stpd did not exit after shutdown");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}
