//! Allocation regression test for the memo-hit path.
//!
//! The factorization memo used to build an owned `(Vec<u64>, TreeShape)`
//! key for **every** probe — cloning the spec words and the whole shape
//! tree even when the answer was already memoized. The engine now
//! interns shapes to dense ids and keys the per-shape map by the table
//! alone, so a warmed probe borrows both halves of the key and performs
//! no allocation at all.
//!
//! This test pins that with a counting global allocator: after a
//! warm-up call, re-running `chains_on_shape` on a memoized
//! (unrealizable) subproblem must not allocate. It lives in its own
//! integration-test binary so the `#[global_allocator]` cannot
//! interfere with any other test, and so no parallel test thread can
//! allocate concurrently with the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stp_fence::shapes_with_gates;
use stp_synth::{FactorConfig, Factorizer};
use stp_tt::TruthTable;

/// `System`, plus a count of every allocation request (`alloc`,
/// `alloc_zeroed`, and growth through `realloc`).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic and allocates nothing itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_memo_probes_do_not_allocate() {
    // 3-input majority is prime: no 2-gate tree realizes it, so a
    // warmed engine answers every probe from the memo without building
    // chains (chain construction for realizable specs allocates by
    // design — the guarantee under test is the *probe*).
    let maj = TruthTable::from_hex(3, "e8").unwrap();
    let shapes = shapes_with_gates(2);
    let mut engine = Factorizer::new(FactorConfig::default());
    // Warm-up: fill the memo and intern the telemetry counter handles
    // (the first `counter!` hit at each site allocates the registry
    // entry; every later hit is a cached `&'static` add).
    for _ in 0..2 {
        for shape in &shapes {
            assert!(engine.chains_on_shape(&maj, shape).unwrap().is_empty());
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        for shape in &shapes {
            assert!(engine.chains_on_shape(&maj, shape).unwrap().is_empty());
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(delta, 0, "memo-hit path allocated {delta} times across 100 warmed sweeps");

    // Same guarantee with profiling ON: spans around the probes (the
    // shape of the scheduler's inner loop) must stay allocation-free
    // once labels are interned and the profile tree nodes exist. This
    // shares the test fn above deliberately — a second #[test] would
    // run on a parallel thread and its allocations would pollute the
    // measured windows.
    stp_telemetry::profile::reset();
    stp_telemetry::profile::set_enabled(true);
    let probe_profiled = |engine: &mut Factorizer| {
        for shape in &shapes {
            let _shape = stp_telemetry::Span::enter("memo_alloc.shape");
            let _factor = stp_telemetry::Span::enter("phase.factorize");
            assert!(engine.chains_on_shape(&maj, shape).unwrap().is_empty());
        }
    };
    // Warm-up: interns the labels, creates the tree nodes, grows the
    // thread-local path stack and the span histograms to capacity.
    for _ in 0..2 {
        probe_profiled(&mut engine);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        probe_profiled(&mut engine);
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    stp_telemetry::profile::set_enabled(false);
    assert_eq!(delta, 0, "profiled memo-hit path allocated {delta} times across 100 warmed sweeps");
    let tree = stp_telemetry::profile::take();
    let factorize =
        tree.find(&["memo_alloc.shape", "phase.factorize"]).expect("profiled spans recorded");
    assert_eq!(factorize.calls as usize, 102 * shapes.len());
}
