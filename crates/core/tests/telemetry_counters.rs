//! End-to-end plumbing check for the factorization telemetry counters.
//!
//! The engine batches its tallies locally and flushes them to the
//! global registry once per `chains_on_shape` call; this test pins that
//! the flush actually reaches a registry snapshot delta — the contract
//! the bench harness and the committed `BENCH_factor.json` baseline
//! rely on. It lives in its own integration binary because it reads the
//! global registry and must not race other tests' counter traffic.

use stp_fence::TreeShape;
use stp_synth::{FactorConfig, Factorizer};
use stp_tt::TruthTable;

#[test]
fn factor_counters_reach_the_global_registry() {
    let before = stp_telemetry::metrics_global().snapshot();
    let spec = TruthTable::from_hex(4, "8ff8").unwrap();
    let leaf = TreeShape::Leaf;
    let pair = TreeShape::node(leaf.clone(), leaf.clone());
    let shape = TreeShape::node(pair.clone(), pair);
    let mut engine = Factorizer::new(FactorConfig::default());
    let chains = engine.chains_on_shape(&spec, &shape).unwrap();
    assert_eq!(chains.len(), 4, "running example must enumerate all four chains");
    let delta = stp_telemetry::metrics_global().snapshot().delta_since(&before);
    assert!(*delta.counters.get("factor.subproblems").unwrap_or(&0) > 0);
    assert!(*delta.counters.get("factor.charts_built").unwrap_or(&0) > 0);
    // A second, fully memoized pass flushes hits but explores nothing.
    let before = stp_telemetry::metrics_global().snapshot();
    let leaf = TreeShape::Leaf;
    let pair = TreeShape::node(leaf.clone(), leaf.clone());
    let shape = TreeShape::node(pair.clone(), pair);
    let again = engine.chains_on_shape(&spec, &shape).unwrap();
    assert_eq!(again.len(), 4);
    let delta = stp_telemetry::metrics_global().snapshot().delta_since(&before);
    assert!(*delta.counters.get("factor.memo_hits").unwrap_or(&0) > 0);
    assert_eq!(*delta.counters.get("factor.subproblems").unwrap_or(&0), 0);
    assert_eq!(*delta.counters.get("factor.charts_built").unwrap_or(&0), 0);
}
