//! Conversions between truth tables and STP canonical forms.
//!
//! The synthesized function enters the engine as a [`TruthTable`]
//! (LSB-first minterm order) and is "encoded into its STP canonical
//! form" (§III of the paper) — a [`LogicMatrix`] whose columns follow
//! the STP convention (all-True first). These helpers keep the two
//! conventions straight.

use stp_matrix::LogicMatrix;
use stp_tt::TruthTable;

use crate::error::SynthesisError;

/// Encodes a truth table as its STP canonical form `M_Φ` (Property 2).
///
/// # Errors
///
/// Returns [`SynthesisError::Matrix`] when the arity exceeds the logic
/// matrix substrate's limit.
///
/// # Examples
///
/// ```
/// use stp_synth::encode_canonical_form;
/// use stp_tt::TruthTable;
///
/// let f = TruthTable::from_hex(4, "8ff8")?;
/// let m = encode_canonical_form(&f)?;
/// // Column 0 is the all-True assignment: f(1,1,1,1) = bit 15 of 0x8ff8.
/// assert!(m.bit(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode_canonical_form(tt: &TruthTable) -> Result<LogicMatrix, SynthesisError> {
    Ok(LogicMatrix::from_tt_words(tt.words(), tt.num_vars())?)
}

/// Decodes an STP canonical form back into a truth table.
///
/// # Errors
///
/// Returns [`SynthesisError::TruthTable`] when the arity exceeds the
/// truth-table substrate's limit.
pub fn decode_canonical_form(m: &LogicMatrix) -> Result<TruthTable, SynthesisError> {
    Ok(TruthTable::from_words(m.arity(), m.to_tt_words())?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_function() {
        for hex in ["8ff8", "6996", "cafe", "0000", "ffff"] {
            let tt = TruthTable::from_hex(4, hex).unwrap();
            let m = encode_canonical_form(&tt).unwrap();
            assert_eq!(decode_canonical_form(&m).unwrap(), tt);
        }
    }

    #[test]
    fn column_zero_is_all_true_assignment() {
        let tt = TruthTable::from_hex(2, "8").unwrap(); // AND
        let m = encode_canonical_form(&tt).unwrap();
        // AND(1,1) = 1: column 0 True; AND(0,0) = 0: last column False.
        assert!(m.bit(0));
        assert!(!m.bit(3));
        // The canonical form of AND is the structural matrix M_c.
        assert_eq!(m, LogicMatrix::structural_and());
    }

    #[test]
    fn values_agree_pointwise() {
        let tt = TruthTable::from_hex(3, "d8").unwrap();
        let m = encode_canonical_form(&tt).unwrap();
        for mt in 0..8usize {
            let assign: Vec<bool> = (0..3).map(|i| (mt >> i) & 1 == 1).collect();
            assert_eq!(m.value(&assign), tt.bit(mt), "minterm {mt}");
        }
    }
}
