//! STP-based matrix factorization of canonical forms over DAG
//! topologies (§III-B of the paper).
//!
//! The paper decomposes the canonical form `M_Φ` of the target function
//! by repeatedly splitting it into "quartering parts": `M_Φ` factors
//! through a 2-input top gate iff the quartered matrix has at most **two
//! unique parts** per axis (Examples 5–6), with the power-reducing
//! matrix `M_r` admitting repeated variables (Property 3) and the swap
//! matrix `M_w` admitting arbitrary variable orders (Property 4).
//!
//! This module implements that factorization in its equivalent
//! column-grouping form (see `DESIGN.md`, *Semantics fixed for this
//! implementation*):
//!
//! * a candidate split partitions the support into `A` (exclusive to the
//!   left operand), `B` (exclusive to the right operand) and `S`
//!   (shared — the `M_r` case); enumerating all splits plays the role of
//!   the swap matrices;
//! * for each assignment of the shared variables, the decomposition
//!   chart must have at most two distinct row patterns and two distinct
//!   column patterns — the "two unique quartering parts" test; shared
//!   assignments contribute the `x` don't-care entries of Property 3;
//! * every consistent 2-labelling yields one candidate operand pair, so
//!   **all** factorizations are produced (the paper's one-pass AllSAT
//!   over solutions — Example 5 finds exactly two).
//!
//! The recursion walks a [`TreeShape`]; reconvergence enters through
//! shared primary inputs, which is precisely the reach of the paper's
//! `M_r`/`M_w` calculus.
//!
//! # Word-level kernels
//!
//! The inner loops run on two representations (see `DESIGN.md`,
//! *Word-level factorization kernels*). On the **fast path** — spec of
//! at most [`FAST_MAX_VARS`] inputs, `|A| + |B| ≤ 6` and `|S| ≤ 6` —
//! the spec is compacted onto the split's variable order with the
//! `stp-tt` kernel primitives, so every decomposition chart is a
//! contiguous power-of-two-aligned bit slice, patterns and labellings
//! are `u64` masks, the two-pattern test and the consistency check are
//! mask algebra, and candidate operands are scattered word-level into
//! stack buffers: the split/combination loops never allocate. Larger
//! splits fall back to the original scalar implementation
//! ([`Factorizer::factor_split_naive`], also the reference the fuzz
//! tests pin the kernels against). Both paths enumerate candidates in
//! the same order and share the same dedup keys, so the produced
//! chains, their order, and the counters are identical.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use stp_chain::{Chain, OutputRef};
use stp_fence::TreeShape;
use stp_tt::kernel::{self, W4};
use stp_tt::TruthTable;

use crate::error::SynthesisError;

/// Specs up to this arity use the single-word fast path (all suite
/// workloads top out at 8 variables; a table then spans ≤ 4 words and a
/// chart cell block fits one `u64`).
const FAST_MAX_VARS: usize = 8;

/// Specs up to this arity use the multi-word wide path when the split
/// fits `|A| + |B| ≤ 8` and `|S| ≤ 8`: the compact spec spans at most
/// [`WIDE_WORDS`] words, a chart cell block fits one [`W4`], and the
/// shared-assignment loop stays ≤ [`WIDE_SHARED`] entries.
const WIDE_MAX_VARS: usize = 12;

/// Packed words of a [`WIDE_MAX_VARS`]-input table (`2^12 / 64`).
const WIDE_WORDS: usize = 64;

/// Maximum shared assignments on the wide path (`2^8`).
const WIDE_SHARED: usize = 256;

/// One deadline poll (`Instant::now()`) per this many checkpoint calls;
/// the cancel flag is still read on every call, so cooperative
/// cancellation stays prompt while the search loop stops paying for a
/// clock read per split/combination.
const DEADLINE_POLL_MASK: u32 = 1024 - 1;

/// One memo probe in this many is timed and extrapolated into the
/// `factor.memo_probe_ns` counter.
const PROBE_SAMPLE: u32 = 256;

/// Configuration for the factorization engine.
#[derive(Debug, Clone)]
pub struct FactorConfig {
    /// Cap on realizations materialized per (function, shape) node; the
    /// engine still proves realizability beyond the cap but stops
    /// enumerating. The paper's suites average between 12 and 192
    /// solutions per instance, well under the default of 4096.
    pub max_realizations: usize,
    /// Optional wall-clock deadline; factorization aborts with
    /// [`SynthesisError::Timeout`] once it passes.
    pub deadline: Option<Instant>,
    /// Optional cooperative cancellation flag, shared with the parallel
    /// search driver: once set, the engine aborts at its next deadline
    /// checkpoint (reported as [`SynthesisError::Timeout`], which the
    /// driver reinterprets — see `parallel.rs`).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Optional *external* kill switch, distinct from `cancel`: the
    /// search driver re-arms `cancel` every gate-count round (it doubles
    /// as the solution-cap brake), so a host that needs to revoke a
    /// whole synthesis run — e.g. `stpd` cancelling in-flight requests
    /// at its drain deadline — hands the same `abort` flag to every
    /// round. Once set it is never cleared by the engine; the next
    /// deadline checkpoint reports [`SynthesisError::Timeout`].
    pub abort: Option<Arc<AtomicBool>>,
    /// Differential-test knob: route every split through the scalar
    /// reference implementation ([`Factorizer::factor_split_naive`])
    /// instead of the word-level fast/wide paths. The differential
    /// suites compare a forced-naive engine against the default one;
    /// production callers leave this `false`.
    pub force_naive: bool,
}

impl Default for FactorConfig {
    fn default() -> Self {
        FactorConfig {
            max_realizations: 4096,
            deadline: None,
            cancel: None,
            abort: None,
            force_naive: false,
        }
    }
}

/// A realization of a function on a tree shape: leaves carry primary
/// input indices, internal nodes carry 4-bit gate truth tables.
///
/// Subtrees are shared through [`Arc`] (not `Rc`) so a [`Factorizer`]
/// — and the realization forests inside its memo table — can move
/// between the worker threads of the parallel search driver.
#[derive(Debug, PartialEq, Eq, Hash)]
enum RealTree {
    Leaf(usize),
    Node(u8, Arc<RealTree>, Arc<RealTree>),
}

/// Dedup key for a candidate `(g, h1, h2)` triple within one
/// factorization node: the same triple can surface under several
/// splits, so keys are full operand tables — inline arrays on the ≤ 8
/// variable path (no heap traffic in the combination loop), owned words
/// beyond that.
#[derive(Debug, PartialEq, Eq, Hash)]
enum SeenKey {
    Small(u8, [u64; 4], [u64; 4]),
    Big(u8, Vec<u64>, Vec<u64>),
}

fn seen_key(g: u8, h1: &TruthTable, h2: &TruthTable) -> SeenKey {
    if h1.num_vars() <= FAST_MAX_VARS {
        let mut w1 = [0u64; 4];
        w1[..h1.words().len()].copy_from_slice(h1.words());
        let mut w2 = [0u64; 4];
        w2[..h2.words().len()].copy_from_slice(h2.words());
        SeenKey::Small(g, w1, w2)
    } else {
        SeenKey::Big(g, h1.words().to_vec(), h2.words().to_vec())
    }
}

/// Initial slot-array capacity of a [`MemoTable`] (a power of two).
const MEMO_INITIAL_SLOTS: usize = 64;

/// One slot of the packed memo table: the spec words inline, the arity
/// (the same words encode different functions at different arities),
/// and the realization forest. `val.is_some()` doubles as the
/// occupancy flag.
#[derive(Debug, Clone)]
struct MemoSlot {
    key: [u64; 4],
    num_vars: u8,
    val: Option<Arc<Vec<Arc<RealTree>>>>,
}

const EMPTY_SLOT: MemoSlot = MemoSlot { key: [0; 4], num_vars: 0, val: None };

/// Fixed multiply-xor mix (the 64-bit finalizer of MurmurHash3, folded
/// over the key words). Deterministic across runs and processes —
/// unlike `RandomState` — so probe sequences, and therefore timing,
/// reproduce exactly.
fn memo_hash(key: &[u64; 4], num_vars: u8) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ num_vars as u64;
    for &w in key {
        h = (h ^ w).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    h
}

/// Packs a ≤ [`FAST_MAX_VARS`]-input table into an inline slot key.
fn pack_key(h: &TruthTable) -> [u64; 4] {
    let mut key = [0u64; 4];
    key[..h.words().len()].copy_from_slice(h.words());
    key
}

/// Per-shape memo table: a packed open-addressing slot array with
/// inline `[u64; 4]` keys for specs of at most [`FAST_MAX_VARS`]
/// inputs, plus a conventional spill map for wider specs.
///
/// The previous design was `HashMap<TruthTable, Arc<_>>`: every probe
/// paid SipHash over a heap-allocated key, and every entry carried a
/// `TruthTable` (a `Vec` header plus a separate word allocation). The
/// full NPN4 run does 16.7M probes, all at arity ≤ 8 — inlining the
/// key words into the slot makes a probe one multiply-xor hash plus a
/// linear scan of cache-resident 48-byte slots, and an entry costs
/// exactly one slot (amortized ⁸⁄₇ under the 7/8 load cap) plus its
/// forest `Arc`.
#[derive(Debug, Default)]
struct MemoTable {
    slots: Vec<MemoSlot>,
    /// Occupied slots (packed entries only; the spill map tracks its
    /// own length).
    len: usize,
    spill: HashMap<TruthTable, Arc<Vec<Arc<RealTree>>>>,
}

impl MemoTable {
    /// Probes for `h`, cloning out the forest on a hit.
    fn get(&self, h: &TruthTable) -> Option<Arc<Vec<Arc<RealTree>>>> {
        if h.num_vars() > FAST_MAX_VARS {
            return self.spill.get(h).map(Arc::clone);
        }
        if self.slots.is_empty() {
            return None;
        }
        let key = pack_key(h);
        let nv = h.num_vars() as u8;
        let mask = self.slots.len() - 1;
        let mut i = memo_hash(&key, nv) as usize & mask;
        loop {
            let slot = &self.slots[i];
            match &slot.val {
                None => return None,
                Some(val) if slot.key == key && slot.num_vars == nv => {
                    return Some(Arc::clone(val));
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts (or replaces) `h`'s forest, returning how many bytes of
    /// slot storage the insert newly allocated (nonzero only when the
    /// table grew).
    fn insert(&mut self, h: &TruthTable, val: Arc<Vec<Arc<RealTree>>>) -> u64 {
        if h.num_vars() > FAST_MAX_VARS {
            self.spill.insert(h.clone(), val);
            return 0;
        }
        // Grow before probing so the insert scan always finds a free
        // slot; ×8/7 keeps the load factor at most 7/8.
        let grown = if (self.len + 1) * 8 > self.slots.len() * 7 { self.grow() } else { 0 };
        let key = pack_key(h);
        let nv = h.num_vars() as u8;
        let mask = self.slots.len() - 1;
        let mut i = memo_hash(&key, nv) as usize & mask;
        loop {
            let slot = &mut self.slots[i];
            match &slot.val {
                None => {
                    *slot = MemoSlot { key, num_vars: nv, val: Some(val) };
                    self.len += 1;
                    return grown;
                }
                Some(_) if slot.key == key && slot.num_vars == nv => {
                    slot.val = Some(val);
                    return grown;
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Doubles the slot array (or allocates the initial one) and
    /// rehashes every occupied slot; returns the newly allocated bytes.
    fn grow(&mut self) -> u64 {
        let new_cap = if self.slots.is_empty() { MEMO_INITIAL_SLOTS } else { self.slots.len() * 2 };
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        let mask = new_cap - 1;
        let old_cap = old.len();
        for slot in old.into_iter().filter(|s| s.val.is_some()) {
            let mut i = memo_hash(&slot.key, slot.num_vars) as usize & mask;
            while self.slots[i].val.is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
        ((new_cap - old_cap) * std::mem::size_of::<MemoSlot>()) as u64
    }

    /// Entries stored (packed plus spilled).
    #[cfg(test)]
    fn entries(&self) -> u64 {
        (self.len + self.spill.len()) as u64
    }
}

/// The factorization engine with its memo table.
///
/// One engine instance should be reused across the shapes explored for a
/// single specification: sub-function factorizations recur constantly
/// (that reuse is a large part of the paper's speed on DSD-structured
/// functions).
///
/// Shapes are interned to dense ids and the memo is a per-shape
/// [`MemoTable`] keyed by the table words alone, so a probe neither
/// allocates nor chases a heap key (the previous design cloned the
/// spec words *and* the shape per call just to build the lookup key,
/// and kept a heap `TruthTable` per entry).
#[derive(Debug)]
pub struct Factorizer {
    config: FactorConfig,
    shape_ids: HashMap<TreeShape, u32>,
    memo: Vec<MemoTable>,
    /// Number of factorization nodes explored (for the harness).
    nodes_explored: u64,
    /// Number of memo-table hits across [`Factorizer::realize`] calls.
    memo_hits: u64,
    /// Number of decomposition charts materialized (fast or naive path).
    charts_built: u64,
    /// Sampled nanoseconds spent probing the memo (one probe in
    /// [`PROBE_SAMPLE`] is timed and extrapolated).
    memo_probe_ns: u64,
    /// Bytes of packed memo slot storage currently allocated
    /// (monotonic: slot arrays only grow).
    memo_bytes: u64,
    /// Entries resident across the per-shape memo tables.
    memo_entries: u64,
    probe_tick: u32,
    poll_tick: u32,
}

impl Factorizer {
    /// Creates an engine with the given configuration.
    pub fn new(config: FactorConfig) -> Self {
        Factorizer {
            config,
            shape_ids: HashMap::new(),
            memo: Vec::new(),
            nodes_explored: 0,
            memo_hits: 0,
            charts_built: 0,
            memo_probe_ns: 0,
            memo_bytes: 0,
            memo_entries: 0,
            probe_tick: 0,
            poll_tick: 0,
        }
    }

    /// Number of (function, shape) factorization subproblems examined.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes_explored
    }

    /// Number of memo-table hits (subproblems answered without search).
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Number of decomposition charts built across every split path —
    /// identical between the fast, wide, and naive routes, so the
    /// differential suites pin it as a search-shape fingerprint.
    pub fn charts_built(&self) -> u64 {
        self.charts_built
    }

    /// Enumerates every chain realizing `spec` on the given tree shape
    /// (all leaf-to-PI bindings and all gate assignments), up to the
    /// configured cap.
    ///
    /// The returned chains use only operators that depend on both
    /// fanins; callers are expected to verify them with the circuit
    /// solver (the paper's step iv).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Timeout`] when the configured deadline
    /// expires mid-search.
    pub fn chains_on_shape(
        &mut self,
        spec: &TruthTable,
        shape: &TreeShape,
    ) -> Result<Vec<Chain>, SynthesisError> {
        let support_len = spec.support_mask().count_ones() as usize;
        if support_len > shape.leaf_count() || support_len < 2 {
            // Trivial specs (constants, literals) need no gates and are
            // handled by the synthesis driver, not by factorization.
            return Ok(Vec::new());
        }
        let nodes_before = self.nodes_explored;
        let hits_before = self.memo_hits;
        let charts_before = self.charts_built;
        let probe_before = self.memo_probe_ns;
        let bytes_before = self.memo_bytes;
        let entries_before = self.memo_entries;
        let result = self.realize(spec, shape);
        // Flush this call's exploration to the global metrics (batched —
        // the recursion itself touches only the engine-local tallies).
        // The flush runs on the thread that drove the search, so every
        // delta — including the sampled `factor.memo_probe_ns` and the
        // `factor.memo_bytes` growth — lands in that worker's
        // `CounterScope`, not just the global registry.
        stp_telemetry::counter!("factor.subproblems").add(self.nodes_explored - nodes_before);
        stp_telemetry::counter!("factor.memo_hits").add(self.memo_hits - hits_before);
        stp_telemetry::counter!("factor.charts_built").add(self.charts_built - charts_before);
        stp_telemetry::counter!("factor.memo_probe_ns").add(self.memo_probe_ns - probe_before);
        stp_telemetry::counter!("factor.memo_bytes").add(self.memo_bytes - bytes_before);
        stp_telemetry::counter!("factor.memo_entries").add(self.memo_entries - entries_before);
        let trees = result?;
        let mut chains = Vec::with_capacity(trees.len());
        let mut seen = HashSet::new();
        for tree in trees.iter() {
            let chain = tree_to_chain(tree, spec.num_vars());
            if seen.insert(chain_key(&chain)) {
                chains.push(chain);
            }
        }
        Ok(chains)
    }

    fn check_deadline(&mut self) -> Result<(), SynthesisError> {
        stp_faultsim::fail_point!("factor.deadline", err = Err(SynthesisError::Timeout));
        if let Some(flag) = &self.config.abort {
            if flag.load(Ordering::Acquire) {
                return Err(SynthesisError::Timeout);
            }
        }
        if let Some(flag) = &self.config.cancel {
            if flag.load(Ordering::Acquire) {
                return Err(SynthesisError::Timeout);
            }
        }
        if let Some(d) = self.config.deadline {
            // Clock reads are throttled; the first checkpoint of a fresh
            // engine still polls, so an already-expired deadline aborts
            // immediately.
            self.poll_tick = self.poll_tick.wrapping_add(1);
            if self.poll_tick & DEADLINE_POLL_MASK == 1 && Instant::now() >= d {
                return Err(SynthesisError::Timeout);
            }
        }
        Ok(())
    }

    /// Interns `shape`, returning its dense memo index.
    fn shape_id(&mut self, shape: &TreeShape) -> usize {
        if let Some(&id) = self.shape_ids.get(shape) {
            return id as usize;
        }
        let id = self.memo.len();
        self.shape_ids.insert(shape.clone(), id as u32);
        self.memo.push(MemoTable::default());
        id
    }

    /// Core recursion: all realizations of `h` on `shape`.
    fn realize(
        &mut self,
        h: &TruthTable,
        shape: &TreeShape,
    ) -> Result<Arc<Vec<Arc<RealTree>>>, SynthesisError> {
        let sid = self.shape_id(shape);
        // Time the probe alone (shape interning excluded): one probe in
        // [`PROBE_SAMPLE`] is measured and extrapolated.
        self.probe_tick = self.probe_tick.wrapping_add(1);
        let t0 =
            if self.probe_tick & (PROBE_SAMPLE - 1) == 0 { Some(Instant::now()) } else { None };
        let hit = self.memo[sid].get(h);
        if let Some(t0) = t0 {
            self.memo_probe_ns +=
                (t0.elapsed().as_nanos() as u64).saturating_mul(PROBE_SAMPLE as u64);
        }
        if let Some(hit) = hit {
            self.memo_hits += 1;
            return Ok(hit);
        }
        self.check_deadline()?;
        self.nodes_explored += 1;
        let result = match shape {
            TreeShape::Leaf => {
                // A leaf realizes exactly a positive literal; complements
                // are absorbed by the parent gate's operator choice.
                let mut out = Vec::new();
                let sup = h.support();
                if sup.len() == 1 {
                    let v = sup[0];
                    if let Ok(proj) = TruthTable::variable(h.num_vars(), v) {
                        if *h == proj {
                            out.push(Arc::new(RealTree::Leaf(v)));
                        }
                    }
                }
                out
            }
            TreeShape::Node(s1, s2) => self.realize_node(h, s1, s2)?,
        };
        let rc = Arc::new(result);
        self.memo_bytes += self.memo[sid].insert(h, Arc::clone(&rc));
        self.memo_entries += 1;
        Ok(rc)
    }

    fn realize_node(
        &mut self,
        h: &TruthTable,
        s1: &TreeShape,
        s2: &TreeShape,
    ) -> Result<Vec<Arc<RealTree>>, SynthesisError> {
        let n = h.num_vars();
        let sup_mask = h.support_mask();
        let mut support = [0usize; 16];
        let mut d = 0usize;
        for v in 0..n {
            if sup_mask >> v & 1 == 1 {
                support[d] = v;
                d += 1;
            }
        }
        let l1 = s1.leaf_count();
        let l2 = s2.leaf_count();
        let symmetric = s1 == s2;
        let mut out: Vec<Arc<RealTree>> = Vec::new();
        if d > l1 + l2 || d == 0 {
            return Ok(out);
        }
        let mut seen_triples: HashSet<SeenKey> = HashSet::new();
        // Enumerate splits: each support variable goes to A (left
        // exclusive), B (right exclusive), or S (shared).
        let mut split = [0u8; 16];
        let mut a_vars = [0usize; 16];
        let mut b_vars = [0usize; 16];
        let mut s_vars = [0usize; 16];
        'splits: loop {
            self.check_deadline()?;
            let (mut na, mut nb, mut ns) = (0usize, 0usize, 0usize);
            for (&cls, &v) in split[..d].iter().zip(&support[..d]) {
                match cls {
                    0 => {
                        a_vars[na] = v;
                        na += 1;
                    }
                    1 => {
                        b_vars[nb] = v;
                        nb += 1;
                    }
                    _ => {
                        s_vars[ns] = v;
                        ns += 1;
                    }
                }
            }
            let feasible = na + ns >= 1 && nb + ns >= 1 && na + ns <= l1 && nb + ns <= l2;
            if feasible {
                // The fast path needs the whole spec in 4 words, chart
                // cell blocks in one word, and ≤ 64 shared assignments.
                // The wide path relaxes all three by one W4: spec in 64
                // words, cell blocks in one `[u64; 4]`, ≤ 256 shared
                // assignments. Anything larger falls back to the scalar
                // reference.
                let force = self.config.force_naive;
                let fast = !force && n <= FAST_MAX_VARS && na + nb <= 6 && ns <= 6;
                let wide = !force && !fast && n <= WIDE_MAX_VARS && na + nb <= 8 && ns <= 8;
                if fast {
                    self.factor_split_fast(
                        h,
                        &a_vars[..na],
                        &b_vars[..nb],
                        &s_vars[..ns],
                        s1,
                        s2,
                        symmetric,
                        &mut seen_triples,
                        &mut out,
                    )?;
                } else if wide {
                    self.factor_split_wide(
                        h,
                        &a_vars[..na],
                        &b_vars[..nb],
                        &s_vars[..ns],
                        s1,
                        s2,
                        symmetric,
                        &mut seen_triples,
                        &mut out,
                    )?;
                } else {
                    self.factor_split_naive(
                        h,
                        &a_vars[..na],
                        &b_vars[..nb],
                        &s_vars[..ns],
                        s1,
                        s2,
                        symmetric,
                        &mut seen_triples,
                        &mut out,
                    )?;
                }
                if out.len() >= self.config.max_realizations {
                    break 'splits;
                }
            }
            // Advance the base-3 counter.
            let mut i = 0;
            loop {
                if i == d {
                    break 'splits;
                }
                split[i] += 1;
                if split[i] < 3 {
                    break;
                }
                split[i] = 0;
                i += 1;
            }
        }
        Ok(out)
    }

    /// Word-level `factor_split`: factors `h = g(h1(A ∪ S), h2(B ∪ S))`
    /// for one fixed split, appending every realization to `out`.
    ///
    /// Requires `h.num_vars() ≤ 8`, `|A| + |B| ≤ 6` and `|S| ≤ 6` (the
    /// caller gates on this). Charts, patterns and labellings live in
    /// `u64` masks and fixed stack buffers — the split and combination
    /// loops perform no heap allocation; memory is touched only when a
    /// fresh canonical candidate is materialized for recursion.
    ///
    /// Byte-equal to [`Factorizer::factor_split_naive`] in output,
    /// order, and counter increments (pinned by the differential fuzz
    /// tests below).
    #[allow(clippy::too_many_arguments)]
    fn factor_split_fast(
        &mut self,
        h: &TruthTable,
        a_vars: &[usize],
        b_vars: &[usize],
        s_vars: &[usize],
        s1: &TreeShape,
        s2: &TreeShape,
        symmetric: bool,
        seen_triples: &mut HashSet<SeenKey>,
        out: &mut Vec<Arc<RealTree>>,
    ) -> Result<(), SynthesisError> {
        let n = h.num_vars();
        let (ra, rb, rs) = (a_vars.len(), b_vars.len(), s_vars.len());
        let d = ra + rb + rs;
        let rows = 1usize << ra;
        let cols = 1usize << rb;
        let shared = 1usize << rs;
        let cells = rows * cols;
        let cell_mask = kernel::low_mask(cells);
        let rows_mask = kernel::low_mask(rows);
        let cols_mask = kernel::low_mask(cols);

        // Compact the spec onto `B ++ A ++ S` (row-major charts: cell
        // (r, c) of shared assignment s is bit `c + r·cols + s·cells`)
        // and onto `A ++ B ++ S` (the transposed charts, for column
        // patterns). Every chart is then a contiguous bit slice that
        // never straddles a word (cells is a power of two ≤ 64).
        let mut order = [0usize; 16];
        order[..rb].copy_from_slice(b_vars);
        order[rb..rb + ra].copy_from_slice(a_vars);
        order[rb + ra..d].copy_from_slice(s_vars);
        let mut compact_rc = [0u64; 4];
        compact_into(h, &order[..d], &mut compact_rc);
        order[..ra].copy_from_slice(a_vars);
        order[ra..ra + rb].copy_from_slice(b_vars);
        let mut compact_cr = [0u64; 4];
        compact_into(h, &order[..d], &mut compact_cr);

        // Per shared assignment: the chart, the first row/column
        // labelling option (bit i ⇔ axis element i carries the second
        // distinct pattern; the other option is its complement), and
        // the labellings expanded to cell masks.
        let rep = {
            let mut rep = 0u64;
            for r in 0..rows {
                rep |= 1u64 << (r * cols);
            }
            rep
        };
        let mut charts = [0u64; 64];
        let mut row0 = [0u64; 64];
        let mut col0 = [0u64; 64];
        let mut rcell0 = [0u64; 64];
        let mut ccell0 = [0u64; 64];
        for s in 0..shared {
            let chart = slice64(&compact_rc, s * cells, cell_mask);
            let chart_t = slice64(&compact_cr, s * cells, cell_mask);
            self.charts_built += 1;
            // Two unique quartering parts per axis (Examples 5–6).
            let Some(r0) = two_pattern_mask(chart, rows, cols) else {
                return Ok(());
            };
            let Some(c0) = two_pattern_mask(chart_t, cols, rows) else {
                return Ok(());
            };
            charts[s] = chart;
            row0[s] = r0;
            col0[s] = c0;
            let mut rc = 0u64;
            for r in 0..rows {
                rc |= ((r0 >> r) & 1).wrapping_mul(cols_mask << (r * cols));
            }
            rcell0[s] = rc;
            // Column labels replicate across rows: the shifts of c0 by
            // r·cols are disjoint, so one multiply scatters them all.
            ccell0[s] = c0.wrapping_mul(rep);
        }

        // Split-level support filter: the A-part of the left operand's
        // support is the union of the row-class supports across shared
        // assignments (complementing a labelling never changes its
        // support), so a split whose row classes do not jointly cover A
        // can never pass the canonical-split check — likewise for B.
        if !covers_axis_mask(&row0[..shared], ra, rows)
            || !covers_axis_mask(&col0[..shared], rb, cols)
        {
            return Ok(());
        }

        // Operand layout: compact over `own ++ S`, one labelling mask
        // per shared assignment at an aligned offset; expansion to the
        // full arity is a tile plus the inverse of the front-swap plan.
        let k1 = ra + rs;
        let k2 = rb + rs;
        let mut vars1 = [0usize; 16];
        vars1[..ra].copy_from_slice(a_vars);
        vars1[ra..k1].copy_from_slice(s_vars);
        let mut vars2 = [0usize; 16];
        vars2[..rb].copy_from_slice(b_vars);
        vars2[rb..k2].copy_from_slice(s_vars);
        let mut plan1 = [(0u8, 0u8); 16];
        let plan1_len = kernel::front_swap_plan(n, &vars1[..k1], &mut plan1);
        let mut plan2 = [(0u8, 0u8); 16];
        let plan2_len = kernel::front_swap_plan(n, &vars2[..k2], &mut plan2);
        let full1 = kernel::low_mask(k1);
        let full2 = kernel::low_mask(k2);
        let nw = kernel::words_len(n);

        // For each candidate operator g, pick one row/column labelling
        // per shared assignment, consistently.
        'ops: for &g in &stp_tt::NONTRIVIAL_OPS {
            // Valid (row label, col label) option pairs per shared
            // assignment; option 0 is the stored mask, 1 its complement.
            let mut pairs = [[(0u8, 0u8); 4]; 64];
            let mut plen = [0usize; 64];
            for s in 0..shared {
                let rc = rcell0[s];
                let cc = ccell0[s];
                let mut np = 0usize;
                for ri in 0..2u8 {
                    let r = if ri == 0 { rc } else { !rc & cell_mask };
                    for ci in 0..2u8 {
                        let c = if ci == 0 { cc } else { !cc & cell_mask };
                        let mut expected = 0u64;
                        if g & 1 != 0 {
                            expected |= !r & !c & cell_mask;
                        }
                        if g & 2 != 0 {
                            expected |= r & !c;
                        }
                        if g & 4 != 0 {
                            expected |= !r & c;
                        }
                        if g & 8 != 0 {
                            expected |= r & c;
                        }
                        if expected == charts[s] {
                            pairs[s][np] = (ri, ci);
                            np += 1;
                        }
                    }
                }
                if np == 0 {
                    continue 'ops;
                }
                plen[s] = np;
            }
            // Depth-first combination over shared assignments.
            let mut choice = [0usize; 64];
            'combos: loop {
                self.check_deadline()?;
                let mut cbuf1 = [0u64; 4];
                let mut cbuf2 = [0u64; 4];
                for s in 0..shared {
                    let (ri, ci) = pairs[s][choice[s]];
                    let rl = if ri == 0 { row0[s] } else { !row0[s] & rows_mask };
                    let cl = if ci == 0 { col0[s] } else { !col0[s] & cols_mask };
                    let off1 = s * rows;
                    cbuf1[off1 >> 6] |= rl << (off1 & 63);
                    let off2 = s * cols;
                    cbuf2[off2 >> 6] |= cl << (off2 & 63);
                }
                // Canonical split: the operands must depend on exactly
                // their assigned variables (otherwise the same triple is
                // found under a smaller split). On the compact tables
                // that is simply "full support".
                let canonical = kernel::support_mask(&cbuf1[..kernel::words_len(k1)], k1) == full1
                    && kernel::support_mask(&cbuf2[..kernel::words_len(k2)], k2) == full2;
                if canonical {
                    let mut f1 = [0u64; 4];
                    expand_with_plan(&cbuf1, k1, n, &plan1[..plan1_len], &mut f1);
                    let mut f2 = [0u64; 4];
                    expand_with_plan(&cbuf2, k2, n, &plan2[..plan2_len], &mut f2);
                    // Mirror dedup for symmetric shapes.
                    let ordered = !symmetric || f1 <= f2;
                    if ordered && seen_triples.insert(SeenKey::Small(g, f1, f2)) {
                        let h1 = TruthTable::from_words(n, f1[..nw].to_vec())
                            .expect("operand arity equals the spec arity");
                        let h2 = TruthTable::from_words(n, f2[..nw].to_vec())
                            .expect("operand arity equals the spec arity");
                        let r1 = self.realize(&h1, s1)?;
                        if !r1.is_empty() {
                            let r2 = self.realize(&h2, s2)?;
                            if self.emit_pairs(g, &r1, &r2, out) {
                                return Ok(());
                            }
                        }
                    }
                }
                // Advance.
                let mut i = 0;
                loop {
                    if i == shared {
                        break 'combos;
                    }
                    choice[i] += 1;
                    if choice[i] < plen[i] {
                        break;
                    }
                    choice[i] = 0;
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// Multi-word `factor_split`: the wide twin of
    /// [`Factorizer::factor_split_fast`] for specs of 9–12 inputs (and
    /// any split with `|A| + |B| ≤ 8`, `|S| ≤ 8` on a ≤ 12-input
    /// spec). Charts, labellings and their cell expansions live in
    /// [`W4`] blocks — one aligned 256-bit slice per shared assignment
    /// — and the compact spec and operand accumulators are fixed
    /// 64-word stack buffers, so the split and combination loops still
    /// perform no heap allocation.
    ///
    /// Byte-equal to [`Factorizer::factor_split_naive`] in output,
    /// order, and counter increments (pinned by the differential fuzz
    /// tests below and the wide-spec bench differential).
    #[allow(clippy::too_many_arguments)]
    fn factor_split_wide(
        &mut self,
        h: &TruthTable,
        a_vars: &[usize],
        b_vars: &[usize],
        s_vars: &[usize],
        s1: &TreeShape,
        s2: &TreeShape,
        symmetric: bool,
        seen_triples: &mut HashSet<SeenKey>,
        out: &mut Vec<Arc<RealTree>>,
    ) -> Result<(), SynthesisError> {
        let n = h.num_vars();
        let (ra, rb, rs) = (a_vars.len(), b_vars.len(), s_vars.len());
        let d = ra + rb + rs;
        let rows = 1usize << ra;
        let cols = 1usize << rb;
        let shared = 1usize << rs;
        let cells = rows * cols;
        let cells_mask = w4_low_mask(cells);
        let rows_mask = w4_low_mask(rows);
        let cols_mask = w4_low_mask(cols);

        // Compact the spec onto `B ++ A ++ S` (row-major charts) and
        // `A ++ B ++ S` (transposed charts); every chart is then an
        // aligned 256-bit slice (cells is a power of two ≤ 256).
        let mut order = [0usize; 16];
        order[..rb].copy_from_slice(b_vars);
        order[rb..rb + ra].copy_from_slice(a_vars);
        order[rb + ra..d].copy_from_slice(s_vars);
        let mut compact_rc = [0u64; WIDE_WORDS];
        compact_into_words(h, &order[..d], &mut compact_rc);
        order[..ra].copy_from_slice(a_vars);
        order[ra..ra + rb].copy_from_slice(b_vars);
        let mut compact_cr = [0u64; WIDE_WORDS];
        compact_into_words(h, &order[..d], &mut compact_cr);

        // Per shared assignment: the chart, the first row/column
        // labelling option (the other option is its complement), and
        // the labellings expanded to cell masks.
        let mut charts = [W4::ZERO; WIDE_SHARED];
        let mut row0 = [W4::ZERO; WIDE_SHARED];
        let mut col0 = [W4::ZERO; WIDE_SHARED];
        let mut rcell0 = [W4::ZERO; WIDE_SHARED];
        let mut ccell0 = [W4::ZERO; WIDE_SHARED];
        for s in 0..shared {
            let chart = slice_w4(&compact_rc, s * cells, cells);
            let chart_t = slice_w4(&compact_cr, s * cells, cells);
            self.charts_built += 1;
            // Two unique quartering parts per axis (Examples 5–6).
            let Some(r0) = two_pattern_mask_w4(&chart, rows, cols) else {
                return Ok(());
            };
            let Some(c0) = two_pattern_mask_w4(&chart_t, cols, rows) else {
                return Ok(());
            };
            charts[s] = chart;
            row0[s] = r0;
            col0[s] = c0;
            rcell0[s] = rows_to_cells_w4(&r0, rows, cols);
            ccell0[s] = cols_to_cells_w4(&c0, rows, cols);
        }

        // Split-level support filter (see the fast path).
        if !covers_axis_w4(&row0[..shared], ra) || !covers_axis_w4(&col0[..shared], rb) {
            return Ok(());
        }

        // Operand layout: compact over `own ++ S`, one labelling mask
        // per shared assignment at an aligned offset.
        let k1 = ra + rs;
        let k2 = rb + rs;
        let mut vars1 = [0usize; 16];
        vars1[..ra].copy_from_slice(a_vars);
        vars1[ra..k1].copy_from_slice(s_vars);
        let mut vars2 = [0usize; 16];
        vars2[..rb].copy_from_slice(b_vars);
        vars2[rb..k2].copy_from_slice(s_vars);
        let mut plan1 = [(0u8, 0u8); 16];
        let plan1_len = kernel::front_swap_plan(n, &vars1[..k1], &mut plan1);
        let mut plan2 = [(0u8, 0u8); 16];
        let plan2_len = kernel::front_swap_plan(n, &vars2[..k2], &mut plan2);
        let full1 = kernel::low_mask(k1);
        let full2 = kernel::low_mask(k2);
        let nw = kernel::words_len(n);

        // For each candidate operator g, pick one row/column labelling
        // per shared assignment, consistently.
        'ops: for &g in &stp_tt::NONTRIVIAL_OPS {
            // Valid (row label, col label) option pairs per shared
            // assignment; option 0 is the stored mask, 1 its complement.
            let mut pairs = [[(0u8, 0u8); 4]; WIDE_SHARED];
            let mut plen = [0usize; WIDE_SHARED];
            for s in 0..shared {
                let rc = rcell0[s];
                let cc = ccell0[s];
                let mut np = 0usize;
                for ri in 0..2u8 {
                    let r = if ri == 0 { rc } else { !rc & cells_mask };
                    for ci in 0..2u8 {
                        let c = if ci == 0 { cc } else { !cc & cells_mask };
                        let mut expected = W4::ZERO;
                        if g & 1 != 0 {
                            expected = expected | (!r & !c & cells_mask);
                        }
                        if g & 2 != 0 {
                            expected = expected | (r & !c);
                        }
                        if g & 4 != 0 {
                            expected = expected | (!r & c);
                        }
                        if g & 8 != 0 {
                            expected = expected | (r & c);
                        }
                        if expected == charts[s] {
                            pairs[s][np] = (ri, ci);
                            np += 1;
                        }
                    }
                }
                if np == 0 {
                    continue 'ops;
                }
                plen[s] = np;
            }
            // Depth-first combination over shared assignments.
            let mut choice = [0usize; WIDE_SHARED];
            'combos: loop {
                self.check_deadline()?;
                let mut cbuf1 = [0u64; WIDE_WORDS];
                let mut cbuf2 = [0u64; WIDE_WORDS];
                for s in 0..shared {
                    let (ri, ci) = pairs[s][choice[s]];
                    let rl = if ri == 0 { row0[s] } else { !row0[s] & rows_mask };
                    let cl = if ci == 0 { col0[s] } else { !col0[s] & cols_mask };
                    or_labels_at(&mut cbuf1, s * rows, &rl, rows);
                    or_labels_at(&mut cbuf2, s * cols, &cl, cols);
                }
                // Canonical split: full support on the compact tables
                // (see the fast path).
                let canonical = kernel::support_mask(&cbuf1[..kernel::words_len(k1)], k1) == full1
                    && kernel::support_mask(&cbuf2[..kernel::words_len(k2)], k2) == full2;
                if canonical {
                    let mut f1 = [0u64; WIDE_WORDS];
                    expand_with_plan_words(&cbuf1, k1, n, &plan1[..plan1_len], &mut f1);
                    let mut f2 = [0u64; WIDE_WORDS];
                    expand_with_plan_words(&cbuf2, k2, n, &plan2[..plan2_len], &mut f2);
                    // Mirror dedup for symmetric shapes.
                    let ordered = !symmetric || f1[..nw] <= f2[..nw];
                    if ordered && seen_triples.insert(wide_seen_key(g, &f1, &f2, n, nw)) {
                        let h1 = TruthTable::from_words(n, f1[..nw].to_vec())
                            .expect("operand arity equals the spec arity");
                        let h2 = TruthTable::from_words(n, f2[..nw].to_vec())
                            .expect("operand arity equals the spec arity");
                        let r1 = self.realize(&h1, s1)?;
                        if !r1.is_empty() {
                            let r2 = self.realize(&h2, s2)?;
                            if self.emit_pairs(g, &r1, &r2, out) {
                                return Ok(());
                            }
                        }
                    }
                }
                // Advance.
                let mut i = 0;
                loop {
                    if i == shared {
                        break 'combos;
                    }
                    choice[i] += 1;
                    if choice[i] < plen[i] {
                        break;
                    }
                    choice[i] = 0;
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// Scalar reference `factor_split`, retained as the multi-word
    /// fallback (arities or splits beyond the fast-path bounds) and as
    /// the ground truth for the differential fuzz tests.
    #[allow(clippy::too_many_arguments)]
    fn factor_split_naive(
        &mut self,
        h: &TruthTable,
        a_vars: &[usize],
        b_vars: &[usize],
        s_vars: &[usize],
        s1: &TreeShape,
        s2: &TreeShape,
        symmetric: bool,
        seen_triples: &mut HashSet<SeenKey>,
        out: &mut Vec<Arc<RealTree>>,
    ) -> Result<(), SynthesisError> {
        let n = h.num_vars();
        let rows = 1usize << a_vars.len();
        let cols = 1usize << b_vars.len();
        let shared = 1usize << s_vars.len();

        // Per shared assignment: the row/column labelling options.
        // labels[s] = (row label options, column label options); a label
        // option is the vector of h1 (resp. h2) values for that shared
        // assignment.
        let mut row_options: Vec<Vec<Vec<bool>>> = Vec::with_capacity(shared);
        let mut col_options: Vec<Vec<Vec<bool>>> = Vec::with_capacity(shared);
        let mut charts: Vec<Vec<bool>> = Vec::with_capacity(shared);
        for s in 0..shared {
            let mut chart = vec![false; rows * cols];
            let mut assign = vec![false; n];
            for (i, &v) in s_vars.iter().enumerate() {
                assign[v] = (s >> i) & 1 == 1;
            }
            for r in 0..rows {
                for (i, &v) in a_vars.iter().enumerate() {
                    assign[v] = (r >> i) & 1 == 1;
                }
                for c in 0..cols {
                    for (i, &v) in b_vars.iter().enumerate() {
                        assign[v] = (c >> i) & 1 == 1;
                    }
                    chart[r * cols + c] = h.eval(&assign);
                }
            }
            self.charts_built += 1;
            // Two unique quartering parts per axis (Examples 5–6).
            let row_opts = match two_pattern_labels(&chart, rows, cols, true) {
                Some(opts) => opts,
                None => return Ok(()),
            };
            let col_opts = match two_pattern_labels(&chart, rows, cols, false) {
                Some(opts) => opts,
                None => return Ok(()),
            };
            row_options.push(row_opts);
            col_options.push(col_opts);
            charts.push(chart);
        }

        // Split-level support filter (see the fast path).
        if !covers_axis(&row_options, a_vars.len()) || !covers_axis(&col_options, b_vars.len()) {
            return Ok(());
        }

        // For each candidate operator g, pick one row/column labelling
        // per shared assignment, consistently.
        for &g in &stp_tt::NONTRIVIAL_OPS {
            // Valid (row label, col label) index pairs per shared
            // assignment.
            let mut pairs_per_s: Vec<Vec<(usize, usize)>> = Vec::with_capacity(shared);
            let mut dead = false;
            for s in 0..shared {
                let mut pairs = Vec::new();
                for (ri, rl) in row_options[s].iter().enumerate() {
                    for (ci, cl) in col_options[s].iter().enumerate() {
                        if chart_consistent(&charts[s], rows, cols, g, rl, cl) {
                            pairs.push((ri, ci));
                        }
                    }
                }
                if pairs.is_empty() {
                    dead = true;
                    break;
                }
                pairs_per_s.push(pairs);
            }
            if dead {
                continue;
            }
            // Depth-first combination over shared assignments.
            let mut choice = vec![0usize; shared];
            'combos: loop {
                self.check_deadline()?;
                let h1 =
                    build_operand(n, a_vars, s_vars, &row_options, &pairs_per_s, &choice, true);
                let h2 =
                    build_operand(n, b_vars, s_vars, &col_options, &pairs_per_s, &choice, false);
                // Canonical split: the operands must depend on exactly
                // their assigned variables (otherwise the same triple is
                // found under a smaller split).
                let h1_sup = h1.support();
                let h2_sup = h2.support();
                let mut want1: Vec<usize> = a_vars.iter().chain(s_vars).copied().collect();
                want1.sort_unstable();
                let mut want2: Vec<usize> = b_vars.iter().chain(s_vars).copied().collect();
                want2.sort_unstable();
                let canonical = h1_sup == want1 && h2_sup == want2;
                // Mirror dedup for symmetric shapes.
                let ordered = !symmetric || h1.words() <= h2.words();
                if canonical && ordered && seen_triples.insert(seen_key(g, &h1, &h2)) {
                    let r1 = self.realize(&h1, s1)?;
                    if !r1.is_empty() {
                        let r2 = self.realize(&h2, s2)?;
                        if self.emit_pairs(g, &r1, &r2, out) {
                            return Ok(());
                        }
                    }
                }
                // Advance.
                let mut i = 0;
                loop {
                    if i == shared {
                        break 'combos;
                    }
                    choice[i] += 1;
                    if choice[i] < pairs_per_s[i].len() {
                        break;
                    }
                    choice[i] = 0;
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// Cross-products two realization forests under operator `g` into
    /// `out`; returns `true` when the realization cap was reached.
    fn emit_pairs(
        &self,
        g: u8,
        r1: &[Arc<RealTree>],
        r2: &[Arc<RealTree>],
        out: &mut Vec<Arc<RealTree>>,
    ) -> bool {
        for t1 in r1 {
            for t2 in r2 {
                // A gate reading the same leaf twice computes a unary
                // function, so a strictly smaller chain exists and the
                // candidate can never be part of a minimum solution
                // (chains also reject tied fanins).
                if let (RealTree::Leaf(a), RealTree::Leaf(b)) = (t1.as_ref(), t2.as_ref()) {
                    if a == b {
                        continue;
                    }
                }
                out.push(Arc::new(RealTree::Node(g, Arc::clone(t1), Arc::clone(t2))));
                if out.len() >= self.config.max_realizations {
                    return true;
                }
            }
        }
        false
    }
}

/// Compacts `h` onto `vars` into a caller-owned stack buffer: bit `m`
/// of the result is `h` at the assignment where input `vars[k]` takes
/// bit `k` of `m` and every other input is 0. Word-level (cofactor
/// masks + a front-swap plan), no allocation; requires
/// `h.num_vars() ≤ 8` so the table fits the buffer.
fn compact_into(h: &TruthTable, vars: &[usize], buf: &mut [u64; 4]) {
    compact_into_words(h, vars, buf);
}

/// Buffer-size-generic twin of [`compact_into`]: `buf` must hold at
/// least `h`'s words (the wide path hands it a 64-word buffer).
fn compact_into_words(h: &TruthTable, vars: &[usize], buf: &mut [u64]) {
    let n = h.num_vars();
    let nw = h.words().len();
    buf[..nw].copy_from_slice(h.words());
    for w in &mut buf[nw..] {
        *w = 0;
    }
    let words = &mut buf[..nw];
    let mut listed = 0u64;
    for &v in vars {
        listed |= 1u64 << v;
    }
    for v in 0..n {
        if listed >> v & 1 == 0 {
            kernel::cofactor0_in_place(words, n, v);
        }
    }
    let mut plan = [(0u8, 0u8); 16];
    let len = kernel::front_swap_plan(n, vars, &mut plan);
    for &(i, p) in &plan[..len] {
        kernel::swap_in_place(words, n, i as usize, p as usize);
    }
    // Everything above the first `vars.len()` inputs is a replicated
    // don't-care now; keep only the compact table.
    let k = vars.len();
    if k < 6 {
        buf[0] &= kernel::low_mask(1 << k);
        for w in &mut buf[1..] {
            *w = 0;
        }
    } else {
        for w in &mut buf[kernel::words_len(k)..] {
            *w = 0;
        }
    }
}

/// Expands a `k`-input compact table to `n` inputs by tiling and then
/// undoing the front-swap `plan` (computed for the same variable list).
/// The inverse of [`compact_into`] up to don't-cares.
fn expand_with_plan(compact: &[u64; 4], k: usize, n: usize, plan: &[(u8, u8)], out: &mut [u64; 4]) {
    expand_with_plan_words(compact, k, n, plan, out);
}

/// Buffer-size-generic twin of [`expand_with_plan`].
fn expand_with_plan_words(compact: &[u64], k: usize, n: usize, plan: &[(u8, u8)], out: &mut [u64]) {
    let nw = kernel::words_len(n);
    kernel::tile_words(&compact[..kernel::words_len(k)], k, n, &mut out[..nw]);
    for &(i, p) in plan.iter().rev() {
        kernel::swap_in_place(&mut out[..nw], n, i as usize, p as usize);
    }
}

/// Dedup key for a wide-path candidate: identical to [`seen_key`] on
/// the same operand tables (`f1`/`f2` hold `nw` meaningful words).
fn wide_seen_key(g: u8, f1: &[u64], f2: &[u64], n: usize, nw: usize) -> SeenKey {
    if n <= FAST_MAX_VARS {
        let mut w1 = [0u64; 4];
        w1[..nw].copy_from_slice(&f1[..nw]);
        let mut w2 = [0u64; 4];
        w2[..nw].copy_from_slice(&f2[..nw]);
        SeenKey::Small(g, w1, w2)
    } else {
        SeenKey::Big(g, f1[..nw].to_vec(), f2[..nw].to_vec())
    }
}

/// 256-bit variant of [`kernel::low_mask`] (`count ≤ 256`).
fn w4_low_mask(count: usize) -> W4 {
    let mut out = [0u64; 4];
    for (i, w) in out.iter_mut().enumerate() {
        let lo = i * 64;
        *w = if count >= lo + 64 {
            u64::MAX
        } else if count > lo {
            kernel::low_mask(count - lo)
        } else {
            0
        };
    }
    W4(out)
}

/// Reads the `cells`-bit field at `bit_off` from a packed buffer into
/// the low lanes of a [`W4`]. The wide path only asks for
/// power-of-two-sized fields at multiples of their size, so a field
/// ≤ 64 bits never straddles a word and a larger field is
/// word-aligned.
fn slice_w4(buf: &[u64], bit_off: usize, cells: usize) -> W4 {
    if cells <= 64 {
        W4([(buf[bit_off >> 6] >> (bit_off & 63)) & kernel::low_mask(cells), 0, 0, 0])
    } else {
        let base = bit_off >> 6;
        let nw = cells / 64;
        let mut out = [0u64; 4];
        out[..nw].copy_from_slice(&buf[base..base + nw]);
        W4(out)
    }
}

/// The `i`-th `width`-bit field of a ≤ 256-bit chart (`width` a power
/// of two).
fn field_w4(chart: &W4, i: usize, width: usize) -> W4 {
    if width <= 64 {
        let off = i * width;
        W4([(chart.0[off >> 6] >> (off & 63)) & kernel::low_mask(width), 0, 0, 0])
    } else if width == 128 {
        W4([chart.0[2 * i], chart.0[2 * i + 1], 0, 0])
    } else {
        *chart
    }
}

/// [`W4`] twin of [`two_pattern_mask`]: first labelling option over
/// `count` axis elements of `width`-bit patterns, or `None` when more
/// than two distinct patterns exist.
fn two_pattern_mask_w4(chart: &W4, count: usize, width: usize) -> Option<W4> {
    let first = field_w4(chart, 0, width);
    let mut second: Option<W4> = None;
    let mut labels = W4::ZERO;
    for i in 1..count {
        let p = field_w4(chart, i, width);
        if p == first {
            continue;
        }
        match second {
            None => {
                second = Some(p);
                labels.0[i >> 6] |= 1u64 << (i & 63);
            }
            Some(sp) if p == sp => labels.0[i >> 6] |= 1u64 << (i & 63),
            Some(_) => return None,
        }
    }
    Some(labels)
}

/// ORs `val`'s low `width` bits into field `i` of `buf` (`width` a
/// power of two ≤ 256).
fn or_field_w4(buf: &mut W4, i: usize, width: usize, val: &W4) {
    if width <= 64 {
        let off = i * width;
        buf.0[off >> 6] |= (val.0[0] & kernel::low_mask(width)) << (off & 63);
    } else {
        let nw = width / 64;
        for (dst, src) in buf.0[i * nw..(i + 1) * nw].iter_mut().zip(val.0.iter()) {
            *dst |= src;
        }
    }
}

/// ORs the low `count` bits of `labels` into `buf` at `bit_off`. The
/// wide path's operand buffers place `count`-bit fields at multiples
/// of `count`, so the same alignment argument as [`slice_w4`] applies.
fn or_labels_at(buf: &mut [u64], bit_off: usize, labels: &W4, count: usize) {
    if count <= 64 {
        buf[bit_off >> 6] |= (labels.0[0] & kernel::low_mask(count)) << (bit_off & 63);
    } else {
        let base = bit_off >> 6;
        for (dst, src) in buf[base..base + count / 64].iter_mut().zip(labels.0.iter()) {
            *dst |= src;
        }
    }
}

/// Expands a row labelling (bit `r` over `rows`) to a cell mask (bit
/// `r·cols + c` set for every `c` when row `r` is labelled).
fn rows_to_cells_w4(labels: &W4, rows: usize, cols: usize) -> W4 {
    let full = w4_low_mask(cols);
    let mut out = W4::ZERO;
    for r in 0..rows {
        if labels.0[r >> 6] >> (r & 63) & 1 == 1 {
            or_field_w4(&mut out, r, cols, &full);
        }
    }
    out
}

/// Expands a column labelling (bit `c` over `cols`) to a cell mask by
/// replicating it across all `rows` rows.
fn cols_to_cells_w4(labels: &W4, rows: usize, cols: usize) -> W4 {
    let mut out = W4::ZERO;
    for r in 0..rows {
        or_field_w4(&mut out, r, cols, labels);
    }
    out
}

/// [`W4`] twin of [`covers_axis_mask`]: `labels[s]` is the first
/// labelling option for shared assignment `s` over `2^k` axis
/// elements.
fn covers_axis_w4(labels: &[W4], k: usize) -> bool {
    let count = 1usize << k;
    let full = (1u32 << k) - 1;
    let bit = |l: &W4, m: usize| l.0[m >> 6] >> (m & 63) & 1;
    let mut covered = 0u32;
    for l in labels {
        for b in 0..k {
            if covered >> b & 1 == 1 {
                continue;
            }
            let stride = 1usize << b;
            for m in 0..count {
                if m & stride == 0 && bit(l, m) != bit(l, m | stride) {
                    covered |= 1 << b;
                    break;
                }
            }
        }
        if covered == full {
            return true;
        }
    }
    covered == full
}

/// Reads `width ≤ 64` bits at `bit_off` from a packed buffer. The fast
/// path only asks for power-of-two-sized slices at multiples of their
/// size, so a slice never straddles a word.
#[inline]
fn slice64(buf: &[u64; 4], bit_off: usize, width_mask: u64) -> u64 {
    (buf[bit_off >> 6] >> (bit_off & 63)) & width_mask
}

/// Mask twin of [`two_pattern_labels`]: returns the first labelling
/// option (bit `i` set ⇔ axis element `i` carries the second distinct
/// pattern; all zeros for a degenerate single-pattern axis), or `None`
/// when more than two distinct patterns exist. `chart` holds `count`
/// fields of `width` bits each.
fn two_pattern_mask(chart: u64, count: usize, width: usize) -> Option<u64> {
    let m = kernel::low_mask(width);
    let first = chart & m;
    let mut second: Option<u64> = None;
    let mut labels = 0u64;
    for i in 1..count {
        let p = (chart >> (i * width)) & m;
        if p == first {
            continue;
        }
        match second {
            None => {
                second = Some(p);
                labels |= 1u64 << i;
            }
            Some(sp) if p == sp => labels |= 1u64 << i,
            Some(_) => return None,
        }
    }
    Some(labels)
}

/// Mask twin of [`covers_axis`]: `labels[s]` is the first labelling
/// option for shared assignment `s` over `count = 2^k` axis elements.
fn covers_axis_mask(labels: &[u64], k: usize, count: usize) -> bool {
    let full = (1u32 << k) - 1;
    let mut covered = 0u32;
    for &l in labels {
        for bit in 0..k {
            let zeros = !kernel::VAR_MASK[bit] & kernel::low_mask(count);
            if ((l >> (1usize << bit)) ^ l) & zeros != 0 {
                covered |= 1 << bit;
            }
        }
        if covered == full {
            return true;
        }
    }
    covered == full
}

/// Returns `true` when the per-shared-assignment labellings jointly
/// depend on every one of the `k` axis variables.
fn covers_axis(options: &[Vec<Vec<bool>>], k: usize) -> bool {
    let mut covered = vec![false; k];
    for opts in options {
        // Any labelling of this shared assignment has the same support;
        // use the first.
        let labels = &opts[0];
        for (bit, slot) in covered.iter_mut().enumerate() {
            if *slot {
                continue;
            }
            let stride = 1usize << bit;
            for base in 0..labels.len() {
                if base & stride == 0 && labels[base] != labels[base | stride] {
                    *slot = true;
                    break;
                }
            }
        }
    }
    covered.into_iter().all(|c| c)
}

/// Collects the ≤ 2 distinct patterns along one axis of the chart and
/// returns the candidate labellings, or `None` when more than two
/// distinct patterns exist (the paper's "can not be factored",
/// Example 5.2).
///
/// With two distinct patterns there are two labellings (the classes and
/// their complement); with one there are the two constants.
#[allow(clippy::needless_range_loop)]
fn two_pattern_labels(
    chart: &[bool],
    rows: usize,
    cols: usize,
    by_rows: bool,
) -> Option<Vec<Vec<bool>>> {
    let (count, other) = if by_rows { (rows, cols) } else { (cols, rows) };
    let pattern = |i: usize| -> Vec<bool> {
        (0..other)
            .map(|j| if by_rows { chart[i * cols + j] } else { chart[j * cols + i] })
            .collect()
    };
    let first = pattern(0);
    let mut second: Option<Vec<bool>> = None;
    let mut labels = vec![false; count];
    for i in 1..count {
        let p = pattern(i);
        if p == first {
            continue;
        }
        match &second {
            None => {
                second = Some(p);
                labels[i] = true;
            }
            Some(s) if p == *s => labels[i] = true,
            Some(_) => return None,
        }
    }
    if second.is_some() {
        let inverted: Vec<bool> = labels.iter().map(|&b| !b).collect();
        Some(vec![labels, inverted])
    } else {
        // Degenerate axis: the operand is constant on this shared
        // assignment.
        Some(vec![vec![false; count], vec![true; count]])
    }
}

/// Checks `chart[a][b] == g(rl[a], cl[b])` for every cell.
fn chart_consistent(
    chart: &[bool],
    rows: usize,
    cols: usize,
    g: u8,
    rl: &[bool],
    cl: &[bool],
) -> bool {
    for r in 0..rows {
        for c in 0..cols {
            let v = (g >> ((rl[r] as u8) + 2 * (cl[c] as u8))) & 1 == 1;
            if v != chart[r * cols + c] {
                return false;
            }
        }
    }
    true
}

/// Builds an operand function from the chosen labellings.
fn build_operand(
    n: usize,
    own_vars: &[usize],
    s_vars: &[usize],
    options: &[Vec<Vec<bool>>],
    pairs_per_s: &[Vec<(usize, usize)>],
    choice: &[usize],
    is_row: bool,
) -> TruthTable {
    TruthTable::from_fn(n, |assign| {
        let mut s = 0usize;
        for (i, &v) in s_vars.iter().enumerate() {
            if assign[v] {
                s |= 1 << i;
            }
        }
        let mut idx = 0usize;
        for (i, &v) in own_vars.iter().enumerate() {
            if assign[v] {
                idx |= 1 << i;
            }
        }
        let (ri, ci) = pairs_per_s[s][choice[s]];
        let opt = if is_row { ri } else { ci };
        options[s][opt][idx]
    })
    .expect("operand arity equals the spec arity")
}

/// Converts a realization tree into a chain over `n` inputs with a
/// single positive output.
fn tree_to_chain(tree: &RealTree, n: usize) -> Chain {
    fn emit(tree: &RealTree, chain: &mut Chain) -> usize {
        match tree {
            RealTree::Leaf(v) => *v,
            RealTree::Node(g, l, r) => {
                let li = emit(l, chain);
                let ri = emit(r, chain);
                chain
                    .add_gate(li, ri, *g)
                    .expect("realization trees reference earlier signals with distinct fanins")
            }
        }
    }
    let mut chain = Chain::new(n);
    let top = emit(tree, &mut chain);
    chain.add_output(OutputRef::signal(top));
    chain
}

/// Packed dedup key for [`Factorizer::chains_on_shape`]: one word per
/// gate. Chains produced by [`tree_to_chain`] share the input count and
/// output structure, so the gate list identifies the chain — no
/// rendered-`String` key needed.
fn chain_key(chain: &Chain) -> Vec<u64> {
    chain
        .gates()
        .iter()
        .map(|g| ((g.fanin[0] as u64) << 24) | ((g.fanin[1] as u64) << 8) | g.tt2 as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_fence::shapes_with_gates;

    fn balanced3() -> TreeShape {
        let leaf = TreeShape::Leaf;
        let pair = TreeShape::node(leaf.clone(), leaf.clone());
        TreeShape::node(pair.clone(), pair)
    }

    #[test]
    fn example7_finds_both_paper_solutions() {
        // f = 0x8ff8 on the balanced 3-gate tree: the paper's Example 7
        // prints two Boolean chains; our factorization enumerates the
        // full AllSAT set (four chains — the paper's two plus the two
        // mixed-polarity variants its coupled factorization skips; see
        // DESIGN.md).
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let chains = engine.chains_on_shape(&spec, &balanced3()).unwrap();
        assert_eq!(chains.len(), 4);
        for chain in &chains {
            assert_eq!(chain.num_gates(), 3);
            let out = chain.simulate_outputs().unwrap();
            assert_eq!(out[0], spec, "every factorization must realize the spec");
        }
    }

    #[test]
    fn example7_solution_operators() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let chains = engine.chains_on_shape(&spec, &balanced3()).unwrap();
        // The paper prints the solutions {0xe, 0x8, 0x6} and
        // {0x7, 0x7, 0x9}; both must appear among the enumerated chains.
        let mut op_sets: Vec<Vec<u8>> = chains
            .iter()
            .map(|c| {
                let mut ops: Vec<u8> = c.gates().iter().map(|g| g.tt2).collect();
                ops.sort_unstable();
                ops
            })
            .collect();
        op_sets.sort();
        assert!(op_sets.contains(&vec![0x6, 0x8, 0xe]), "paper solution 1");
        assert!(op_sets.contains(&vec![0x7, 0x7, 0x9]), "paper solution 2");
    }

    #[test]
    fn unfactorable_spec_on_small_shape_yields_nothing() {
        // 3-input majority is prime: no 2-gate tree realizes it.
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        for shape in shapes_with_gates(2) {
            assert!(engine.chains_on_shape(&maj, &shape).unwrap().is_empty());
        }
    }

    #[test]
    fn majority_realized_with_shared_inputs() {
        // Majority needs 4 gates in a tree with repeated leaves (the
        // paper's M_r case).
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let mut found = Vec::new();
        for shape in shapes_with_gates(4) {
            found.extend(engine.chains_on_shape(&maj, &shape).unwrap());
        }
        assert!(!found.is_empty(), "majority must be realizable with 4 gates");
        for chain in &found {
            assert_eq!(chain.simulate_outputs().unwrap()[0], maj);
        }
    }

    #[test]
    fn xor3_realized_with_two_gates() {
        let xor3 = TruthTable::from_fn(3, |a| a[0] ^ a[1] ^ a[2]).unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let mut found = Vec::new();
        for shape in shapes_with_gates(2) {
            found.extend(engine.chains_on_shape(&xor3, &shape).unwrap());
        }
        assert!(!found.is_empty());
        for chain in &found {
            assert_eq!(chain.simulate_outputs().unwrap()[0], xor3);
        }
    }

    #[test]
    fn all_enumerated_chains_are_distinct_and_correct() {
        let spec = TruthTable::from_fn(4, |a| (a[0] & a[1]) | (a[2] & a[3])).unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let chains = engine.chains_on_shape(&spec, &balanced3()).unwrap();
        assert!(!chains.is_empty());
        let mut keys: Vec<String> = chains.iter().map(|c| format!("{c}")).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "chains must be distinct");
        for chain in &chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
            assert!(chain.all_gates_nontrivial());
        }
    }

    #[test]
    fn trivial_specs_yield_no_chains() {
        let mut engine = Factorizer::new(FactorConfig::default());
        let shape = balanced3();
        for tt in [
            TruthTable::constant(4, true).unwrap(),
            TruthTable::constant(4, false).unwrap(),
            TruthTable::variable(4, 2).unwrap(),
        ] {
            assert!(engine.chains_on_shape(&tt, &shape).unwrap().is_empty());
        }
    }

    #[test]
    fn deadline_aborts_search() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let config = FactorConfig {
            deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
            ..FactorConfig::default()
        };
        let mut engine = Factorizer::new(config);
        let result = engine.chains_on_shape(&spec, &balanced3());
        assert!(matches!(result, Err(SynthesisError::Timeout)));
    }

    #[test]
    fn cancel_flag_aborts_search() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        let config = FactorConfig { cancel: Some(Arc::clone(&flag)), ..FactorConfig::default() };
        let mut engine = Factorizer::new(config);
        let result = engine.chains_on_shape(&spec, &balanced3());
        assert!(matches!(result, Err(SynthesisError::Timeout)));
    }

    #[test]
    fn cancellation_aborts_promptly_mid_search() {
        // The deadline poll is throttled to one clock read per 1024
        // checkpoints, but the cancel flag is read on every checkpoint:
        // setting it mid-search must abort quickly.
        let flag = Arc::new(AtomicBool::new(false));
        let setter = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                flag.store(true, Ordering::SeqCst);
            })
        };
        let spec = TruthTable::from_fn(6, |a| {
            let ones = a.iter().filter(|&&b| b).count();
            ones >= 3 && !(a[0] & a[5])
        })
        .unwrap();
        let shapes = shapes_with_gates(5);
        let start = Instant::now();
        'outer: loop {
            // A fresh engine per sweep keeps the search doing real work
            // (a fully-memoized engine would answer from the memo
            // without reaching a checkpoint).
            let config =
                FactorConfig { cancel: Some(Arc::clone(&flag)), ..FactorConfig::default() };
            let mut engine = Factorizer::new(config);
            for shape in &shapes {
                if engine.chains_on_shape(&spec, shape).is_err() {
                    break 'outer;
                }
            }
            assert!(
                start.elapsed() < std::time::Duration::from_secs(60),
                "cancellation never observed"
            );
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "cancellation must abort promptly"
        );
        setter.join().unwrap();
    }

    #[test]
    fn factorizer_moves_between_threads() {
        // The parallel driver hands each worker its own engine; the
        // memoized realization forests must therefore be `Send`.
        fn assert_send<T: Send>() {}
        assert_send::<Factorizer>();
        assert_send::<FactorConfig>();
    }

    #[test]
    fn realization_cap_is_respected() {
        // XOR-heavy functions have many complementary solutions; cap at
        // a small number and check the cap binds.
        let spec = TruthTable::from_fn(4, |a| a[0] ^ a[1] ^ a[2] ^ a[3]).unwrap();
        let config = FactorConfig { max_realizations: 3, ..FactorConfig::default() };
        let mut engine = Factorizer::new(config);
        let chains = engine.chains_on_shape(&spec, &balanced3()).unwrap();
        assert!(chains.len() <= 3);
        assert!(!chains.is_empty());
    }

    #[test]
    fn memoization_hits_across_shapes() {
        let spec = TruthTable::from_fn(5, |a| (a[0] & a[1]) ^ (a[2] & a[3]) ^ a[4]).unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        for shape in shapes_with_gates(4) {
            let _ = engine.chains_on_shape(&spec, &shape).unwrap();
        }
        let first_pass = engine.nodes_explored();
        // Re-running is fully memoized: no new nodes.
        for shape in shapes_with_gates(4) {
            let _ = engine.chains_on_shape(&spec, &shape).unwrap();
        }
        assert_eq!(engine.nodes_explored(), first_pass);
    }

    /// Deterministic 64-bit LCG for the differential fuzz tests (no
    /// external dependency; constants from Knuth via PCG).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Mix the high bits down — the raw LCG's low bits alternate.
            self.0 ^ (self.0 >> 29)
        }
    }

    fn random_table(rng: &mut Lcg, n: usize) -> TruthTable {
        let words = (0..kernel::words_len(n)).map(|_| rng.next()).collect();
        TruthTable::from_words(n, words).unwrap()
    }

    #[test]
    fn fuzz_fast_split_matches_naive_reference() {
        // For random tables over 2–8 variables and random (A, B, S)
        // splits within the fast-path bounds, the word-level kernels
        // (chart extraction, two-pattern labelling, consistency check,
        // operand scatter, canonicality, dedup keys) must be byte-equal
        // to the scalar reference: same emitted candidates, same seen
        // set, same counter increments. Leaf children keep the
        // recursion trivial so the comparison isolates the kernels.
        let mut rng = Lcg(0xfac7_0123_5eed_0001);
        let leaf = TreeShape::Leaf;
        let mut tested = 0usize;
        let mut attempts = 0usize;
        while tested < 150 {
            attempts += 1;
            assert!(attempts < 20_000, "fuzz split sampling starved");
            let n = 2 + (rng.next() % 7) as usize;
            let h = random_table(&mut rng, n);
            let support = h.support();
            if support.len() < 2 {
                continue;
            }
            let (mut a, mut b, mut s) = (Vec::new(), Vec::new(), Vec::new());
            for &v in &support {
                match rng.next() % 3 {
                    0 => a.push(v),
                    1 => b.push(v),
                    _ => s.push(v),
                }
            }
            if a.len() + s.len() == 0 || b.len() + s.len() == 0 {
                continue;
            }
            // Stay within the fast-path bounds; additionally cap the
            // shared set at 3 variables — with a degenerate axis (empty
            // A or B) every shared assignment can admit several
            // labellings, and the combination space is exponential in
            // the shared-assignment count. The engine's feasibility
            // check bounds shared variables by the shape's leaf excess
            // (na + nb + 2·ns ≤ leaves), so large shared sets never
            // occur in real searches either.
            if a.len() + b.len() > 6 || s.len() > 3 {
                continue;
            }
            tested += 1;
            let symmetric = rng.next() & 1 == 1;
            let mut fast = Factorizer::new(FactorConfig::default());
            let mut naive = Factorizer::new(FactorConfig::default());
            let mut seen_f = HashSet::new();
            let mut out_f = Vec::new();
            let mut seen_n = HashSet::new();
            let mut out_n = Vec::new();
            fast.factor_split_fast(
                &h,
                &a,
                &b,
                &s,
                &leaf,
                &leaf,
                symmetric,
                &mut seen_f,
                &mut out_f,
            )
            .unwrap();
            naive
                .factor_split_naive(
                    &h,
                    &a,
                    &b,
                    &s,
                    &leaf,
                    &leaf,
                    symmetric,
                    &mut seen_n,
                    &mut out_n,
                )
                .unwrap();
            let ctx = format!("n={n} a={a:?} b={b:?} s={s:?} spec={}", h.to_hex());
            assert_eq!(out_f, out_n, "candidates differ: {ctx}");
            assert_eq!(seen_f, seen_n, "seen triples differ: {ctx}");
            assert_eq!(fast.charts_built, naive.charts_built, "chart counts differ: {ctx}");
            assert_eq!(fast.nodes_explored, naive.nodes_explored, "node counts differ: {ctx}");
        }
    }

    #[test]
    fn fuzz_full_engine_fast_matches_naive() {
        // End-to-end differential check: whole-engine runs with the
        // word-level path enabled vs. forced-naive must produce the
        // same chains in the same order with the same counters, across
        // random and structured specs on real shape families.
        let mut rng = Lcg(0x0dd5_eed5_0000_0001);
        let mut specs: Vec<TruthTable> = Vec::new();
        for n in [3usize, 4, 4, 5] {
            specs.push(random_table(&mut rng, n));
        }
        // Structured, factorization-friendly specs reach the deeper
        // kernel paths (labellings, operand scatter, recursion).
        specs.push(TruthTable::from_hex(4, "8ff8").unwrap());
        specs.push(TruthTable::from_fn(5, |a| (a[0] & a[1]) ^ (a[2] | a[3]) ^ a[4]).unwrap());
        specs.push(
            TruthTable::from_fn(6, |a| (a[0] ^ a[1]) & (a[2] ^ a[3]) | (a[4] & a[5])).unwrap(),
        );
        for spec in &specs {
            let d = spec.support().len();
            if d < 2 {
                continue;
            }
            let mut fast = Factorizer::new(FactorConfig::default());
            let mut naive =
                Factorizer::new(FactorConfig { force_naive: true, ..FactorConfig::default() });
            for shape in shapes_with_gates(d.saturating_sub(1)) {
                let chains_f: Vec<String> = fast
                    .chains_on_shape(spec, &shape)
                    .unwrap()
                    .iter()
                    .map(|c| format!("{c}"))
                    .collect();
                let chains_n: Vec<String> = naive
                    .chains_on_shape(spec, &shape)
                    .unwrap()
                    .iter()
                    .map(|c| format!("{c}"))
                    .collect();
                assert_eq!(chains_f, chains_n, "spec={} shape={shape:?}", spec.to_hex());
            }
            assert_eq!(fast.nodes_explored(), naive.nodes_explored(), "spec={}", spec.to_hex());
            assert_eq!(fast.memo_hits(), naive.memo_hits(), "spec={}", spec.to_hex());
            assert_eq!(fast.charts_built, naive.charts_built, "spec={}", spec.to_hex());
        }
    }

    #[test]
    fn fuzz_wide_split_matches_naive_reference() {
        // The wide-path twin of `fuzz_fast_split_matches_naive_reference`:
        // random tables over 7–11 variables (multi-word specs) and random
        // splits within the wide-path bounds (|A| + |B| ≤ 8, so charts
        // span up to 256 bits and labellings up to 128). The shared set
        // is capped at 3 for the same combination-explosion reason as the
        // fast fuzz.
        let mut rng = Lcg(0xfac7_0123_5eed_0002);
        let leaf = TreeShape::Leaf;
        let mut tested = 0usize;
        let mut multiword_axes = 0usize;
        let mut attempts = 0usize;
        while tested < 120 {
            attempts += 1;
            assert!(attempts < 40_000, "fuzz split sampling starved");
            let n = 7 + (rng.next() % 5) as usize;
            let h = random_table(&mut rng, n);
            let support = h.support();
            if support.len() < 2 {
                continue;
            }
            let (mut a, mut b, mut s) = (Vec::new(), Vec::new(), Vec::new());
            for &v in &support {
                match rng.next() % 3 {
                    0 => a.push(v),
                    1 => b.push(v),
                    _ => s.push(v),
                }
            }
            if a.len() + s.len() == 0 || b.len() + s.len() == 0 {
                continue;
            }
            if a.len() + b.len() > 8 || s.len() > 3 {
                continue;
            }
            tested += 1;
            if a.len() + b.len() > 6 {
                // Charts wider than 64 cells: the W4 multi-lane branches.
                multiword_axes += 1;
            }
            let symmetric = rng.next() & 1 == 1;
            let mut wide = Factorizer::new(FactorConfig::default());
            let mut naive = Factorizer::new(FactorConfig::default());
            let mut seen_w = HashSet::new();
            let mut out_w = Vec::new();
            let mut seen_n = HashSet::new();
            let mut out_n = Vec::new();
            wide.factor_split_wide(
                &h,
                &a,
                &b,
                &s,
                &leaf,
                &leaf,
                symmetric,
                &mut seen_w,
                &mut out_w,
            )
            .unwrap();
            naive
                .factor_split_naive(
                    &h,
                    &a,
                    &b,
                    &s,
                    &leaf,
                    &leaf,
                    symmetric,
                    &mut seen_n,
                    &mut out_n,
                )
                .unwrap();
            let ctx = format!("n={n} a={a:?} b={b:?} s={s:?} spec={}", h.to_hex());
            assert_eq!(out_w, out_n, "candidates differ: {ctx}");
            assert_eq!(seen_w, seen_n, "seen triples differ: {ctx}");
            assert_eq!(wide.charts_built, naive.charts_built, "chart counts differ: {ctx}");
            assert_eq!(wide.nodes_explored, naive.nodes_explored, "node counts differ: {ctx}");
        }
        assert!(multiword_axes >= 20, "too few multi-lane cases: {multiword_axes}");
    }

    fn balanced_shape(leaves: usize) -> TreeShape {
        if leaves == 1 {
            TreeShape::Leaf
        } else {
            TreeShape::node(balanced_shape(leaves / 2), balanced_shape(leaves - leaves / 2))
        }
    }

    #[test]
    fn fuzz_full_engine_wide_matches_naive() {
        // End-to-end differential for the 9+-input wide path: structured
        // (factorization-friendly) specs on fixed shapes whose leaf
        // excess admits shared variables, so the top-level splits with
        // |A| + |B| ≤ 8 actually route through `factor_split_wide` while
        // the `force_naive` engine replays everything through the scalar
        // reference. Chains, counters, and chart counts must agree.
        let mut specs: Vec<TruthTable> = Vec::new();
        specs.push(
            TruthTable::from_fn(9, |a| {
                (a[0] & a[1]) ^ (a[2] | a[3]) ^ (a[4] & a[5]) ^ (a[6] | a[7]) ^ a[8]
            })
            .unwrap(),
        );
        specs.push(
            TruthTable::from_fn(10, |a| {
                ((a[0] ^ a[1]) & (a[2] ^ a[3])) | ((a[4] & a[5]) ^ (a[6] & a[7]) & (a[8] | a[9]))
            })
            .unwrap(),
        );
        for spec in &specs {
            let d = spec.support().len();
            let shape = balanced_shape(d + 1);
            let mut wide =
                Factorizer::new(FactorConfig { max_realizations: 64, ..FactorConfig::default() });
            let mut naive = Factorizer::new(FactorConfig {
                max_realizations: 64,
                force_naive: true,
                ..FactorConfig::default()
            });
            let chains_w: Vec<String> = wide
                .chains_on_shape(spec, &shape)
                .unwrap()
                .iter()
                .map(|c| format!("{c}"))
                .collect();
            let chains_n: Vec<String> = naive
                .chains_on_shape(spec, &shape)
                .unwrap()
                .iter()
                .map(|c| format!("{c}"))
                .collect();
            assert_eq!(chains_w, chains_n, "spec arity {d}");
            assert_eq!(wide.nodes_explored(), naive.nodes_explored(), "spec arity {d}");
            assert_eq!(wide.memo_hits(), naive.memo_hits(), "spec arity {d}");
            assert_eq!(wide.charts_built, naive.charts_built, "spec arity {d}");
            assert!(wide.charts_built > 0, "wide engine built no charts at arity {d}");
        }
    }

    #[test]
    fn memo_table_packed_roundtrip_growth_and_bytes() {
        let mut table = MemoTable::default();
        let forest = |v: usize| Arc::new(vec![Arc::new(RealTree::Leaf(v))]);
        let mut rng = Lcg(0x9e37_79b9_0000_0001);
        let mut keys = Vec::new();
        let mut bytes = 0u64;
        for i in 0..200usize {
            let n = 2 + (rng.next() % 7) as usize;
            let h = random_table(&mut rng, n);
            bytes += table.insert(&h, forest(i));
            keys.push((h, i));
        }
        // Bytes grew monotonically with slot-array capacity and the load
        // factor stayed under 7/8.
        let cap = bytes as usize / std::mem::size_of::<MemoSlot>();
        assert!(cap.is_power_of_two(), "slot capacity {cap} not a power of two");
        assert!(table.len * 8 <= cap * 7, "load factor exceeded 7/8: {}/{cap}", table.len);
        // Every inserted key probes back to its latest forest (duplicate
        // tables along the way replace, never duplicate).
        let mut latest: HashMap<Vec<u64>, usize> = HashMap::new();
        for (h, i) in &keys {
            let mut k = vec![h.num_vars() as u64];
            k.extend_from_slice(h.words());
            latest.insert(k, *i);
        }
        assert_eq!(table.entries(), latest.len() as u64);
        for (h, _) in &keys {
            let mut k = vec![h.num_vars() as u64];
            k.extend_from_slice(h.words());
            let want = latest[&k];
            let got = table.get(h).expect("inserted key must probe back");
            assert_eq!(*got, *forest(want), "wrong forest for {}", h.to_hex());
        }
        // A table that was never probed for a missing key still answers
        // misses with None.
        let missing = random_table(&mut rng, 8);
        let mut k = vec![missing.num_vars() as u64];
        k.extend_from_slice(missing.words());
        if !latest.contains_key(&k) {
            assert!(table.get(&missing).is_none());
        }
    }

    #[test]
    fn memo_table_spills_wide_specs() {
        let mut table = MemoTable::default();
        let mut rng = Lcg(0x5b11_a5e5_0000_0002);
        let wide = random_table(&mut rng, 9);
        let narrow = random_table(&mut rng, 4);
        let f1 = Arc::new(vec![Arc::new(RealTree::Leaf(1))]);
        let f2 = Arc::new(vec![Arc::new(RealTree::Leaf(2))]);
        assert_eq!(table.insert(&wide, Arc::clone(&f1)), 0, "spill inserts allocate no slots");
        table.insert(&narrow, Arc::clone(&f2));
        assert_eq!(*table.get(&wide).unwrap(), *f1);
        assert_eq!(*table.get(&narrow).unwrap(), *f2);
        assert_eq!(table.entries(), 2);
        assert_eq!(table.len, 1, "only the narrow spec lands in the packed array");
    }

    #[test]
    fn memo_table_distinguishes_arity_of_equal_words() {
        // The same words encode different functions at different
        // arities; both entries must coexist in the packed array.
        let mut table = MemoTable::default();
        let h3 = TruthTable::from_words(3, vec![0x5a]).unwrap();
        let h6 = TruthTable::from_words(6, vec![0x5a]).unwrap();
        let f3 = Arc::new(vec![Arc::new(RealTree::Leaf(3))]);
        let f6 = Arc::new(vec![Arc::new(RealTree::Leaf(6))]);
        table.insert(&h3, Arc::clone(&f3));
        table.insert(&h6, Arc::clone(&f6));
        assert_eq!(*table.get(&h3).unwrap(), *f3);
        assert_eq!(*table.get(&h6).unwrap(), *f6);
        assert_eq!(table.entries(), 2);
    }

    #[test]
    fn memo_probe_ns_attributes_to_the_driving_workers_scope() {
        // Two workers run the same search under their own
        // `CounterScope`s: each scope must see its own engine's memo
        // traffic (probes, bytes, entries), not a share of the other's —
        // the flush in `chains_on_shape` runs on the worker thread.
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let run = || {
            let scope = stp_telemetry::CounterScope::enter();
            let mut engine = Factorizer::new(FactorConfig::default());
            for shape in shapes_with_gates(3) {
                let _ = engine.chains_on_shape(&spec, &shape).unwrap();
            }
            (scope.finish(), engine)
        };
        let (a, b) = std::thread::scope(|s| {
            let ta = s.spawn(run);
            let tb = s.spawn(run);
            (ta.join().unwrap(), tb.join().unwrap())
        });
        for (got, engine) in [&a, &b] {
            assert_eq!(got.get("factor.subproblems").copied(), Some(engine.nodes_explored));
            assert_eq!(got.get("factor.memo_hits").copied(), Some(engine.memo_hits));
            assert_eq!(got.get("factor.memo_bytes").copied(), Some(engine.memo_bytes));
            assert_eq!(got.get("factor.memo_entries").copied(), Some(engine.memo_entries));
            // The sampled probe timing lands in the same scope (it may
            // legitimately be zero when no probe hit the sample tick).
            assert_eq!(got.get("factor.memo_probe_ns").copied().unwrap_or(0), engine.memo_probe_ns);
        }
    }
}
