//! STP-based matrix factorization of canonical forms over DAG
//! topologies (§III-B of the paper).
//!
//! The paper decomposes the canonical form `M_Φ` of the target function
//! by repeatedly splitting it into "quartering parts": `M_Φ` factors
//! through a 2-input top gate iff the quartered matrix has at most **two
//! unique parts** per axis (Examples 5–6), with the power-reducing
//! matrix `M_r` admitting repeated variables (Property 3) and the swap
//! matrix `M_w` admitting arbitrary variable orders (Property 4).
//!
//! This module implements that factorization in its equivalent
//! column-grouping form (see `DESIGN.md`, *Semantics fixed for this
//! implementation*):
//!
//! * a candidate split partitions the support into `A` (exclusive to the
//!   left operand), `B` (exclusive to the right operand) and `S`
//!   (shared — the `M_r` case); enumerating all splits plays the role of
//!   the swap matrices;
//! * for each assignment of the shared variables, the decomposition
//!   chart must have at most two distinct row patterns and two distinct
//!   column patterns — the "two unique quartering parts" test; shared
//!   assignments contribute the `x` don't-care entries of Property 3;
//! * every consistent 2-labelling yields one candidate operand pair, so
//!   **all** factorizations are produced (the paper's one-pass AllSAT
//!   over solutions — Example 5 finds exactly two).
//!
//! The recursion walks a [`TreeShape`]; reconvergence enters through
//! shared primary inputs, which is precisely the reach of the paper's
//! `M_r`/`M_w` calculus.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use stp_chain::{Chain, OutputRef};
use stp_fence::TreeShape;
use stp_tt::TruthTable;

use crate::error::SynthesisError;

/// Configuration for the factorization engine.
#[derive(Debug, Clone)]
pub struct FactorConfig {
    /// Cap on realizations materialized per (function, shape) node; the
    /// engine still proves realizability beyond the cap but stops
    /// enumerating. The paper's suites average between 12 and 192
    /// solutions per instance, well under the default of 4096.
    pub max_realizations: usize,
    /// Optional wall-clock deadline; factorization aborts with
    /// [`SynthesisError::Timeout`] once it passes.
    pub deadline: Option<Instant>,
    /// Optional cooperative cancellation flag, shared with the parallel
    /// search driver: once set, the engine aborts at its next deadline
    /// checkpoint (reported as [`SynthesisError::Timeout`], which the
    /// driver reinterprets — see `parallel.rs`).
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for FactorConfig {
    fn default() -> Self {
        FactorConfig { max_realizations: 4096, deadline: None, cancel: None }
    }
}

/// A realization of a function on a tree shape: leaves carry primary
/// input indices, internal nodes carry 4-bit gate truth tables.
///
/// Subtrees are shared through [`Arc`] (not `Rc`) so a [`Factorizer`]
/// — and the realization forests inside its memo table — can move
/// between the worker threads of the parallel search driver.
#[derive(Debug, PartialEq, Eq, Hash)]
enum RealTree {
    Leaf(usize),
    Node(u8, Arc<RealTree>, Arc<RealTree>),
}

/// The factorization engine with its memo table.
///
/// One engine instance should be reused across the shapes explored for a
/// single specification: sub-function factorizations recur constantly
/// (that reuse is a large part of the paper's speed on DSD-structured
/// functions).
#[derive(Debug)]
#[allow(clippy::type_complexity)]
pub struct Factorizer {
    config: FactorConfig,
    memo: HashMap<(Vec<u64>, TreeShape), Arc<Vec<Arc<RealTree>>>>,
    /// Number of factorization nodes explored (for the harness).
    nodes_explored: u64,
    /// Number of memo-table hits across [`Factorizer::realize`] calls.
    memo_hits: u64,
}

impl Factorizer {
    /// Creates an engine with the given configuration.
    pub fn new(config: FactorConfig) -> Self {
        Factorizer { config, memo: HashMap::new(), nodes_explored: 0, memo_hits: 0 }
    }

    /// Number of (function, shape) factorization subproblems examined.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes_explored
    }

    /// Number of memo-table hits (subproblems answered without search).
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Enumerates every chain realizing `spec` on the given tree shape
    /// (all leaf-to-PI bindings and all gate assignments), up to the
    /// configured cap.
    ///
    /// The returned chains use only operators that depend on both
    /// fanins; callers are expected to verify them with the circuit
    /// solver (the paper's step iv).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Timeout`] when the configured deadline
    /// expires mid-search.
    pub fn chains_on_shape(
        &mut self,
        spec: &TruthTable,
        shape: &TreeShape,
    ) -> Result<Vec<Chain>, SynthesisError> {
        let support = spec.support();
        if support.len() > shape.leaf_count() || support.len() < 2 {
            // Trivial specs (constants, literals) need no gates and are
            // handled by the synthesis driver, not by factorization.
            return Ok(Vec::new());
        }
        let (nodes_before, hits_before) = (self.nodes_explored, self.memo_hits);
        let result = self.realize(spec, shape);
        // Flush this call's exploration to the global metrics (batched —
        // the recursion itself touches only the engine-local tallies).
        stp_telemetry::counter!("factor.subproblems").add(self.nodes_explored - nodes_before);
        stp_telemetry::counter!("factor.memo_hits").add(self.memo_hits - hits_before);
        let trees = result?;
        let mut chains = Vec::with_capacity(trees.len());
        let mut seen = HashSet::new();
        for tree in trees.iter() {
            let chain = tree_to_chain(tree, spec.num_vars());
            let key = format!("{chain}");
            if seen.insert(key) {
                chains.push(chain);
            }
        }
        Ok(chains)
    }

    fn check_deadline(&self) -> Result<(), SynthesisError> {
        if let Some(d) = self.config.deadline {
            if Instant::now() >= d {
                return Err(SynthesisError::Timeout);
            }
        }
        if let Some(flag) = &self.config.cancel {
            if flag.load(Ordering::SeqCst) {
                return Err(SynthesisError::Timeout);
            }
        }
        Ok(())
    }

    /// Core recursion: all realizations of `h` on `shape`.
    fn realize(
        &mut self,
        h: &TruthTable,
        shape: &TreeShape,
    ) -> Result<Arc<Vec<Arc<RealTree>>>, SynthesisError> {
        let key = (h.words().to_vec(), shape.clone());
        if let Some(hit) = self.memo.get(&key) {
            self.memo_hits += 1;
            return Ok(Arc::clone(hit));
        }
        self.check_deadline()?;
        self.nodes_explored += 1;
        let result = match shape {
            TreeShape::Leaf => {
                // A leaf realizes exactly a positive literal; complements
                // are absorbed by the parent gate's operator choice.
                let mut out = Vec::new();
                let sup = h.support();
                if sup.len() == 1 {
                    let v = sup[0];
                    if let Ok(proj) = TruthTable::variable(h.num_vars(), v) {
                        if *h == proj {
                            out.push(Arc::new(RealTree::Leaf(v)));
                        }
                    }
                }
                out
            }
            TreeShape::Node(s1, s2) => self.realize_node(h, s1, s2)?,
        };
        let rc = Arc::new(result);
        self.memo.insert(key, Arc::clone(&rc));
        Ok(rc)
    }

    fn realize_node(
        &mut self,
        h: &TruthTable,
        s1: &TreeShape,
        s2: &TreeShape,
    ) -> Result<Vec<Arc<RealTree>>, SynthesisError> {
        let support = h.support();
        let d = support.len();
        let l1 = s1.leaf_count();
        let l2 = s2.leaf_count();
        let symmetric = s1 == s2;
        let mut out: Vec<Arc<RealTree>> = Vec::new();
        if d > l1 + l2 || d == 0 {
            return Ok(out);
        }
        let mut seen_triples: HashSet<(u8, Vec<u64>, Vec<u64>)> = HashSet::new();
        // Enumerate splits: each support variable goes to A (left
        // exclusive), B (right exclusive), or S (shared).
        let mut split = vec![0u8; d];
        'splits: loop {
            self.check_deadline()?;
            let a_vars: Vec<usize> =
                (0..d).filter(|&i| split[i] == 0).map(|i| support[i]).collect();
            let b_vars: Vec<usize> =
                (0..d).filter(|&i| split[i] == 1).map(|i| support[i]).collect();
            let s_vars: Vec<usize> =
                (0..d).filter(|&i| split[i] == 2).map(|i| support[i]).collect();
            let feasible = a_vars.len() + s_vars.len() >= 1
                && b_vars.len() + s_vars.len() >= 1
                && a_vars.len() + s_vars.len() <= l1
                && b_vars.len() + s_vars.len() <= l2;
            if feasible {
                self.factor_split(
                    h,
                    &a_vars,
                    &b_vars,
                    &s_vars,
                    s1,
                    s2,
                    symmetric,
                    &mut seen_triples,
                    &mut out,
                )?;
                if out.len() >= self.config.max_realizations {
                    break 'splits;
                }
            }
            // Advance the base-3 counter.
            let mut i = 0;
            loop {
                if i == d {
                    break 'splits;
                }
                split[i] += 1;
                if split[i] < 3 {
                    break;
                }
                split[i] = 0;
                i += 1;
            }
        }
        Ok(out)
    }

    /// Factors `h = g(h1(A ∪ S), h2(B ∪ S))` for one fixed split,
    /// appending every realization to `out`.
    #[allow(clippy::too_many_arguments)]
    fn factor_split(
        &mut self,
        h: &TruthTable,
        a_vars: &[usize],
        b_vars: &[usize],
        s_vars: &[usize],
        s1: &TreeShape,
        s2: &TreeShape,
        symmetric: bool,
        seen_triples: &mut HashSet<(u8, Vec<u64>, Vec<u64>)>,
        out: &mut Vec<Arc<RealTree>>,
    ) -> Result<(), SynthesisError> {
        let n = h.num_vars();
        let rows = 1usize << a_vars.len();
        let cols = 1usize << b_vars.len();
        let shared = 1usize << s_vars.len();

        // Per shared assignment: the row/column labelling options.
        // labels[s] = (row label options, column label options); a label
        // option is the vector of h1 (resp. h2) values for that shared
        // assignment.
        let mut row_options: Vec<Vec<Vec<bool>>> = Vec::with_capacity(shared);
        let mut col_options: Vec<Vec<Vec<bool>>> = Vec::with_capacity(shared);
        let mut charts: Vec<Vec<bool>> = Vec::with_capacity(shared);
        for s in 0..shared {
            let mut chart = vec![false; rows * cols];
            let mut assign = vec![false; n];
            for (i, &v) in s_vars.iter().enumerate() {
                assign[v] = (s >> i) & 1 == 1;
            }
            for r in 0..rows {
                for (i, &v) in a_vars.iter().enumerate() {
                    assign[v] = (r >> i) & 1 == 1;
                }
                for c in 0..cols {
                    for (i, &v) in b_vars.iter().enumerate() {
                        assign[v] = (c >> i) & 1 == 1;
                    }
                    chart[r * cols + c] = h.eval(&assign);
                }
            }
            // Two unique quartering parts per axis (Examples 5–6).
            let row_opts = match two_pattern_labels(&chart, rows, cols, true) {
                Some(opts) => opts,
                None => return Ok(()),
            };
            let col_opts = match two_pattern_labels(&chart, rows, cols, false) {
                Some(opts) => opts,
                None => return Ok(()),
            };
            row_options.push(row_opts);
            col_options.push(col_opts);
            charts.push(chart);
        }

        // Split-level support filter: the A-part of the left operand's
        // support is the union of the row-class supports across shared
        // assignments (complementing a labelling never changes its
        // support), so a split whose row classes do not jointly cover A
        // can never pass the canonical-split check — likewise for B.
        // This kills doomed splits before the combination search.
        if !covers_axis(&row_options, a_vars.len()) || !covers_axis(&col_options, b_vars.len()) {
            return Ok(());
        }

        // For each candidate operator g, pick one row/column labelling
        // per shared assignment, consistently.
        for &g in &stp_tt::NONTRIVIAL_OPS {
            // Valid (row label, col label) index pairs per shared
            // assignment.
            let mut pairs_per_s: Vec<Vec<(usize, usize)>> = Vec::with_capacity(shared);
            let mut dead = false;
            for s in 0..shared {
                let mut pairs = Vec::new();
                for (ri, rl) in row_options[s].iter().enumerate() {
                    for (ci, cl) in col_options[s].iter().enumerate() {
                        if chart_consistent(&charts[s], rows, cols, g, rl, cl) {
                            pairs.push((ri, ci));
                        }
                    }
                }
                if pairs.is_empty() {
                    dead = true;
                    break;
                }
                pairs_per_s.push(pairs);
            }
            if dead {
                continue;
            }
            // Depth-first combination over shared assignments.
            let mut choice = vec![0usize; shared];
            'combos: loop {
                self.check_deadline()?;
                let h1 =
                    build_operand(n, a_vars, s_vars, &row_options, &pairs_per_s, &choice, true);
                let h2 =
                    build_operand(n, b_vars, s_vars, &col_options, &pairs_per_s, &choice, false);
                // Canonical split: the operands must depend on exactly
                // their assigned variables (otherwise the same triple is
                // found under a smaller split).
                let h1_sup = h1.support();
                let h2_sup = h2.support();
                let mut want1: Vec<usize> = a_vars.iter().chain(s_vars).copied().collect();
                want1.sort_unstable();
                let mut want2: Vec<usize> = b_vars.iter().chain(s_vars).copied().collect();
                want2.sort_unstable();
                let canonical = h1_sup == want1 && h2_sup == want2;
                // Mirror dedup for symmetric shapes.
                let ordered = !symmetric || h1.words() <= h2.words();
                if canonical && ordered {
                    let triple = (g, h1.words().to_vec(), h2.words().to_vec());
                    if seen_triples.insert(triple) {
                        let r1 = self.realize(&h1, s1)?;
                        if !r1.is_empty() {
                            let r2 = self.realize(&h2, s2)?;
                            for t1 in r1.iter() {
                                for t2 in r2.iter() {
                                    // A gate reading the same leaf twice
                                    // computes a unary function, so a
                                    // strictly smaller chain exists and
                                    // the candidate can never be part of
                                    // a minimum solution (chains also
                                    // reject tied fanins).
                                    if let (RealTree::Leaf(a), RealTree::Leaf(b)) =
                                        (t1.as_ref(), t2.as_ref())
                                    {
                                        if a == b {
                                            continue;
                                        }
                                    }
                                    out.push(Arc::new(RealTree::Node(
                                        g,
                                        Arc::clone(t1),
                                        Arc::clone(t2),
                                    )));
                                    if out.len() >= self.config.max_realizations {
                                        return Ok(());
                                    }
                                }
                            }
                        }
                    }
                }
                // Advance.
                let mut i = 0;
                loop {
                    if i == shared {
                        break 'combos;
                    }
                    choice[i] += 1;
                    if choice[i] < pairs_per_s[i].len() {
                        break;
                    }
                    choice[i] = 0;
                    i += 1;
                }
            }
        }
        Ok(())
    }
}

/// Returns `true` when the per-shared-assignment labellings jointly
/// depend on every one of the `k` axis variables.
fn covers_axis(options: &[Vec<Vec<bool>>], k: usize) -> bool {
    let mut covered = vec![false; k];
    for opts in options {
        // Any labelling of this shared assignment has the same support;
        // use the first.
        let labels = &opts[0];
        for (bit, slot) in covered.iter_mut().enumerate() {
            if *slot {
                continue;
            }
            let stride = 1usize << bit;
            for base in 0..labels.len() {
                if base & stride == 0 && labels[base] != labels[base | stride] {
                    *slot = true;
                    break;
                }
            }
        }
    }
    covered.into_iter().all(|c| c)
}

/// Collects the ≤ 2 distinct patterns along one axis of the chart and
/// returns the candidate labellings, or `None` when more than two
/// distinct patterns exist (the paper's "can not be factored",
/// Example 5.2).
///
/// With two distinct patterns there are two labellings (the classes and
/// their complement); with one there are the two constants.
#[allow(clippy::needless_range_loop)]
fn two_pattern_labels(
    chart: &[bool],
    rows: usize,
    cols: usize,
    by_rows: bool,
) -> Option<Vec<Vec<bool>>> {
    let (count, other) = if by_rows { (rows, cols) } else { (cols, rows) };
    let pattern = |i: usize| -> Vec<bool> {
        (0..other)
            .map(|j| if by_rows { chart[i * cols + j] } else { chart[j * cols + i] })
            .collect()
    };
    let first = pattern(0);
    let mut second: Option<Vec<bool>> = None;
    let mut labels = vec![false; count];
    for i in 1..count {
        let p = pattern(i);
        if p == first {
            continue;
        }
        match &second {
            None => {
                second = Some(p);
                labels[i] = true;
            }
            Some(s) if p == *s => labels[i] = true,
            Some(_) => return None,
        }
    }
    if second.is_some() {
        let inverted: Vec<bool> = labels.iter().map(|&b| !b).collect();
        Some(vec![labels, inverted])
    } else {
        // Degenerate axis: the operand is constant on this shared
        // assignment.
        Some(vec![vec![false; count], vec![true; count]])
    }
}

/// Checks `chart[a][b] == g(rl[a], cl[b])` for every cell.
fn chart_consistent(
    chart: &[bool],
    rows: usize,
    cols: usize,
    g: u8,
    rl: &[bool],
    cl: &[bool],
) -> bool {
    for r in 0..rows {
        for c in 0..cols {
            let v = (g >> ((rl[r] as u8) + 2 * (cl[c] as u8))) & 1 == 1;
            if v != chart[r * cols + c] {
                return false;
            }
        }
    }
    true
}

/// Builds an operand function from the chosen labellings.
fn build_operand(
    n: usize,
    own_vars: &[usize],
    s_vars: &[usize],
    options: &[Vec<Vec<bool>>],
    pairs_per_s: &[Vec<(usize, usize)>],
    choice: &[usize],
    is_row: bool,
) -> TruthTable {
    TruthTable::from_fn(n, |assign| {
        let mut s = 0usize;
        for (i, &v) in s_vars.iter().enumerate() {
            if assign[v] {
                s |= 1 << i;
            }
        }
        let mut idx = 0usize;
        for (i, &v) in own_vars.iter().enumerate() {
            if assign[v] {
                idx |= 1 << i;
            }
        }
        let (ri, ci) = pairs_per_s[s][choice[s]];
        let opt = if is_row { ri } else { ci };
        options[s][opt][idx]
    })
    .expect("operand arity equals the spec arity")
}

/// Converts a realization tree into a chain over `n` inputs with a
/// single positive output.
fn tree_to_chain(tree: &RealTree, n: usize) -> Chain {
    fn emit(tree: &RealTree, chain: &mut Chain) -> usize {
        match tree {
            RealTree::Leaf(v) => *v,
            RealTree::Node(g, l, r) => {
                let li = emit(l, chain);
                let ri = emit(r, chain);
                chain
                    .add_gate(li, ri, *g)
                    .expect("realization trees reference earlier signals with distinct fanins")
            }
        }
    }
    let mut chain = Chain::new(n);
    let top = emit(tree, &mut chain);
    chain.add_output(OutputRef::signal(top));
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_fence::shapes_with_gates;

    fn balanced3() -> TreeShape {
        let leaf = TreeShape::Leaf;
        let pair = TreeShape::node(leaf.clone(), leaf.clone());
        TreeShape::node(pair.clone(), pair)
    }

    #[test]
    fn example7_finds_both_paper_solutions() {
        // f = 0x8ff8 on the balanced 3-gate tree: the paper's Example 7
        // prints two Boolean chains; our factorization enumerates the
        // full AllSAT set (four chains — the paper's two plus the two
        // mixed-polarity variants its coupled factorization skips; see
        // DESIGN.md).
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let chains = engine.chains_on_shape(&spec, &balanced3()).unwrap();
        assert_eq!(chains.len(), 4);
        for chain in &chains {
            assert_eq!(chain.num_gates(), 3);
            let out = chain.simulate_outputs().unwrap();
            assert_eq!(out[0], spec, "every factorization must realize the spec");
        }
    }

    #[test]
    fn example7_solution_operators() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let chains = engine.chains_on_shape(&spec, &balanced3()).unwrap();
        // The paper prints the solutions {0xe, 0x8, 0x6} and
        // {0x7, 0x7, 0x9}; both must appear among the enumerated chains.
        let mut op_sets: Vec<Vec<u8>> = chains
            .iter()
            .map(|c| {
                let mut ops: Vec<u8> = c.gates().iter().map(|g| g.tt2).collect();
                ops.sort_unstable();
                ops
            })
            .collect();
        op_sets.sort();
        assert!(op_sets.contains(&vec![0x6, 0x8, 0xe]), "paper solution 1");
        assert!(op_sets.contains(&vec![0x7, 0x7, 0x9]), "paper solution 2");
    }

    #[test]
    fn unfactorable_spec_on_small_shape_yields_nothing() {
        // 3-input majority is prime: no 2-gate tree realizes it.
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        for shape in shapes_with_gates(2) {
            assert!(engine.chains_on_shape(&maj, &shape).unwrap().is_empty());
        }
    }

    #[test]
    fn majority_realized_with_shared_inputs() {
        // Majority needs 4 gates in a tree with repeated leaves (the
        // paper's M_r case).
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let mut found = Vec::new();
        for shape in shapes_with_gates(4) {
            found.extend(engine.chains_on_shape(&maj, &shape).unwrap());
        }
        assert!(!found.is_empty(), "majority must be realizable with 4 gates");
        for chain in &found {
            assert_eq!(chain.simulate_outputs().unwrap()[0], maj);
        }
    }

    #[test]
    fn xor3_realized_with_two_gates() {
        let xor3 = TruthTable::from_fn(3, |a| a[0] ^ a[1] ^ a[2]).unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let mut found = Vec::new();
        for shape in shapes_with_gates(2) {
            found.extend(engine.chains_on_shape(&xor3, &shape).unwrap());
        }
        assert!(!found.is_empty());
        for chain in &found {
            assert_eq!(chain.simulate_outputs().unwrap()[0], xor3);
        }
    }

    #[test]
    fn all_enumerated_chains_are_distinct_and_correct() {
        let spec = TruthTable::from_fn(4, |a| (a[0] & a[1]) | (a[2] & a[3])).unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        let chains = engine.chains_on_shape(&spec, &balanced3()).unwrap();
        assert!(!chains.is_empty());
        let mut keys: Vec<String> = chains.iter().map(|c| format!("{c}")).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "chains must be distinct");
        for chain in &chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
            assert!(chain.all_gates_nontrivial());
        }
    }

    #[test]
    fn trivial_specs_yield_no_chains() {
        let mut engine = Factorizer::new(FactorConfig::default());
        let shape = balanced3();
        for tt in [
            TruthTable::constant(4, true).unwrap(),
            TruthTable::constant(4, false).unwrap(),
            TruthTable::variable(4, 2).unwrap(),
        ] {
            assert!(engine.chains_on_shape(&tt, &shape).unwrap().is_empty());
        }
    }

    #[test]
    fn deadline_aborts_search() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let config = FactorConfig {
            deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
            ..FactorConfig::default()
        };
        let mut engine = Factorizer::new(config);
        let result = engine.chains_on_shape(&spec, &balanced3());
        assert!(matches!(result, Err(SynthesisError::Timeout)));
    }

    #[test]
    fn cancel_flag_aborts_search() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        let config = FactorConfig { cancel: Some(Arc::clone(&flag)), ..FactorConfig::default() };
        let mut engine = Factorizer::new(config);
        let result = engine.chains_on_shape(&spec, &balanced3());
        assert!(matches!(result, Err(SynthesisError::Timeout)));
    }

    #[test]
    fn factorizer_moves_between_threads() {
        // The parallel driver hands each worker its own engine; the
        // memoized realization forests must therefore be `Send`.
        fn assert_send<T: Send>() {}
        assert_send::<Factorizer>();
        assert_send::<FactorConfig>();
    }

    #[test]
    fn realization_cap_is_respected() {
        // XOR-heavy functions have many complementary solutions; cap at
        // a small number and check the cap binds.
        let spec = TruthTable::from_fn(4, |a| a[0] ^ a[1] ^ a[2] ^ a[3]).unwrap();
        let config = FactorConfig { max_realizations: 3, ..FactorConfig::default() };
        let mut engine = Factorizer::new(config);
        let chains = engine.chains_on_shape(&spec, &balanced3()).unwrap();
        assert!(chains.len() <= 3);
        assert!(!chains.is_empty());
    }

    #[test]
    fn memoization_hits_across_shapes() {
        let spec = TruthTable::from_fn(5, |a| (a[0] & a[1]) ^ (a[2] & a[3]) ^ a[4]).unwrap();
        let mut engine = Factorizer::new(FactorConfig::default());
        for shape in shapes_with_gates(4) {
            let _ = engine.chains_on_shape(&spec, &shape).unwrap();
        }
        let first_pass = engine.nodes_explored();
        // Re-running is fully memoized: no new nodes.
        for shape in shapes_with_gates(4) {
            let _ = engine.chains_on_shape(&spec, &shape).unwrap();
        }
        assert_eq!(engine.nodes_explored(), first_pass);
    }
}
