//! The top-level STP exact-synthesis loop (§III of the paper).
//!
//! Given a specification `f`, the algorithm proceeds exactly as the
//! paper's steps (i)–(iv):
//!
//! 1. initialize the gate constraint from the input count (a function
//!    depending on `n` variables needs at least `n − 1` two-input
//!    gates);
//! 2. generate the candidate topologies for the current constraint from
//!    the (optionally pruned) fence family;
//! 3. encode the Boolean-chain candidates by STP factorization
//!    ([`crate::Factorizer`]); when none exist, increase the constraint
//!    and repeat;
//! 4. check every candidate with the STP circuit AllSAT solver
//!    ([`crate::verify_chain`]) and return **all** verified optimum
//!    chains in one pass.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stp_chain::{trivial_chain, Chain, CostModel};
use stp_fence::{pruned_fences, shapes_for_fence, shapes_with_gates, TreeShape};
use stp_store::{NpnOutcome, RepOutcome, Store};
use stp_tt::TruthTable;

use crate::error::SynthesisError;
use crate::factor::{FactorConfig, Factorizer};
use crate::parallel::{self, RoundOutcome};

/// Configuration for [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Apply the paper's fence pruning (§III-A). Disabling it explores
    /// every tree topology per gate count — the ablation baseline.
    pub fence_pruning: bool,
    /// Upper bound on the gate count before giving up.
    pub max_gates: usize,
    /// Optional wall-clock deadline (per-instance timeout in the
    /// benchmark harness).
    pub deadline: Option<Instant>,
    /// Cap on the number of solutions materialized.
    pub max_solutions: usize,
    /// Optional upper bound on chain depth, independent of the gate
    /// budget. `None` derives a sound bound where one is needed: a
    /// chain's depth never exceeds its gate count, so the depth-major
    /// sweep defaults to `max_gates.max(min_depth)` (historically the
    /// two budgets were conflated into that one expression). Setting
    /// `Some(d)` restricts every objective to chains of depth `≤ d`;
    /// values above the derived ceiling are vacuous (any chain within
    /// the gate budget already satisfies them) and clamp down.
    pub max_depth: Option<usize>,
    /// Worker threads for the shape/factorize/verify pipeline: `1`
    /// searches sequentially, `0` uses one worker per available CPU.
    /// The default comes from the `STP_JOBS` environment variable
    /// (falling back to `1`). Any value produces byte-identical
    /// solution sets (see `DESIGN.md`, *Threading model*).
    pub jobs: usize,
    /// Optional external kill switch: once a host sets this flag the
    /// run aborts with [`SynthesisError::Timeout`] at its next
    /// cancellation checkpoint — between gate-count rounds and inside
    /// [`crate::FactorConfig::check_deadline`]. Unlike the internal
    /// per-round cancel flag this is never re-armed by the engine, so a
    /// server can revoke many in-flight runs with one store (`stpd`
    /// uses it to cancel stragglers at its drain deadline).
    pub abort: Option<Arc<AtomicBool>>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            fence_pruning: true,
            max_gates: 20,
            deadline: None,
            max_solutions: 4096,
            max_depth: None,
            jobs: parallel::jobs_from_env(),
            abort: None,
        }
    }
}

/// Result of a successful synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// Every optimum chain found (all solutions, one pass), verified by
    /// the circuit solver.
    pub chains: Vec<Chain>,
    /// The optimum gate count.
    pub gate_count: usize,
    /// Number of tree topologies examined. Under a solution cap or
    /// deadline, parallel runs may examine fewer shapes than sequential
    /// ones (cancelled workers stop counting); the chains themselves are
    /// identical either way.
    pub shapes_explored: usize,
    /// Number of fence patterns whose shape families were examined.
    /// With fence pruning this counts the pruned fence family per
    /// round; search paths that enumerate shapes directly (pruning
    /// disabled, or the depth objective) count the distinct fences of
    /// the examined shapes.
    pub fences_explored: usize,
    /// Number of factorization subproblems solved.
    pub factor_nodes: u64,
}

impl SynthesisResult {
    /// Picks the solution minimizing a secondary cost model — the
    /// "different costs can be considered" selector from the paper's
    /// abstract.
    ///
    /// Returns `None` when no chains were found (which only happens for
    /// results built by hand).
    pub fn best_by(&self, model: &CostModel) -> Option<&Chain> {
        self.chains.iter().min_by_key(|c| c.cost(model))
    }
}

/// Runs STP-based exact synthesis with the default configuration.
///
/// # Errors
///
/// See [`synthesize`].
///
/// # Examples
///
/// ```
/// use stp_synth::synthesize_default;
/// use stp_tt::TruthTable;
///
/// let spec = TruthTable::from_hex(4, "8ff8")?;
/// let result = synthesize_default(&spec)?;
/// assert_eq!(result.gate_count, 3);
/// assert!(!result.chains.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize_default(spec: &TruthTable) -> Result<SynthesisResult, SynthesisError> {
    synthesize(spec, &SynthesisConfig::default())
}

/// Runs STP-based exact synthesis: returns all minimum-gate-count
/// 2-LUT chains realizing `spec`, each verified with the STP circuit
/// solver.
///
/// Optimality is with respect to the explored topology family: tree
/// skeletons (with repeated-input reconvergence per Property 3) drawn
/// from the fence family, pruned per §III-A when
/// [`SynthesisConfig::fence_pruning`] is set — matching the paper's
/// "all optimal Boolean chains of current topological constraints".
///
/// # Errors
///
/// * [`SynthesisError::Timeout`] when the deadline expires;
/// * [`SynthesisError::GateLimitExceeded`] when no realization exists
///   within [`SynthesisConfig::max_gates`].
pub fn synthesize(
    spec: &TruthTable,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    // Trivial specifications need no gates.
    if let Some(chain) = trivial_chain(spec) {
        stp_telemetry::counter!("synth.trivial_hits").inc();
        return Ok(SynthesisResult {
            chains: vec![chain],
            gate_count: 0,
            shapes_explored: 0,
            fences_explored: 0,
            factor_nodes: 0,
        });
    }
    let support = spec.support();
    // Paper step (i): a function of k support variables needs at least
    // k − 1 binary gates.
    let start = support.len().saturating_sub(1).max(1);
    let jobs = parallel::resolve_jobs(config.jobs);
    let cancel = Arc::new(AtomicBool::new(false));
    let mut engines = build_engines(config, jobs, &cancel);
    let mut shapes_explored = 0usize;
    let mut fences_explored = 0usize;
    for r in start..=config.max_gates {
        // The external kill switch is honored between rounds as well as
        // at the factorization checkpoints inside one.
        if let Some(abort) = &config.abort {
            if abort.load(Ordering::Acquire) {
                return Err(SynthesisError::Timeout);
            }
        }
        let _round = stp_telemetry::span!("synth.round.r{}", r);
        stp_telemetry::counter!("synth.rounds").inc();
        // Flatten the fence groups into one shape-indexed work list; the
        // group boundaries carry no search semantics, only the fence
        // tally.
        let shapes: Vec<TreeShape> = {
            let _enum = stp_telemetry::span!("phase.fence_enum");
            let mut flat = if config.fence_pruning {
                let mut flat = Vec::new();
                for fence in &pruned_fences(r) {
                    fences_explored += 1;
                    flat.extend(shapes_for_fence(fence));
                }
                flat
            } else {
                let flat = shapes_with_gates(r);
                fences_explored += distinct_fence_count(&flat);
                flat
            };
            // An explicit depth budget restricts the topology family;
            // the default (`None`) leaves the classic sweep untouched.
            if let Some(d) = config.max_depth {
                flat.retain(|shape| shape.height() <= d);
            }
            flat
        };
        stp_telemetry::debug!("synth: r={r}, {} shapes, {jobs} worker(s)", shapes.len());
        let outcome = run_round(
            spec,
            &shapes,
            &mut engines,
            config.max_solutions,
            config.max_depth,
            &cancel,
        )?;
        shapes_explored += outcome.shapes_explored;
        if !outcome.solutions.is_empty() {
            stp_telemetry::counter!("synth.solutions").add(outcome.solutions.len() as u64);
            return Ok(SynthesisResult {
                chains: outcome.solutions,
                gate_count: r,
                shapes_explored,
                fences_explored,
                factor_nodes: engines.iter().map(Factorizer::nodes_explored).sum(),
            });
        }
    }
    Err(SynthesisError::GateLimitExceeded { max_gates: config.max_gates })
}

/// Builds the per-worker factorization engines for one synthesis run.
/// The engines persist across gate-count rounds so each worker keeps its
/// memo table for the whole search.
fn build_engines(
    config: &SynthesisConfig,
    jobs: usize,
    cancel: &Arc<AtomicBool>,
) -> Vec<Factorizer> {
    let factor_config = FactorConfig {
        max_realizations: config.max_solutions,
        deadline: config.deadline,
        cancel: Some(Arc::clone(cancel)),
        abort: config.abort.clone(),
        ..FactorConfig::default()
    };
    (0..jobs.max(1)).map(|_| Factorizer::new(factor_config.clone())).collect()
}

/// Dispatches one round to the sequential or work-stealing path; the
/// cancellation flag is re-armed per round (a previous round may have
/// tripped it when its solution cap was reached).
fn run_round(
    spec: &TruthTable,
    shapes: &[TreeShape],
    engines: &mut [Factorizer],
    max_solutions: usize,
    max_depth: Option<usize>,
    cancel: &AtomicBool,
) -> Result<RoundOutcome, SynthesisError> {
    cancel.store(false, Ordering::SeqCst);
    if engines.len() <= 1 {
        let engine = engines.first_mut().expect("at least one engine");
        parallel::run_round_sequential(spec, shapes, engine, max_solutions, max_depth, cancel)
    } else {
        parallel::run_round_parallel(spec, shapes, engines, max_solutions, max_depth, cancel)
    }
}

/// Number of distinct fences among `shapes`: the honest `fences_explored`
/// tally for search paths that enumerate shapes directly instead of
/// walking the fence family.
fn distinct_fence_count(shapes: &[TreeShape]) -> usize {
    shapes.iter().filter_map(TreeShape::fence).collect::<HashSet<_>>().len()
}

/// A pluggable synthesis cost objective.
///
/// The paper stresses that because the STP engine returns *all*
/// optimum chains as generic 2-LUTs, "different costs can be
/// considered when selecting the optimal circuit". This trait pushes
/// that flexibility into the search itself: the gate-count sweep keeps
/// running past its first solutions until no cheaper chain can exist,
/// so the returned set is optimal under the *objective*, not merely
/// under gate count.
///
/// Implementations provided here: [`GateCountObjective`] (the paper's
/// objective), [`DepthThenGatesObjective`] (minimum depth, then gates),
/// and [`GateProfileObjective`] (weighted per-operator costs, e.g.
/// XOR-cheap vs AND-cheap technologies).
pub trait CostObjective: Send + Sync + std::fmt::Debug {
    /// Short human-readable name (used by CLIs and reports).
    fn name(&self) -> String;

    /// Cost of a finished chain; lower is better.
    fn chain_cost(&self, chain: &Chain) -> u64;

    /// Lower bound on the cost of *any* chain with `gates` gates. The
    /// sweep stops once `gate_count_lower_bound(r)` exceeds the best
    /// cost found — so the bound must be sound (never above the true
    /// minimum) or solutions would be lost.
    fn gate_count_lower_bound(&self, gates: usize) -> u64;

    /// `true` when the search should be organized depth-major (minimum
    /// depth first, then minimum gates at that depth) instead of by
    /// ascending gate count.
    fn depth_major(&self) -> bool {
        false
    }

    /// `true` when the objective is exactly "minimize gate count": the
    /// sweep then terminates at the first non-empty round and takes the
    /// classic [`synthesize`] fast path unchanged.
    fn is_gate_count(&self) -> bool {
        false
    }
}

/// Minimum gate count — the paper's objective; ties in depth are not
/// broken, all optimum chains are returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCountObjective;

impl CostObjective for GateCountObjective {
    fn name(&self) -> String {
        "gates".to_string()
    }

    fn chain_cost(&self, chain: &Chain) -> u64 {
        chain.num_gates() as u64
    }

    fn gate_count_lower_bound(&self, gates: usize) -> u64 {
        gates as u64
    }

    fn is_gate_count(&self) -> bool {
        true
    }
}

/// Minimum depth first, then minimum gate count at that depth.
/// Depth-optimal chains may spend more gates than the gate-optimal
/// ones (the classic area/delay trade-off the paper's cost-model
/// flexibility targets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepthThenGatesObjective;

impl CostObjective for DepthThenGatesObjective {
    fn name(&self) -> String {
        "depth".to_string()
    }

    /// Lexicographic (depth, gates) packed into one word; only used for
    /// ranking finished chains — the sweep itself is depth-major.
    fn chain_cost(&self, chain: &Chain) -> u64 {
        ((chain.depth() as u64) << 32) | chain.num_gates() as u64
    }

    fn gate_count_lower_bound(&self, gates: usize) -> u64 {
        gates as u64
    }

    fn depth_major(&self) -> bool {
        true
    }
}

/// Weighted per-operator gate costs: each 2-input LUT class pays its
/// configured weight, absent classes pay the default.
///
/// The gate-count sweep under this objective is exact: it keeps
/// searching larger gate counts until `r × min_weight` exceeds the best
/// weighted cost found, where `min_weight` is the cheapest weight over
/// the ten nontrivial 2-input operators. (Chains never contain trivial
/// gates — constants and projections are simplified away — so trivial
/// LUT codes do not participate in the bound.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateProfileObjective {
    weights: std::collections::HashMap<u8, u64>,
    default_weight: u64,
    min_weight: u64,
}

/// The ten 2-input LUT codes that depend on both fanins.
const NONTRIVIAL_TT2: [u8; 10] = [0x1, 0x2, 0x4, 0x6, 0x7, 0x8, 0x9, 0xb, 0xd, 0xe];

impl GateProfileObjective {
    /// Builds a profile objective from per-LUT weights (keyed by the
    /// 4-bit truth table) and a default for absent codes.
    ///
    /// A zero minimum weight is allowed but weakens the termination
    /// bound to the plain gate budget — the sweep then always runs to
    /// `max_gates`.
    pub fn new(weights: std::collections::HashMap<u8, u64>, default_weight: u64) -> Self {
        let min_weight = NONTRIVIAL_TT2
            .iter()
            .map(|tt2| weights.get(tt2).copied().unwrap_or(default_weight))
            .min()
            .unwrap_or(default_weight);
        GateProfileObjective { weights, default_weight, min_weight }
    }

    /// Weight charged for one gate.
    pub fn gate_weight(&self, tt2: u8) -> u64 {
        self.weights.get(&tt2).copied().unwrap_or(self.default_weight)
    }
}

impl CostObjective for GateProfileObjective {
    fn name(&self) -> String {
        let mut keys: Vec<&u8> = self.weights.keys().collect();
        keys.sort();
        let parts: Vec<String> =
            keys.iter().map(|k| format!("{k:x}={}", self.weights[k])).collect();
        format!("profile:{},default={}", parts.join(","), self.default_weight)
    }

    fn chain_cost(&self, chain: &Chain) -> u64 {
        chain.gates().iter().map(|g| self.gate_weight(g.tt2)).sum()
    }

    fn gate_count_lower_bound(&self, gates: usize) -> u64 {
        (gates as u64).saturating_mul(self.min_weight)
    }
}

/// Parses a CLI-style objective spec: `gates`, `depth`, or
/// `profile:<tt2hex>=<weight>,…[,default=<weight>]` (e.g.
/// `profile:6=3,9=3,default=1` taxes XOR/XNOR at 3× the default).
///
/// # Errors
///
/// Returns a human-readable message naming the malformed component.
pub fn objective_from_spec(spec: &str) -> Result<Box<dyn CostObjective>, String> {
    match spec {
        "gates" => return Ok(Box::new(GateCountObjective)),
        "depth" => return Ok(Box::new(DepthThenGatesObjective)),
        _ => {}
    }
    let Some(body) = spec.strip_prefix("profile:") else {
        return Err(format!(
            "unknown objective `{spec}` (expected `gates`, `depth`, or `profile:<weights>`)"
        ));
    };
    if body.is_empty() {
        return Err("objective `profile:` needs at least one `<tt2hex>=<weight>` pair".to_string());
    }
    let mut weights = std::collections::HashMap::new();
    let mut default_weight = 1u64;
    for pair in body.split(',') {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("objective weight `{pair}` is not of the form `<key>=<weight>`"));
        };
        let weight: u64 = value
            .parse()
            .map_err(|_| format!("objective weight `{pair}` needs an unsigned integer weight"))?;
        if key == "default" {
            default_weight = weight;
            continue;
        }
        let tt2 = u8::from_str_radix(key, 16)
            .ok()
            .filter(|v| *v <= 0xf)
            .ok_or_else(|| format!("objective weight key `{key}` is not a 4-bit LUT hex code"))?;
        weights.insert(tt2, weight);
    }
    Ok(Box::new(GateProfileObjective::new(weights, default_weight)))
}

/// Runs STP exact synthesis under an explicit [`CostObjective`].
///
/// [`GateCountObjective`] takes the classic [`synthesize`] path.
/// [`DepthThenGatesObjective`] organizes the topology search by tree
/// height: for each depth `d` (from `⌈log₂(support)⌉` up) it explores
/// the shapes of height `≤ d` in increasing gate count, so the first
/// hit is depth-optimal with minimum gates among depth-optimal chains.
/// Any other objective runs the cost sweep: ascending gate-count rounds
/// that continue past the first solutions until
/// [`CostObjective::gate_count_lower_bound`] proves no cheaper chain
/// can exist, returning every chain at the optimum cost (trimmed to
/// [`SynthesisConfig::max_solutions`]).
///
/// Exactness caveat: within one round the solution cap applies to the
/// raw solution stream, so a binding `max_solutions` can hide ties (or,
/// for non-uniform objectives, cheaper chains) that would have appeared
/// later in that round. With the default cap this does not arise on the
/// paper's workloads.
///
/// # Errors
///
/// Same conditions as [`synthesize`].
///
/// # Examples
///
/// ```
/// use stp_synth::{synthesize_with_objective, DepthThenGatesObjective, SynthesisConfig};
/// use stp_tt::TruthTable;
///
/// // AND of four inputs: depth 2 needs the balanced tree.
/// let and4 = TruthTable::from_fn(4, |a| a.iter().all(|&b| b))?;
/// let result = synthesize_with_objective(
///     &and4,
///     &DepthThenGatesObjective,
///     &SynthesisConfig::default(),
/// )?;
/// assert_eq!(result.chains[0].depth(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize_with_objective(
    spec: &TruthTable,
    objective: &dyn CostObjective,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    if objective.is_gate_count() {
        synthesize(spec, config)
    } else if objective.depth_major() {
        synthesize_min_depth(spec, config)
    } else {
        synthesize_cost_sweep(spec, objective, config)
    }
}

/// The generalized gate-count sweep for weighted objectives: rounds
/// keep running after the first solutions until the objective's lower
/// bound proves the best cost cannot improve, collecting every chain at
/// the optimum cost across rounds.
fn synthesize_cost_sweep(
    spec: &TruthTable,
    objective: &dyn CostObjective,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    if let Some(chain) = trivial_chain(spec) {
        stp_telemetry::counter!("synth.trivial_hits").inc();
        return Ok(SynthesisResult {
            chains: vec![chain],
            gate_count: 0,
            shapes_explored: 0,
            fences_explored: 0,
            factor_nodes: 0,
        });
    }
    let support = spec.support();
    let start = support.len().saturating_sub(1).max(1);
    let jobs = parallel::resolve_jobs(config.jobs);
    let cancel = Arc::new(AtomicBool::new(false));
    let mut engines = build_engines(config, jobs, &cancel);
    let mut shapes_explored = 0usize;
    let mut fences_explored = 0usize;
    let mut best: Vec<Chain> = Vec::new();
    let mut best_cost: Option<u64> = None;
    for r in start..=config.max_gates {
        if let Some(cost) = best_cost {
            // Sound termination: every chain with r gates costs at
            // least the bound; equality could still tie, so only a
            // strictly larger bound ends the sweep.
            if objective.gate_count_lower_bound(r) > cost {
                break;
            }
        }
        let _round = stp_telemetry::span!("synth.round.r{}", r);
        stp_telemetry::counter!("synth.rounds").inc();
        let shapes: Vec<TreeShape> = {
            let _enum = stp_telemetry::span!("phase.fence_enum");
            let mut flat = if config.fence_pruning {
                let mut flat = Vec::new();
                for fence in &pruned_fences(r) {
                    fences_explored += 1;
                    flat.extend(shapes_for_fence(fence));
                }
                flat
            } else {
                let flat = shapes_with_gates(r);
                fences_explored += distinct_fence_count(&flat);
                flat
            };
            if let Some(d) = config.max_depth {
                flat.retain(|shape| shape.height() <= d);
            }
            flat
        };
        let outcome = run_round(
            spec,
            &shapes,
            &mut engines,
            config.max_solutions,
            config.max_depth,
            &cancel,
        )?;
        shapes_explored += outcome.shapes_explored;
        for chain in outcome.solutions {
            let cost = objective.chain_cost(&chain);
            match best_cost {
                Some(bc) if cost > bc => {}
                Some(bc) if cost == bc => best.push(chain),
                _ => {
                    best = vec![chain];
                    best_cost = Some(cost);
                }
            }
        }
    }
    if best.is_empty() {
        return Err(SynthesisError::GateLimitExceeded { max_gates: config.max_gates });
    }
    best.truncate(config.max_solutions);
    stp_telemetry::counter!("synth.solutions").add(best.len() as u64);
    let gate_count = best.iter().map(Chain::num_gates).min().expect("best is non-empty");
    Ok(SynthesisResult {
        chains: best,
        gate_count,
        shapes_explored,
        fences_explored,
        factor_nodes: engines.iter().map(Factorizer::nodes_explored).sum(),
    })
}

fn synthesize_min_depth(
    spec: &TruthTable,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    if let Some(chain) = trivial_chain(spec) {
        stp_telemetry::counter!("synth.trivial_hits").inc();
        return Ok(SynthesisResult {
            chains: vec![chain],
            gate_count: 0,
            shapes_explored: 0,
            fences_explored: 0,
            factor_nodes: 0,
        });
    }
    let support = spec.support();
    let min_gates = support.len().saturating_sub(1).max(1);
    // Depth lower bound: a binary tree of depth d covers ≤ 2^d leaves.
    let min_depth = support.len().next_power_of_two().trailing_zeros() as usize;
    let jobs = parallel::resolve_jobs(config.jobs);
    let cancel = Arc::new(AtomicBool::new(false));
    let mut engines = build_engines(config, jobs, &cancel);
    let mut shapes_explored = 0usize;
    let mut fences_explored = 0usize;
    // The depth budget is its own bound, no longer conflated with the
    // gate budget. The derived ceiling `max_gates.max(min_depth)` stays
    // sound in both directions: a chain's depth never exceeds its gate
    // count, so sweeping past it can only re-explore rounds the gate
    // budget already exhausted. An explicit `max_depth` below the
    // ceiling truncates the sweep (and names itself in the error); one
    // above it is vacuous and clamps down.
    let derived = config.max_gates.max(min_depth);
    let sweep_cap = config.max_depth.map_or(derived, |d| d.min(derived));
    for depth in min_depth.max(1)..=sweep_cap {
        // A depth-d binary tree has at most 2^d − 1 gates; larger gate
        // counts cannot appear at this depth.
        let r_cap = ((1usize << depth.min(24)) - 1).min(config.max_gates);
        for r in min_gates..=r_cap {
            let _round = stp_telemetry::span!("synth.round.r{}", r);
            stp_telemetry::counter!("synth.rounds").inc();
            let shapes: Vec<TreeShape> =
                shapes_with_gates(r).into_iter().filter(|shape| shape.height() <= depth).collect();
            fences_explored += distinct_fence_count(&shapes);
            let outcome =
                run_round(spec, &shapes, &mut engines, config.max_solutions, Some(depth), &cancel)?;
            shapes_explored += outcome.shapes_explored;
            if !outcome.solutions.is_empty() {
                return Ok(SynthesisResult {
                    chains: outcome.solutions,
                    gate_count: r,
                    shapes_explored,
                    fences_explored,
                    factor_nodes: engines.iter().map(Factorizer::nodes_explored).sum(),
                });
            }
        }
    }
    // An explicit depth budget that truncated the sweep is its own
    // failure mode; otherwise the gate budget was the binding limit.
    match config.max_depth {
        Some(max_depth) if max_depth < derived => {
            Err(SynthesisError::DepthLimitExceeded { max_depth })
        }
        _ => Err(SynthesisError::GateLimitExceeded { max_gates: config.max_gates }),
    }
}

/// A multi-output specification: `k` output truth tables over one
/// common input set, to be synthesized as a single chain with shared
/// internal nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiSpec {
    specs: Vec<TruthTable>,
}

impl MultiSpec {
    /// Builds a multi-output spec, validating that at least one output
    /// is present and all outputs share one arity.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidMultiSpec`] otherwise.
    pub fn new(specs: Vec<TruthTable>) -> Result<Self, SynthesisError> {
        if specs.is_empty() {
            return Err(SynthesisError::InvalidMultiSpec {
                message: "need at least one output".to_string(),
            });
        }
        let n = specs[0].num_vars();
        if let Some(bad) = specs.iter().find(|s| s.num_vars() != n) {
            return Err(SynthesisError::InvalidMultiSpec {
                message: format!("outputs disagree on arity: {n} vs {} inputs", bad.num_vars()),
            });
        }
        Ok(MultiSpec { specs })
    }

    /// The output truth tables, in declaration order.
    pub fn specs(&self) -> &[TruthTable] {
        &self.specs
    }

    /// Common input arity.
    pub fn num_vars(&self) -> usize {
        self.specs[0].num_vars()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.specs.len()
    }
}

/// Result of a successful [`synthesize_multi`] run.
#[derive(Debug, Clone)]
pub struct MultiSynthesisResult {
    /// The shared chain: one output tap per spec output, in spec order,
    /// with internal gates shared across outputs.
    pub chain: Chain,
    /// The objective cost of the shared chain.
    pub objective_cost: u64,
    /// Gate count of the chain each output would use when synthesized
    /// alone (the selected per-output solutions).
    pub per_output_gates: Vec<usize>,
    /// Gates saved by sharing: `Σ per_output_gates − chain.num_gates()`.
    pub gates_saved: usize,
    /// Per-output solution combinations scored during the merge.
    pub combinations_tried: usize,
    /// Aggregated topology statistics over the per-output searches.
    pub shapes_explored: usize,
    /// Aggregated fence statistics over the per-output searches.
    pub fences_explored: usize,
    /// Aggregated factorization statistics over the per-output searches.
    pub factor_nodes: u64,
}

/// Cap on the per-output solution combinations scored by the shared
/// merge. Beyond it the enumeration truncates deterministically (a
/// prefix in odometer order) and `synth.mo.combos_capped` records the
/// event.
const MAX_MO_COMBINATIONS: usize = 4096;

/// Synthesizes a [`MultiSpec`] as one shared chain.
///
/// Each output is first synthesized alone under `objective` — the
/// engine returns *all* optimum chains per output — then every
/// combination of per-output optima (bounded by an internal cap) is
/// merged with structural gate sharing ([`stp_chain::merge_chains`])
/// and scored under the objective; the cheapest merged chain wins, with
/// gate count and then enumeration order breaking ties deterministically
/// at any jobs count.
///
/// Guarantees: every output of the returned chain is individually
/// optimal under `objective`, and the shared chain minimizes the
/// objective over the cross product of per-output optimum sets — so its
/// gate count never exceeds the per-output sum. (Globally cheaper
/// chains that sacrifice single-output optimality for sharing are
/// outside this search space; see `DESIGN.md`.)
///
/// # Errors
///
/// Same conditions as [`synthesize`], from any output's search.
pub fn synthesize_multi(
    multi: &MultiSpec,
    objective: &dyn CostObjective,
    config: &SynthesisConfig,
) -> Result<MultiSynthesisResult, SynthesisError> {
    let _span = stp_telemetry::span!("synth.mo");
    stp_telemetry::counter!("synth.mo.calls").inc();
    stp_telemetry::counter!("synth.mo.outputs").add(multi.num_outputs() as u64);
    // Per-output all-optimum synthesis.
    let mut lists: Vec<Vec<Chain>> = Vec::with_capacity(multi.num_outputs());
    let mut shapes_explored = 0usize;
    let mut fences_explored = 0usize;
    let mut factor_nodes = 0u64;
    for spec in multi.specs() {
        let result = synthesize_with_objective(spec, objective, config)?;
        shapes_explored += result.shapes_explored;
        fences_explored += result.fences_explored;
        factor_nodes += result.factor_nodes;
        lists.push(result.chains);
    }
    // Deterministic bounded cross-product merge: enumerate solution
    // combinations in odometer order (last output fastest), merge with
    // structural sharing, keep the cheapest (first wins on ties).
    let total: usize = lists.iter().map(Vec::len).fold(1usize, |a, b| a.saturating_mul(b));
    let tried = total.min(MAX_MO_COMBINATIONS);
    if total > MAX_MO_COMBINATIONS {
        stp_telemetry::counter!("synth.mo.combos_capped").inc();
    }
    stp_telemetry::counter!("synth.mo.combos").add(tried as u64);
    let mut best: Option<(u64, usize, Chain, Vec<usize>)> = None;
    for combo in 0..tried {
        let mut idx = combo;
        let mut picks: Vec<&Chain> = Vec::with_capacity(lists.len());
        for list in lists.iter().rev() {
            picks.push(&list[idx % list.len()]);
            idx /= list.len();
        }
        picks.reverse();
        let merged = stp_chain::merge_chains(&picks)?;
        let cost = objective.chain_cost(&merged);
        let gates = merged.num_gates();
        let better = match &best {
            None => true,
            Some((bc, bg, _, _)) => cost < *bc || (cost == *bc && gates < *bg),
        };
        if better {
            let per_output: Vec<usize> = picks.iter().map(|c| c.num_gates()).collect();
            best = Some((cost, gates, merged, per_output));
        }
    }
    let (objective_cost, shared_gates, chain, per_output_gates) =
        best.expect("every output produced at least one chain");
    let gates_saved = per_output_gates.iter().sum::<usize>() - shared_gates;
    stp_telemetry::counter!("synth.mo.shared_gates").add(shared_gates as u64);
    stp_telemetry::counter!("synth.mo.gates_saved").add(gates_saved as u64);
    debug_assert_eq!(
        chain.simulate_outputs().map_err(SynthesisError::from)?,
        multi.specs().to_vec(),
        "shared chain must realize every output"
    );
    Ok(MultiSynthesisResult {
        chain,
        objective_cost,
        per_output_gates,
        gates_saved,
        combinations_tried: tried,
        shapes_explored,
        fences_explored,
        factor_nodes,
    })
}

/// [`synthesize_multi`] through the multi-output NPN class
/// representative tuple, against a shared [`Store`].
///
/// The spec vector is canonicalized with [`stp_tt::canonicalize_multi`]
/// (shared input transform, output permutation, per-output phases), the
/// representative tuple is looked up or synthesized once (gate-count
/// objective — the cached objective of the store), and the stored
/// shared chain is mapped back through
/// [`Chain::permute_negate_outputs`]. Returns the shared chain with
/// outputs in original spec order.
///
/// # Errors
///
/// Same conditions as [`synthesize`]; a stored exhaustion at a budget
/// at least as large as ours surfaces as [`SynthesisError::Timeout`].
pub fn synthesize_multi_npn_with_store(
    multi: &MultiSpec,
    config: &SynthesisConfig,
    store: &Store,
) -> Result<Chain, SynthesisError> {
    let budget = match config.deadline {
        Some(deadline) => deadline.saturating_duration_since(Instant::now()),
        None => Duration::MAX,
    };
    let outcome = store.solve_npn_multi(multi.specs(), budget, |reps| {
        let rep_multi = MultiSpec::new(reps.to_vec())?;
        match synthesize_multi(&rep_multi, &GateCountObjective, config) {
            Ok(result) => Ok(RepOutcome::Solved(vec![result.chain])),
            Err(SynthesisError::Timeout) => Ok(RepOutcome::Exhausted),
            Err(other) => Err(other),
        }
    })?;
    match outcome {
        NpnOutcome::Trivial(chain) => Ok(chain),
        NpnOutcome::Solved(chains) => {
            Ok(chains.into_iter().next().expect("solved entries are non-empty"))
        }
        NpnOutcome::Exhausted { .. } | NpnOutcome::WaitTimeout => Err(SynthesisError::Timeout),
        NpnOutcome::Poisoned { message } => Err(SynthesisError::JobPanicked { message }),
    }
}

/// Runs STP exact synthesis through the NPN class representative
/// (§III-A: "we use the negation-permutation-negation classification to
/// reduce the size of all valid DAG candidates").
///
/// The spec is canonicalized, the representative is synthesized, and
/// every solution chain is mapped back through the NPN transform
/// (inputs rewired and complemented inside gate LUTs, output phase
/// fixed) — so repeated members of one class share all the synthesis
/// work. Canonicalization is exhaustive (`n! · 2^{n+1}` transforms) and
/// intended for `n ≤ 5`.
///
/// # Errors
///
/// Same conditions as [`synthesize`].
pub fn synthesize_npn(
    spec: &TruthTable,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    synthesize_npn_with_store(spec, config, &Store::new())
}

/// [`synthesize_npn`] against a shared [`Store`]: the canonicalize →
/// lookup-or-synthesize → `permute_negate` map-back pipeline lives in
/// [`Store::solve_npn`]; this wrapper only adapts the engine to the
/// store's solver interface.
///
/// The store makes repeated traffic O(distinct NPN classes): the first
/// call per class runs the full engine, every later call (from any
/// thread, any entry path) answers from the stored representative
/// chains. A stored answer reports zero `shapes_explored` /
/// `fences_explored` / `factor_nodes` — no search happened.
///
/// Budget semantics: with a [`SynthesisConfig::deadline`] the remaining
/// wall-clock time is the offered budget; a timeout is recorded as
/// [`stp_store::Entry::Exhausted`] at that budget and retried only when
/// a later caller offers strictly more.
///
/// # Errors
///
/// Same conditions as [`synthesize`]; a stored exhaustion at a budget
/// at least as large as ours surfaces as [`SynthesisError::Timeout`]
/// without re-running the engine.
pub fn synthesize_npn_with_store(
    spec: &TruthTable,
    config: &SynthesisConfig,
    store: &Store,
) -> Result<SynthesisResult, SynthesisError> {
    let budget = match config.deadline {
        Some(deadline) => deadline.saturating_duration_since(Instant::now()),
        None => Duration::MAX,
    };
    // Search statistics only exist when the engine actually ran; a
    // store hit (or another thread's in-flight solve) reports zeros.
    let mut stats: Option<(usize, usize, u64)> = None;
    let outcome = store.solve_npn(spec, budget, |rep| match synthesize(rep, config) {
        Ok(result) => {
            stats = Some((result.shapes_explored, result.fences_explored, result.factor_nodes));
            Ok(RepOutcome::Solved(result.chains))
        }
        Err(SynthesisError::Timeout) => Ok(RepOutcome::Exhausted),
        Err(other) => Err(other),
    })?;
    match outcome {
        NpnOutcome::Trivial(chain) => Ok(SynthesisResult {
            chains: vec![chain],
            gate_count: 0,
            shapes_explored: 0,
            fences_explored: 0,
            factor_nodes: 0,
        }),
        NpnOutcome::Solved(chains) => {
            let gate_count = chains[0].num_gates();
            let (shapes_explored, fences_explored, factor_nodes) = stats.unwrap_or((0, 0, 0));
            Ok(SynthesisResult {
                chains,
                gate_count,
                shapes_explored,
                fences_explored,
                factor_nodes,
            })
        }
        NpnOutcome::Exhausted { .. } | NpnOutcome::WaitTimeout => Err(SynthesisError::Timeout),
        NpnOutcome::Poisoned { message } => Err(SynthesisError::JobPanicked { message }),
    }
}

/// Outcome tally of [`warm_classes`] / [`warm_npn4`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmReport {
    /// NPN class representatives visited.
    pub classes: usize,
    /// Classes synthesized fresh during this warm pass.
    pub solved: usize,
    /// Classes whose synthesis timed out within the per-class budget.
    pub exhausted: usize,
    /// Classes already answered by the store (or trivially, with zero
    /// gates) without running the engine.
    pub cached: usize,
}

/// Warms `store` with every NPN class representative of arity 0–4
/// (the paper's 222 four-input classes plus the smaller arities that
/// rewriting cuts produce), so subsequent NPN4-suite or rewrite runs
/// answer entirely from the store.
///
/// `per_class_timeout` bounds each class independently (overriding any
/// deadline in `config`); classes that time out are recorded as
/// exhausted — and retried on the next warm pass with a larger budget —
/// rather than aborting the warm-up.
///
/// The classes run through the instance-level pool
/// ([`crate::run_instances`]): `config.jobs` is the single global
/// budget for the whole warm, split between class-level workers and
/// each class's nested shape-level pool. Whether a class counts as
/// `solved` or `cached` is decided by a per-class
/// [`stp_telemetry::CounterScope`] observing `store.misses` — exact
/// even when classes warm concurrently (a store-level miss-count delta
/// would race).
///
/// # Errors
///
/// Propagates any non-timeout engine failure
/// (e.g. [`SynthesisError::GateLimitExceeded`]); a panicking class
/// surfaces as [`SynthesisError::JobPanicked`] after the surviving
/// classes finish warming.
pub fn warm_npn4(
    store: &Store,
    config: &SynthesisConfig,
    per_class_timeout: Option<Duration>,
) -> Result<WarmReport, SynthesisError> {
    let _span = stp_telemetry::span!("store.warm_npn4");
    let reps: Vec<TruthTable> = (0..=4).flat_map(stp_tt::npn_classes).collect();
    warm_classes(store, config, per_class_timeout, &reps)
}

/// Warms `store` with an arbitrary list of class representatives — the
/// general form of [`warm_npn4`] used by the `warm` shard farm to cover
/// seeded NPN5/NPN6 samples (or any future class list).
///
/// Each entry of `reps` is one class to warm; representatives need not
/// be canonical (each is canonicalized on its way into the store, so a
/// list of raw functions warms their classes). Scheduling, per-class
/// timeouts, and the solved/cached/exhausted classification follow
/// [`warm_npn4`] exactly.
///
/// # Errors
///
/// Propagates any non-timeout engine failure; a panicking class
/// surfaces as [`SynthesisError::JobPanicked`] after the surviving
/// classes finish warming.
pub fn warm_classes(
    store: &Store,
    config: &SynthesisConfig,
    per_class_timeout: Option<Duration>,
    reps: &[TruthTable],
) -> Result<WarmReport, SynthesisError> {
    let _span = stp_telemetry::span!("store.warm_classes");
    /// How one class participated in the warm pass.
    enum ClassOutcome {
        Solved,
        Cached,
        Exhausted,
    }
    let budget = crate::parallel::JobBudget::new(config.jobs);
    let results = crate::parallel::run_instances(&budget, reps.len(), |idx, shape_jobs| {
        let scope = stp_telemetry::CounterScope::enter();
        let mut per_class = config.clone();
        per_class.jobs = shape_jobs;
        per_class.deadline = per_class_timeout.map(|t| Instant::now() + t);
        let outcome = synthesize_npn_with_store(&reps[idx], &per_class, store);
        let counters = scope.finish();
        match outcome {
            // A fresh synthesis registers exactly one store miss on
            // this class's thread; answering from the store (or the
            // trivial fast path) registers none.
            Ok(_) if counters.get("store.misses").copied().unwrap_or(0) > 0 => {
                Ok(ClassOutcome::Solved)
            }
            Ok(_) => Ok(ClassOutcome::Cached),
            Err(SynthesisError::Timeout) => Ok(ClassOutcome::Exhausted),
            Err(other) => Err(other),
        }
    });
    let mut report = WarmReport { classes: reps.len(), ..WarmReport::default() };
    let mut first_error: Option<SynthesisError> = None;
    for result in results {
        match result {
            Ok(Ok(ClassOutcome::Solved)) => report.solved += 1,
            Ok(Ok(ClassOutcome::Cached)) => report.cached += 1,
            Ok(Ok(ClassOutcome::Exhausted)) => report.exhausted += 1,
            Ok(Err(e)) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Err(message) => {
                if first_error.is_none() {
                    first_error = Some(SynthesisError::JobPanicked { message });
                }
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_synthesizes_with_three_gates() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 3);
        for chain in &result.chains {
            assert_eq!(chain.num_gates(), 3);
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn trivial_functions_cost_zero_gates() {
        for spec in [
            TruthTable::constant(3, true).unwrap(),
            TruthTable::constant(3, false).unwrap(),
            TruthTable::variable(3, 1).unwrap(),
            !TruthTable::variable(3, 2).unwrap(),
        ] {
            let result = synthesize_default(&spec).unwrap();
            assert_eq!(result.gate_count, 0);
            assert_eq!(result.chains[0].simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn two_input_functions_cost_one_gate() {
        let spec = TruthTable::from_hex(2, "6").unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 1);
    }

    #[test]
    fn majority_costs_four_gates() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let result = synthesize_default(&maj).unwrap();
        assert_eq!(result.gate_count, 4, "MAJ3 needs 4 two-input gates");
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], maj);
        }
    }

    #[test]
    fn parity4_costs_three_gates() {
        let spec = TruthTable::from_fn(4, |a| a.iter().fold(false, |x, &b| x ^ b)).unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 3);
    }

    #[test]
    fn all_solutions_are_distinct() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = synthesize_default(&spec).unwrap();
        let mut keys: Vec<String> = result.chains.iter().map(|c| format!("{c}")).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn pruning_ablation_agrees_on_gate_count() {
        // Fence pruning must not change the optimum on DSD-style
        // functions.
        for hex in ["8ff8", "7888", "f888"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let pruned = synthesize_default(&spec).unwrap();
            let full = synthesize(
                &spec,
                &SynthesisConfig { fence_pruning: false, ..SynthesisConfig::default() },
            )
            .unwrap();
            assert_eq!(pruned.gate_count, full.gate_count, "hex {hex}");
            assert!(full.shapes_explored >= pruned.shapes_explored);
        }
    }

    #[test]
    fn gate_limit_is_reported() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let err = synthesize(&maj, &SynthesisConfig { max_gates: 3, ..SynthesisConfig::default() })
            .unwrap_err();
        assert!(matches!(err, SynthesisError::GateLimitExceeded { max_gates: 3 }));
    }

    #[test]
    fn external_abort_flag_revokes_the_run_and_is_never_rearmed() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        let config = SynthesisConfig {
            abort: Some(Arc::clone(&flag)),
            jobs: 1,
            ..SynthesisConfig::default()
        };
        let err = synthesize(&spec, &config).unwrap_err();
        assert!(matches!(err, SynthesisError::Timeout), "a pre-set abort flag revokes the run");
        // The engine must not clear the host's flag (the per-round
        // cancel re-arm does not apply to it).
        assert!(flag.load(Ordering::SeqCst), "the engine never touches the host's abort flag");
        flag.store(false, Ordering::SeqCst);
        let result = synthesize(&spec, &config).unwrap();
        assert_eq!(result.gate_count, 3, "a cleared abort flag restores normal operation");
    }

    #[test]
    fn timeout_is_reported() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let err = synthesize(
            &spec,
            &SynthesisConfig {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..SynthesisConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::Timeout));
    }

    #[test]
    fn best_by_secondary_cost() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = synthesize_default(&spec).unwrap();
        let best_depth = result.best_by(&CostModel::Depth).unwrap();
        assert_eq!(best_depth.depth(), 2);
        // Penalize XOR gates heavily: a non-XOR solution (if any) wins;
        // at minimum the call must return a chain.
        let mut weights = std::collections::HashMap::new();
        weights.insert(0x6u8, 100u64);
        weights.insert(0x9u8, 100u64);
        assert!(result.best_by(&CostModel::WeightedOps { weights, default: 1 }).is_some());
    }

    #[test]
    fn five_input_dsd_function() {
        let spec = TruthTable::from_fn(5, |a| ((a[0] & a[1]) ^ a[2]) | (a[3] & a[4])).unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 4);
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn depth_objective_finds_balanced_trees() {
        // Parity of four inputs: gate-optimal is 3 gates; the balanced
        // tree also has depth 2 — both objectives coincide here.
        let spec = TruthTable::from_fn(4, |a| a.iter().fold(false, |x, &b| x ^ b)).unwrap();
        let result =
            synthesize_with_objective(&spec, &DepthThenGatesObjective, &SynthesisConfig::default())
                .unwrap();
        assert_eq!(result.gate_count, 3);
        assert!(result.chains.iter().all(|c| c.depth() == 2));
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn depth_objective_can_trade_gates_for_depth() {
        // MAJ3 is gate-optimal at 4 gates; check the depth objective
        // returns depth-minimal chains that still realize the spec and
        // never beat the gate optimum on depth… (it may match it).
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let by_gates = synthesize_default(&maj).unwrap();
        let by_depth =
            synthesize_with_objective(&maj, &DepthThenGatesObjective, &SynthesisConfig::default())
                .unwrap();
        let min_depth_all: usize = by_depth.chains.iter().map(|c| c.depth()).min().unwrap();
        let min_depth_gateopt: usize = by_gates.chains.iter().map(|c| c.depth()).min().unwrap();
        assert!(min_depth_all <= min_depth_gateopt);
        for chain in &by_depth.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], maj);
        }
    }

    #[test]
    fn objective_min_gates_matches_synthesize() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let a = synthesize_default(&spec).unwrap();
        let b = synthesize_with_objective(&spec, &GateCountObjective, &SynthesisConfig::default())
            .unwrap();
        assert_eq!(a.gate_count, b.gate_count);
        assert_eq!(a.chains.len(), b.chains.len());
    }

    #[test]
    fn npn_synthesis_matches_direct_synthesis() {
        for hex in ["8ff8", "6996", "cafe", "1234", "0660"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let direct = synthesize_default(&spec).unwrap();
            let via_npn = synthesize_npn(&spec, &SynthesisConfig::default()).unwrap();
            assert_eq!(direct.gate_count, via_npn.gate_count, "hex {hex}");
            for chain in &via_npn.chains {
                assert_eq!(chain.simulate_outputs().unwrap()[0], spec, "hex {hex}");
                assert_eq!(chain.num_gates(), via_npn.gate_count);
            }
        }
    }

    #[test]
    fn npn_synthesis_shares_class_work() {
        // AND and NOR are one NPN class: both go through the same
        // representative.
        let and2 = TruthTable::from_hex(2, "8").unwrap();
        let nor2 = TruthTable::from_hex(2, "1").unwrap();
        let a = synthesize_npn(&and2, &SynthesisConfig::default()).unwrap();
        let b = synthesize_npn(&nor2, &SynthesisConfig::default()).unwrap();
        assert_eq!(a.gate_count, 1);
        assert_eq!(b.gate_count, 1);
        assert_eq!(a.chains[0].simulate_outputs().unwrap()[0], and2);
        assert_eq!(b.chains[0].simulate_outputs().unwrap()[0], nor2);
    }

    #[test]
    fn sixteen_var_spec_searches_past_first_round() {
        // Regression: an `n >= MAX_VARS` guard used to abort the
        // gate-count loop after the first round for 16-variable specs,
        // misreporting `GateLimitExceeded` for anything needing more
        // than `support − 1` gates.
        let spec =
            TruthTable::from_fn(16, |a| (a[0] & a[1]) | (a[1] & a[15]) | (a[0] & a[15])).unwrap();
        let result =
            synthesize(&spec, &SynthesisConfig { max_gates: 5, ..SynthesisConfig::default() })
                .unwrap();
        assert_eq!(result.gate_count, 4, "MAJ3 embedded in 16 vars needs 4 gates");
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn max_solutions_cap_is_exact_across_fence_groups() {
        // Regression: reaching the cap used to break only the
        // shape loop, so every later fence group pushed one verified
        // chain past the cap. Parity-4 has solutions in two fence
        // families (the balanced tree and the gate chain).
        let spec = TruthTable::from_hex(4, "6996").unwrap();
        for max_solutions in [1usize, 2, 3] {
            let result =
                synthesize(&spec, &SynthesisConfig { max_solutions, ..SynthesisConfig::default() })
                    .unwrap();
            assert_eq!(result.chains.len(), max_solutions, "cap {max_solutions} must bind exactly");
        }
    }

    #[test]
    fn max_solutions_cap_is_exact_for_depth_objective() {
        let spec = TruthTable::from_hex(4, "6996").unwrap();
        let result = synthesize_with_objective(
            &spec,
            &DepthThenGatesObjective,
            &SynthesisConfig { max_solutions: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        assert_eq!(result.chains.len(), 1);
    }

    #[test]
    fn min_depth_reports_real_fence_count() {
        // Regression: `synthesize_min_depth` used to hard-code
        // `fences_explored: 0` even though it examines whole shape
        // families.
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result =
            synthesize_with_objective(&spec, &DepthThenGatesObjective, &SynthesisConfig::default())
                .unwrap();
        assert!(result.fences_explored > 0, "depth search examined shapes, hence fences");
    }

    #[test]
    fn parallel_search_matches_sequential_output() {
        for hex in ["8ff8", "6996", "cafe", "e8e8"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let seq = synthesize(&spec, &SynthesisConfig { jobs: 1, ..SynthesisConfig::default() })
                .unwrap();
            let par = synthesize(&spec, &SynthesisConfig { jobs: 4, ..SynthesisConfig::default() })
                .unwrap();
            assert_eq!(seq.gate_count, par.gate_count, "hex {hex}");
            let seq_chains: Vec<String> = seq.chains.iter().map(|c| format!("{c}")).collect();
            let par_chains: Vec<String> = par.chains.iter().map(|c| format!("{c}")).collect();
            assert_eq!(seq_chains, par_chains, "hex {hex}: chain sets and order must match");
        }
    }

    #[test]
    fn parallel_search_respects_exact_cap() {
        let spec = TruthTable::from_hex(4, "6996").unwrap();
        let seq = synthesize(
            &spec,
            &SynthesisConfig { jobs: 1, max_solutions: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        let par = synthesize(
            &spec,
            &SynthesisConfig { jobs: 4, max_solutions: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        assert_eq!(seq.chains.len(), 1);
        assert_eq!(par.chains.len(), 1);
        assert_eq!(format!("{}", seq.chains[0]), format!("{}", par.chains[0]));
    }

    #[test]
    fn parallel_timeout_is_reported() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let err = synthesize(
            &spec,
            &SynthesisConfig {
                jobs: 4,
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..SynthesisConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::Timeout));
    }

    #[test]
    fn depth_objective_parallel_matches_sequential() {
        let spec = TruthTable::from_fn(4, |a| a.iter().fold(false, |x, &b| x ^ b)).unwrap();
        let seq = synthesize_with_objective(
            &spec,
            &DepthThenGatesObjective,
            &SynthesisConfig { jobs: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        let par = synthesize_with_objective(
            &spec,
            &DepthThenGatesObjective,
            &SynthesisConfig { jobs: 3, ..SynthesisConfig::default() },
        )
        .unwrap();
        assert_eq!(seq.gate_count, par.gate_count);
        let seq_chains: Vec<String> = seq.chains.iter().map(|c| format!("{c}")).collect();
        let par_chains: Vec<String> = par.chains.iter().map(|c| format!("{c}")).collect();
        assert_eq!(seq_chains, par_chains);
    }

    #[test]
    fn function_with_partial_support() {
        // Depends only on x1 and x3 of four inputs.
        let spec = TruthTable::from_fn(4, |a| a[1] ^ a[3]).unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 1);
        assert_eq!(result.chains[0].simulate_outputs().unwrap()[0], spec);
    }

    #[test]
    fn explicit_depth_budget_is_its_own_bound() {
        // MAJ3 needs depth ≥ 2, so an explicit depth budget of 1 must
        // fail with the depth error — historically the depth sweep ran
        // off the gate budget and could only report GateLimitExceeded.
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let tight = SynthesisConfig { max_depth: Some(1), jobs: 1, ..SynthesisConfig::default() };
        let err = synthesize_with_objective(&maj, &DepthThenGatesObjective, &tight).unwrap_err();
        assert!(matches!(err, SynthesisError::DepthLimitExceeded { max_depth: 1 }), "got {err:?}");
        // A budget at or above the depth optimum changes nothing.
        let free = SynthesisConfig { jobs: 1, ..SynthesisConfig::default() };
        let unrestricted =
            synthesize_with_objective(&maj, &DepthThenGatesObjective, &free).unwrap();
        let roomy = SynthesisConfig { max_depth: Some(3), jobs: 1, ..SynthesisConfig::default() };
        let bounded = synthesize_with_objective(&maj, &DepthThenGatesObjective, &roomy).unwrap();
        let render = |r: &SynthesisResult| -> Vec<String> {
            r.chains.iter().map(|c| format!("{c}")).collect()
        };
        assert_eq!(render(&unrestricted), render(&bounded));
    }

    #[test]
    fn gate_count_search_honors_the_depth_budget() {
        // Parity over four inputs takes three XOR gates, either linear
        // (depth 3) or balanced (depth 2). A depth budget of 2 keeps
        // only the balanced trees without changing the optimum count.
        let spec = TruthTable::from_fn(4, |a| a.iter().fold(false, |x, &b| x ^ b)).unwrap();
        let free = SynthesisConfig { jobs: 1, ..SynthesisConfig::default() };
        let all = synthesize(&spec, &free).unwrap();
        assert!(all.chains.iter().any(|c| c.depth() > 2), "linear trees exist unrestricted");
        let bounded = synthesize(
            &spec,
            &SynthesisConfig { max_depth: Some(2), jobs: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        assert_eq!(bounded.gate_count, 3);
        assert!(!bounded.chains.is_empty());
        assert!(bounded.chains.iter().all(|c| c.depth() <= 2));
        assert!(bounded.chains.len() < all.chains.len());
    }

    #[test]
    fn objective_specs_parse_and_reject() {
        assert!(objective_from_spec("gates").unwrap().is_gate_count());
        assert!(objective_from_spec("depth").unwrap().depth_major());
        let profile = objective_from_spec("profile:6=3,9=3,default=2").unwrap();
        assert_eq!(profile.name(), "profile:6=3,9=3,default=2");
        // min weight is the default 2 (only XOR/XNOR pay 3).
        assert_eq!(profile.gate_count_lower_bound(2), 4);
        for (spec, needle) in [
            ("speed", "unknown objective `speed`"),
            ("profile:", "at least one"),
            ("profile:6", "not of the form"),
            ("profile:zz=1", "not a 4-bit LUT hex code"),
            ("profile:6=x", "unsigned integer"),
        ] {
            let err = objective_from_spec(spec).unwrap_err();
            assert!(err.contains(needle), "`{err}` should name the bad component `{needle}`");
        }
    }

    #[test]
    fn profile_objective_trades_gate_count_for_cheap_operators() {
        // XOR/XNOR cost 5 under this profile while everything else
        // costs 1: the single-gate XOR realization (cost 5) loses to a
        // three-gate AND/OR decomposition (cost 3), so the sweep must
        // keep searching past the first non-empty round.
        let xor = TruthTable::from_hex(2, "6").unwrap();
        let profile = objective_from_spec("profile:6=5,9=5,default=1").unwrap();
        let config = SynthesisConfig { jobs: 1, ..SynthesisConfig::default() };
        let result = synthesize_with_objective(&xor, profile.as_ref(), &config).unwrap();
        assert_eq!(result.gate_count, 3);
        assert!(!result.chains.is_empty());
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], xor);
            assert_eq!(profile.chain_cost(chain), 3);
            assert!(chain.gates().iter().all(|g| g.tt2 != 0x6 && g.tt2 != 0x9));
        }
    }

    #[test]
    fn multi_spec_validates_inputs() {
        assert!(matches!(MultiSpec::new(vec![]), Err(SynthesisError::InvalidMultiSpec { .. })));
        let two = TruthTable::from_hex(2, "6").unwrap();
        let three = TruthTable::from_hex(3, "e8").unwrap();
        assert!(matches!(
            MultiSpec::new(vec![two, three]),
            Err(SynthesisError::InvalidMultiSpec { .. })
        ));
    }

    #[test]
    fn multi_output_full_adder_shares_gates() {
        // sum = a⊕b⊕c (2 gates), carry = MAJ3 (4 gates); among the
        // all-optimum sets there is a pair sharing an a⊕b node, so the
        // merged chain spends 5 gates, not 6.
        let sum = TruthTable::from_fn(3, |a| a[0] ^ a[1] ^ a[2]).unwrap();
        let carry = TruthTable::from_hex(3, "e8").unwrap();
        let multi = MultiSpec::new(vec![sum.clone(), carry.clone()]).unwrap();
        let config = SynthesisConfig { jobs: 1, ..SynthesisConfig::default() };
        let result = synthesize_multi(&multi, &GateCountObjective, &config).unwrap();
        assert_eq!(result.chain.simulate_outputs().unwrap(), vec![sum, carry]);
        assert_eq!(result.per_output_gates, vec![2, 4]);
        assert!(result.gates_saved >= 1, "the adder must share at least one gate");
        assert_eq!(result.chain.num_gates(), 5);
        assert_eq!(result.objective_cost, result.chain.num_gates() as u64);
        assert!(result.combinations_tried >= 1);
    }

    #[test]
    fn multi_output_synthesis_is_deterministic_across_jobs() {
        let sum = TruthTable::from_fn(3, |a| a[0] ^ a[1] ^ a[2]).unwrap();
        let carry = TruthTable::from_hex(3, "e8").unwrap();
        let multi = MultiSpec::new(vec![sum, carry]).unwrap();
        let seq = synthesize_multi(
            &multi,
            &GateCountObjective,
            &SynthesisConfig { jobs: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        let par = synthesize_multi(
            &multi,
            &GateCountObjective,
            &SynthesisConfig { jobs: 4, ..SynthesisConfig::default() },
        )
        .unwrap();
        assert_eq!(format!("{}", seq.chain), format!("{}", par.chain));
        assert_eq!(seq.per_output_gates, par.per_output_gates);
        assert_eq!(seq.gates_saved, par.gates_saved);
    }

    #[test]
    fn multi_output_store_shares_orbit_entries() {
        let store = Store::new();
        let sum = TruthTable::from_fn(3, |a| a[0] ^ a[1] ^ a[2]).unwrap();
        let carry = TruthTable::from_hex(3, "e8").unwrap();
        let config = SynthesisConfig { jobs: 1, ..SynthesisConfig::default() };
        let first = MultiSpec::new(vec![sum.clone(), carry.clone()]).unwrap();
        let chain = synthesize_multi_npn_with_store(&first, &config, &store).unwrap();
        assert_eq!(chain.simulate_outputs().unwrap(), vec![sum.clone(), carry.clone()]);
        assert_eq!(store.misses(), 1);
        // An orbit member — outputs swapped, one output complemented —
        // answers from the same entry without re-running the engine.
        let second = MultiSpec::new(vec![!carry.clone(), sum.clone()]).unwrap();
        let mapped = synthesize_multi_npn_with_store(&second, &config, &store).unwrap();
        assert_eq!(mapped.simulate_outputs().unwrap(), vec![!carry, sum]);
        assert_eq!(store.misses(), 1, "the orbit member must hit the cached class");
        assert_eq!(store.hits(), 1);
        assert_eq!(store.len(), 1);
    }
}
