//! The top-level STP exact-synthesis loop (§III of the paper).
//!
//! Given a specification `f`, the algorithm proceeds exactly as the
//! paper's steps (i)–(iv):
//!
//! 1. initialize the gate constraint from the input count (a function
//!    depending on `n` variables needs at least `n − 1` two-input
//!    gates);
//! 2. generate the candidate topologies for the current constraint from
//!    the (optionally pruned) fence family;
//! 3. encode the Boolean-chain candidates by STP factorization
//!    ([`crate::Factorizer`]); when none exist, increase the constraint
//!    and repeat;
//! 4. check every candidate with the STP circuit AllSAT solver
//!    ([`crate::verify_chain`]) and return **all** verified optimum
//!    chains in one pass.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stp_chain::{trivial_chain, Chain, CostModel};
use stp_fence::{pruned_fences, shapes_for_fence, shapes_with_gates, TreeShape};
use stp_store::{NpnOutcome, RepOutcome, Store};
use stp_tt::TruthTable;

use crate::error::SynthesisError;
use crate::factor::{FactorConfig, Factorizer};
use crate::parallel::{self, RoundOutcome};

/// Configuration for [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Apply the paper's fence pruning (§III-A). Disabling it explores
    /// every tree topology per gate count — the ablation baseline.
    pub fence_pruning: bool,
    /// Upper bound on the gate count before giving up.
    pub max_gates: usize,
    /// Optional wall-clock deadline (per-instance timeout in the
    /// benchmark harness).
    pub deadline: Option<Instant>,
    /// Cap on the number of solutions materialized.
    pub max_solutions: usize,
    /// Worker threads for the shape/factorize/verify pipeline: `1`
    /// searches sequentially, `0` uses one worker per available CPU.
    /// The default comes from the `STP_JOBS` environment variable
    /// (falling back to `1`). Any value produces byte-identical
    /// solution sets (see `DESIGN.md`, *Threading model*).
    pub jobs: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            fence_pruning: true,
            max_gates: 20,
            deadline: None,
            max_solutions: 4096,
            jobs: parallel::jobs_from_env(),
        }
    }
}

/// Result of a successful synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// Every optimum chain found (all solutions, one pass), verified by
    /// the circuit solver.
    pub chains: Vec<Chain>,
    /// The optimum gate count.
    pub gate_count: usize,
    /// Number of tree topologies examined. Under a solution cap or
    /// deadline, parallel runs may examine fewer shapes than sequential
    /// ones (cancelled workers stop counting); the chains themselves are
    /// identical either way.
    pub shapes_explored: usize,
    /// Number of fence patterns whose shape families were examined.
    /// With fence pruning this counts the pruned fence family per
    /// round; search paths that enumerate shapes directly (pruning
    /// disabled, or the depth objective) count the distinct fences of
    /// the examined shapes.
    pub fences_explored: usize,
    /// Number of factorization subproblems solved.
    pub factor_nodes: u64,
}

impl SynthesisResult {
    /// Picks the solution minimizing a secondary cost model — the
    /// "different costs can be considered" selector from the paper's
    /// abstract.
    ///
    /// Returns `None` when no chains were found (which only happens for
    /// results built by hand).
    pub fn best_by(&self, model: &CostModel) -> Option<&Chain> {
        self.chains.iter().min_by_key(|c| c.cost(model))
    }
}

/// Runs STP-based exact synthesis with the default configuration.
///
/// # Errors
///
/// See [`synthesize`].
///
/// # Examples
///
/// ```
/// use stp_synth::synthesize_default;
/// use stp_tt::TruthTable;
///
/// let spec = TruthTable::from_hex(4, "8ff8")?;
/// let result = synthesize_default(&spec)?;
/// assert_eq!(result.gate_count, 3);
/// assert!(!result.chains.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize_default(spec: &TruthTable) -> Result<SynthesisResult, SynthesisError> {
    synthesize(spec, &SynthesisConfig::default())
}

/// Runs STP-based exact synthesis: returns all minimum-gate-count
/// 2-LUT chains realizing `spec`, each verified with the STP circuit
/// solver.
///
/// Optimality is with respect to the explored topology family: tree
/// skeletons (with repeated-input reconvergence per Property 3) drawn
/// from the fence family, pruned per §III-A when
/// [`SynthesisConfig::fence_pruning`] is set — matching the paper's
/// "all optimal Boolean chains of current topological constraints".
///
/// # Errors
///
/// * [`SynthesisError::Timeout`] when the deadline expires;
/// * [`SynthesisError::GateLimitExceeded`] when no realization exists
///   within [`SynthesisConfig::max_gates`].
pub fn synthesize(
    spec: &TruthTable,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    // Trivial specifications need no gates.
    if let Some(chain) = trivial_chain(spec) {
        stp_telemetry::counter!("synth.trivial_hits").inc();
        return Ok(SynthesisResult {
            chains: vec![chain],
            gate_count: 0,
            shapes_explored: 0,
            fences_explored: 0,
            factor_nodes: 0,
        });
    }
    let support = spec.support();
    // Paper step (i): a function of k support variables needs at least
    // k − 1 binary gates.
    let start = support.len().saturating_sub(1).max(1);
    let jobs = parallel::resolve_jobs(config.jobs);
    let cancel = Arc::new(AtomicBool::new(false));
    let mut engines = build_engines(config, jobs, &cancel);
    let mut shapes_explored = 0usize;
    let mut fences_explored = 0usize;
    for r in start..=config.max_gates {
        let _round = stp_telemetry::span!("synth.round.r{}", r);
        stp_telemetry::counter!("synth.rounds").inc();
        // Flatten the fence groups into one shape-indexed work list; the
        // group boundaries carry no search semantics, only the fence
        // tally.
        let shapes: Vec<TreeShape> = {
            let _enum = stp_telemetry::span!("phase.fence_enum");
            if config.fence_pruning {
                let mut flat = Vec::new();
                for fence in &pruned_fences(r) {
                    fences_explored += 1;
                    flat.extend(shapes_for_fence(fence));
                }
                flat
            } else {
                let flat = shapes_with_gates(r);
                fences_explored += distinct_fence_count(&flat);
                flat
            }
        };
        stp_telemetry::debug!("synth: r={r}, {} shapes, {jobs} worker(s)", shapes.len());
        let outcome = run_round(spec, &shapes, &mut engines, config.max_solutions, None, &cancel)?;
        shapes_explored += outcome.shapes_explored;
        if !outcome.solutions.is_empty() {
            stp_telemetry::counter!("synth.solutions").add(outcome.solutions.len() as u64);
            return Ok(SynthesisResult {
                chains: outcome.solutions,
                gate_count: r,
                shapes_explored,
                fences_explored,
                factor_nodes: engines.iter().map(Factorizer::nodes_explored).sum(),
            });
        }
    }
    Err(SynthesisError::GateLimitExceeded { max_gates: config.max_gates })
}

/// Builds the per-worker factorization engines for one synthesis run.
/// The engines persist across gate-count rounds so each worker keeps its
/// memo table for the whole search.
fn build_engines(
    config: &SynthesisConfig,
    jobs: usize,
    cancel: &Arc<AtomicBool>,
) -> Vec<Factorizer> {
    let factor_config = FactorConfig {
        max_realizations: config.max_solutions,
        deadline: config.deadline,
        cancel: Some(Arc::clone(cancel)),
    };
    (0..jobs.max(1)).map(|_| Factorizer::new(factor_config.clone())).collect()
}

/// Dispatches one round to the sequential or work-stealing path; the
/// cancellation flag is re-armed per round (a previous round may have
/// tripped it when its solution cap was reached).
fn run_round(
    spec: &TruthTable,
    shapes: &[TreeShape],
    engines: &mut [Factorizer],
    max_solutions: usize,
    max_depth: Option<usize>,
    cancel: &AtomicBool,
) -> Result<RoundOutcome, SynthesisError> {
    cancel.store(false, Ordering::SeqCst);
    if engines.len() <= 1 {
        let engine = engines.first_mut().expect("at least one engine");
        parallel::run_round_sequential(spec, shapes, engine, max_solutions, max_depth, cancel)
    } else {
        parallel::run_round_parallel(spec, shapes, engines, max_solutions, max_depth, cancel)
    }
}

/// Number of distinct fences among `shapes`: the honest `fences_explored`
/// tally for search paths that enumerate shapes directly instead of
/// walking the fence family.
fn distinct_fence_count(shapes: &[TreeShape]) -> usize {
    shapes.iter().filter_map(TreeShape::fence).collect::<HashSet<_>>().len()
}

/// Synthesis objective for [`synthesize_with_objective`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimum gate count (the paper's objective); ties in depth are
    /// not broken — all optimum chains are returned.
    MinGates,
    /// Minimum depth first, then minimum gate count at that depth.
    /// Depth-optimal chains may spend more gates than the gate-optimal
    /// ones (the classic area/delay trade-off the paper's cost-model
    /// flexibility targets).
    MinDepthThenGates,
}

/// Runs STP exact synthesis under an explicit [`Objective`].
///
/// For [`Objective::MinGates`] this is [`synthesize`]. For
/// [`Objective::MinDepthThenGates`] the topology search is organized by
/// tree height: for each depth `d` (from `⌈log₂(support)⌉` up) it
/// explores the shapes of height exactly `≤ d` in increasing gate
/// count, so the first hit is depth-optimal with minimum gates among
/// depth-optimal chains; the returned solution set holds all such
/// chains.
///
/// # Errors
///
/// Same conditions as [`synthesize`].
///
/// # Examples
///
/// ```
/// use stp_synth::{synthesize_with_objective, Objective, SynthesisConfig};
/// use stp_tt::TruthTable;
///
/// // AND of four inputs: depth 2 needs the balanced tree.
/// let and4 = TruthTable::from_fn(4, |a| a.iter().all(|&b| b))?;
/// let result = synthesize_with_objective(
///     &and4,
///     Objective::MinDepthThenGates,
///     &SynthesisConfig::default(),
/// )?;
/// assert_eq!(result.chains[0].depth(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize_with_objective(
    spec: &TruthTable,
    objective: Objective,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    match objective {
        Objective::MinGates => synthesize(spec, config),
        Objective::MinDepthThenGates => synthesize_min_depth(spec, config),
    }
}

fn synthesize_min_depth(
    spec: &TruthTable,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    if let Some(chain) = trivial_chain(spec) {
        stp_telemetry::counter!("synth.trivial_hits").inc();
        return Ok(SynthesisResult {
            chains: vec![chain],
            gate_count: 0,
            shapes_explored: 0,
            fences_explored: 0,
            factor_nodes: 0,
        });
    }
    let support = spec.support();
    let min_gates = support.len().saturating_sub(1).max(1);
    // Depth lower bound: a binary tree of depth d covers ≤ 2^d leaves.
    let min_depth = support.len().next_power_of_two().trailing_zeros() as usize;
    let jobs = parallel::resolve_jobs(config.jobs);
    let cancel = Arc::new(AtomicBool::new(false));
    let mut engines = build_engines(config, jobs, &cancel);
    let mut shapes_explored = 0usize;
    let mut fences_explored = 0usize;
    let max_depth = config.max_gates.max(min_depth);
    for depth in min_depth.max(1)..=max_depth {
        // A depth-d binary tree has at most 2^d − 1 gates; larger gate
        // counts cannot appear at this depth.
        let r_cap = ((1usize << depth.min(24)) - 1).min(config.max_gates);
        for r in min_gates..=r_cap {
            let _round = stp_telemetry::span!("synth.round.r{}", r);
            stp_telemetry::counter!("synth.rounds").inc();
            let shapes: Vec<TreeShape> =
                shapes_with_gates(r).into_iter().filter(|shape| shape.height() <= depth).collect();
            fences_explored += distinct_fence_count(&shapes);
            let outcome =
                run_round(spec, &shapes, &mut engines, config.max_solutions, Some(depth), &cancel)?;
            shapes_explored += outcome.shapes_explored;
            if !outcome.solutions.is_empty() {
                return Ok(SynthesisResult {
                    chains: outcome.solutions,
                    gate_count: r,
                    shapes_explored,
                    fences_explored,
                    factor_nodes: engines.iter().map(Factorizer::nodes_explored).sum(),
                });
            }
        }
    }
    Err(SynthesisError::GateLimitExceeded { max_gates: config.max_gates })
}

/// Runs STP exact synthesis through the NPN class representative
/// (§III-A: "we use the negation-permutation-negation classification to
/// reduce the size of all valid DAG candidates").
///
/// The spec is canonicalized, the representative is synthesized, and
/// every solution chain is mapped back through the NPN transform
/// (inputs rewired and complemented inside gate LUTs, output phase
/// fixed) — so repeated members of one class share all the synthesis
/// work. Canonicalization is exhaustive (`n! · 2^{n+1}` transforms) and
/// intended for `n ≤ 5`.
///
/// # Errors
///
/// Same conditions as [`synthesize`].
pub fn synthesize_npn(
    spec: &TruthTable,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    synthesize_npn_with_store(spec, config, &Store::new())
}

/// [`synthesize_npn`] against a shared [`Store`]: the canonicalize →
/// lookup-or-synthesize → `permute_negate` map-back pipeline lives in
/// [`Store::solve_npn`]; this wrapper only adapts the engine to the
/// store's solver interface.
///
/// The store makes repeated traffic O(distinct NPN classes): the first
/// call per class runs the full engine, every later call (from any
/// thread, any entry path) answers from the stored representative
/// chains. A stored answer reports zero `shapes_explored` /
/// `fences_explored` / `factor_nodes` — no search happened.
///
/// Budget semantics: with a [`SynthesisConfig::deadline`] the remaining
/// wall-clock time is the offered budget; a timeout is recorded as
/// [`stp_store::Entry::Exhausted`] at that budget and retried only when
/// a later caller offers strictly more.
///
/// # Errors
///
/// Same conditions as [`synthesize`]; a stored exhaustion at a budget
/// at least as large as ours surfaces as [`SynthesisError::Timeout`]
/// without re-running the engine.
pub fn synthesize_npn_with_store(
    spec: &TruthTable,
    config: &SynthesisConfig,
    store: &Store,
) -> Result<SynthesisResult, SynthesisError> {
    let budget = match config.deadline {
        Some(deadline) => deadline.saturating_duration_since(Instant::now()),
        None => Duration::MAX,
    };
    // Search statistics only exist when the engine actually ran; a
    // store hit (or another thread's in-flight solve) reports zeros.
    let mut stats: Option<(usize, usize, u64)> = None;
    let outcome = store.solve_npn(spec, budget, |rep| match synthesize(rep, config) {
        Ok(result) => {
            stats = Some((result.shapes_explored, result.fences_explored, result.factor_nodes));
            Ok(RepOutcome::Solved(result.chains))
        }
        Err(SynthesisError::Timeout) => Ok(RepOutcome::Exhausted),
        Err(other) => Err(other),
    })?;
    match outcome {
        NpnOutcome::Trivial(chain) => Ok(SynthesisResult {
            chains: vec![chain],
            gate_count: 0,
            shapes_explored: 0,
            fences_explored: 0,
            factor_nodes: 0,
        }),
        NpnOutcome::Solved(chains) => {
            let gate_count = chains[0].num_gates();
            let (shapes_explored, fences_explored, factor_nodes) = stats.unwrap_or((0, 0, 0));
            Ok(SynthesisResult {
                chains,
                gate_count,
                shapes_explored,
                fences_explored,
                factor_nodes,
            })
        }
        NpnOutcome::Exhausted { .. } => Err(SynthesisError::Timeout),
        NpnOutcome::Poisoned { message } => Err(SynthesisError::JobPanicked { message }),
    }
}

/// Outcome tally of [`warm_npn4`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmReport {
    /// NPN class representatives visited (all arities 0–4).
    pub classes: usize,
    /// Classes synthesized fresh during this warm pass.
    pub solved: usize,
    /// Classes whose synthesis timed out within the per-class budget.
    pub exhausted: usize,
    /// Classes already answered by the store (or trivially, with zero
    /// gates) without running the engine.
    pub cached: usize,
}

/// Warms `store` with every NPN class representative of arity 0–4
/// (the paper's 222 four-input classes plus the smaller arities that
/// rewriting cuts produce), so subsequent NPN4-suite or rewrite runs
/// answer entirely from the store.
///
/// `per_class_timeout` bounds each class independently (overriding any
/// deadline in `config`); classes that time out are recorded as
/// exhausted — and retried on the next warm pass with a larger budget —
/// rather than aborting the warm-up.
///
/// The classes run through the instance-level pool
/// ([`crate::run_instances`]): `config.jobs` is the single global
/// budget for the whole warm, split between class-level workers and
/// each class's nested shape-level pool. Whether a class counts as
/// `solved` or `cached` is decided by a per-class
/// [`stp_telemetry::CounterScope`] observing `store.misses` — exact
/// even when classes warm concurrently (a store-level miss-count delta
/// would race).
///
/// # Errors
///
/// Propagates any non-timeout engine failure
/// (e.g. [`SynthesisError::GateLimitExceeded`]); a panicking class
/// surfaces as [`SynthesisError::JobPanicked`] after the surviving
/// classes finish warming.
pub fn warm_npn4(
    store: &Store,
    config: &SynthesisConfig,
    per_class_timeout: Option<Duration>,
) -> Result<WarmReport, SynthesisError> {
    let _span = stp_telemetry::span!("store.warm_npn4");
    /// How one class participated in the warm pass.
    enum ClassOutcome {
        Solved,
        Cached,
        Exhausted,
    }
    let reps: Vec<TruthTable> = (0..=4).flat_map(stp_tt::npn_classes).collect();
    let budget = crate::parallel::JobBudget::new(config.jobs);
    let results = crate::parallel::run_instances(&budget, reps.len(), |idx, shape_jobs| {
        let scope = stp_telemetry::CounterScope::enter();
        let mut per_class = config.clone();
        per_class.jobs = shape_jobs;
        per_class.deadline = per_class_timeout.map(|t| Instant::now() + t);
        let outcome = synthesize_npn_with_store(&reps[idx], &per_class, store);
        let counters = scope.finish();
        match outcome {
            // A fresh synthesis registers exactly one store miss on
            // this class's thread; answering from the store (or the
            // trivial fast path) registers none.
            Ok(_) if counters.get("store.misses").copied().unwrap_or(0) > 0 => {
                Ok(ClassOutcome::Solved)
            }
            Ok(_) => Ok(ClassOutcome::Cached),
            Err(SynthesisError::Timeout) => Ok(ClassOutcome::Exhausted),
            Err(other) => Err(other),
        }
    });
    let mut report = WarmReport { classes: reps.len(), ..WarmReport::default() };
    let mut first_error: Option<SynthesisError> = None;
    for result in results {
        match result {
            Ok(Ok(ClassOutcome::Solved)) => report.solved += 1,
            Ok(Ok(ClassOutcome::Cached)) => report.cached += 1,
            Ok(Ok(ClassOutcome::Exhausted)) => report.exhausted += 1,
            Ok(Err(e)) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Err(message) => {
                if first_error.is_none() {
                    first_error = Some(SynthesisError::JobPanicked { message });
                }
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_synthesizes_with_three_gates() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 3);
        for chain in &result.chains {
            assert_eq!(chain.num_gates(), 3);
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn trivial_functions_cost_zero_gates() {
        for spec in [
            TruthTable::constant(3, true).unwrap(),
            TruthTable::constant(3, false).unwrap(),
            TruthTable::variable(3, 1).unwrap(),
            !TruthTable::variable(3, 2).unwrap(),
        ] {
            let result = synthesize_default(&spec).unwrap();
            assert_eq!(result.gate_count, 0);
            assert_eq!(result.chains[0].simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn two_input_functions_cost_one_gate() {
        let spec = TruthTable::from_hex(2, "6").unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 1);
    }

    #[test]
    fn majority_costs_four_gates() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let result = synthesize_default(&maj).unwrap();
        assert_eq!(result.gate_count, 4, "MAJ3 needs 4 two-input gates");
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], maj);
        }
    }

    #[test]
    fn parity4_costs_three_gates() {
        let spec = TruthTable::from_fn(4, |a| a.iter().fold(false, |x, &b| x ^ b)).unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 3);
    }

    #[test]
    fn all_solutions_are_distinct() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = synthesize_default(&spec).unwrap();
        let mut keys: Vec<String> = result.chains.iter().map(|c| format!("{c}")).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn pruning_ablation_agrees_on_gate_count() {
        // Fence pruning must not change the optimum on DSD-style
        // functions.
        for hex in ["8ff8", "7888", "f888"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let pruned = synthesize_default(&spec).unwrap();
            let full = synthesize(
                &spec,
                &SynthesisConfig { fence_pruning: false, ..SynthesisConfig::default() },
            )
            .unwrap();
            assert_eq!(pruned.gate_count, full.gate_count, "hex {hex}");
            assert!(full.shapes_explored >= pruned.shapes_explored);
        }
    }

    #[test]
    fn gate_limit_is_reported() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let err = synthesize(&maj, &SynthesisConfig { max_gates: 3, ..SynthesisConfig::default() })
            .unwrap_err();
        assert!(matches!(err, SynthesisError::GateLimitExceeded { max_gates: 3 }));
    }

    #[test]
    fn timeout_is_reported() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let err = synthesize(
            &spec,
            &SynthesisConfig {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..SynthesisConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::Timeout));
    }

    #[test]
    fn best_by_secondary_cost() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = synthesize_default(&spec).unwrap();
        let best_depth = result.best_by(&CostModel::Depth).unwrap();
        assert_eq!(best_depth.depth(), 2);
        // Penalize XOR gates heavily: a non-XOR solution (if any) wins;
        // at minimum the call must return a chain.
        let mut weights = std::collections::HashMap::new();
        weights.insert(0x6u8, 100u64);
        weights.insert(0x9u8, 100u64);
        assert!(result.best_by(&CostModel::WeightedOps { weights, default: 1 }).is_some());
    }

    #[test]
    fn five_input_dsd_function() {
        let spec = TruthTable::from_fn(5, |a| ((a[0] & a[1]) ^ a[2]) | (a[3] & a[4])).unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 4);
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn depth_objective_finds_balanced_trees() {
        // Parity of four inputs: gate-optimal is 3 gates; the balanced
        // tree also has depth 2 — both objectives coincide here.
        let spec = TruthTable::from_fn(4, |a| a.iter().fold(false, |x, &b| x ^ b)).unwrap();
        let result = synthesize_with_objective(
            &spec,
            Objective::MinDepthThenGates,
            &SynthesisConfig::default(),
        )
        .unwrap();
        assert_eq!(result.gate_count, 3);
        assert!(result.chains.iter().all(|c| c.depth() == 2));
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn depth_objective_can_trade_gates_for_depth() {
        // MAJ3 is gate-optimal at 4 gates; check the depth objective
        // returns depth-minimal chains that still realize the spec and
        // never beat the gate optimum on depth… (it may match it).
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let by_gates = synthesize_default(&maj).unwrap();
        let by_depth = synthesize_with_objective(
            &maj,
            Objective::MinDepthThenGates,
            &SynthesisConfig::default(),
        )
        .unwrap();
        let min_depth_all: usize = by_depth.chains.iter().map(|c| c.depth()).min().unwrap();
        let min_depth_gateopt: usize = by_gates.chains.iter().map(|c| c.depth()).min().unwrap();
        assert!(min_depth_all <= min_depth_gateopt);
        for chain in &by_depth.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], maj);
        }
    }

    #[test]
    fn objective_min_gates_matches_synthesize() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let a = synthesize_default(&spec).unwrap();
        let b = synthesize_with_objective(&spec, Objective::MinGates, &SynthesisConfig::default())
            .unwrap();
        assert_eq!(a.gate_count, b.gate_count);
        assert_eq!(a.chains.len(), b.chains.len());
    }

    #[test]
    fn npn_synthesis_matches_direct_synthesis() {
        for hex in ["8ff8", "6996", "cafe", "1234", "0660"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let direct = synthesize_default(&spec).unwrap();
            let via_npn = synthesize_npn(&spec, &SynthesisConfig::default()).unwrap();
            assert_eq!(direct.gate_count, via_npn.gate_count, "hex {hex}");
            for chain in &via_npn.chains {
                assert_eq!(chain.simulate_outputs().unwrap()[0], spec, "hex {hex}");
                assert_eq!(chain.num_gates(), via_npn.gate_count);
            }
        }
    }

    #[test]
    fn npn_synthesis_shares_class_work() {
        // AND and NOR are one NPN class: both go through the same
        // representative.
        let and2 = TruthTable::from_hex(2, "8").unwrap();
        let nor2 = TruthTable::from_hex(2, "1").unwrap();
        let a = synthesize_npn(&and2, &SynthesisConfig::default()).unwrap();
        let b = synthesize_npn(&nor2, &SynthesisConfig::default()).unwrap();
        assert_eq!(a.gate_count, 1);
        assert_eq!(b.gate_count, 1);
        assert_eq!(a.chains[0].simulate_outputs().unwrap()[0], and2);
        assert_eq!(b.chains[0].simulate_outputs().unwrap()[0], nor2);
    }

    #[test]
    fn sixteen_var_spec_searches_past_first_round() {
        // Regression: an `n >= MAX_VARS` guard used to abort the
        // gate-count loop after the first round for 16-variable specs,
        // misreporting `GateLimitExceeded` for anything needing more
        // than `support − 1` gates.
        let spec =
            TruthTable::from_fn(16, |a| (a[0] & a[1]) | (a[1] & a[15]) | (a[0] & a[15])).unwrap();
        let result =
            synthesize(&spec, &SynthesisConfig { max_gates: 5, ..SynthesisConfig::default() })
                .unwrap();
        assert_eq!(result.gate_count, 4, "MAJ3 embedded in 16 vars needs 4 gates");
        for chain in &result.chains {
            assert_eq!(chain.simulate_outputs().unwrap()[0], spec);
        }
    }

    #[test]
    fn max_solutions_cap_is_exact_across_fence_groups() {
        // Regression: reaching the cap used to break only the
        // shape loop, so every later fence group pushed one verified
        // chain past the cap. Parity-4 has solutions in two fence
        // families (the balanced tree and the gate chain).
        let spec = TruthTable::from_hex(4, "6996").unwrap();
        for max_solutions in [1usize, 2, 3] {
            let result =
                synthesize(&spec, &SynthesisConfig { max_solutions, ..SynthesisConfig::default() })
                    .unwrap();
            assert_eq!(result.chains.len(), max_solutions, "cap {max_solutions} must bind exactly");
        }
    }

    #[test]
    fn max_solutions_cap_is_exact_for_depth_objective() {
        let spec = TruthTable::from_hex(4, "6996").unwrap();
        let result = synthesize_with_objective(
            &spec,
            Objective::MinDepthThenGates,
            &SynthesisConfig { max_solutions: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        assert_eq!(result.chains.len(), 1);
    }

    #[test]
    fn min_depth_reports_real_fence_count() {
        // Regression: `synthesize_min_depth` used to hard-code
        // `fences_explored: 0` even though it examines whole shape
        // families.
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let result = synthesize_with_objective(
            &spec,
            Objective::MinDepthThenGates,
            &SynthesisConfig::default(),
        )
        .unwrap();
        assert!(result.fences_explored > 0, "depth search examined shapes, hence fences");
    }

    #[test]
    fn parallel_search_matches_sequential_output() {
        for hex in ["8ff8", "6996", "cafe", "e8e8"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let seq = synthesize(&spec, &SynthesisConfig { jobs: 1, ..SynthesisConfig::default() })
                .unwrap();
            let par = synthesize(&spec, &SynthesisConfig { jobs: 4, ..SynthesisConfig::default() })
                .unwrap();
            assert_eq!(seq.gate_count, par.gate_count, "hex {hex}");
            let seq_chains: Vec<String> = seq.chains.iter().map(|c| format!("{c}")).collect();
            let par_chains: Vec<String> = par.chains.iter().map(|c| format!("{c}")).collect();
            assert_eq!(seq_chains, par_chains, "hex {hex}: chain sets and order must match");
        }
    }

    #[test]
    fn parallel_search_respects_exact_cap() {
        let spec = TruthTable::from_hex(4, "6996").unwrap();
        let seq = synthesize(
            &spec,
            &SynthesisConfig { jobs: 1, max_solutions: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        let par = synthesize(
            &spec,
            &SynthesisConfig { jobs: 4, max_solutions: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        assert_eq!(seq.chains.len(), 1);
        assert_eq!(par.chains.len(), 1);
        assert_eq!(format!("{}", seq.chains[0]), format!("{}", par.chains[0]));
    }

    #[test]
    fn parallel_timeout_is_reported() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let err = synthesize(
            &spec,
            &SynthesisConfig {
                jobs: 4,
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..SynthesisConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::Timeout));
    }

    #[test]
    fn depth_objective_parallel_matches_sequential() {
        let spec = TruthTable::from_fn(4, |a| a.iter().fold(false, |x, &b| x ^ b)).unwrap();
        let seq = synthesize_with_objective(
            &spec,
            Objective::MinDepthThenGates,
            &SynthesisConfig { jobs: 1, ..SynthesisConfig::default() },
        )
        .unwrap();
        let par = synthesize_with_objective(
            &spec,
            Objective::MinDepthThenGates,
            &SynthesisConfig { jobs: 3, ..SynthesisConfig::default() },
        )
        .unwrap();
        assert_eq!(seq.gate_count, par.gate_count);
        let seq_chains: Vec<String> = seq.chains.iter().map(|c| format!("{c}")).collect();
        let par_chains: Vec<String> = par.chains.iter().map(|c| format!("{c}")).collect();
        assert_eq!(seq_chains, par_chains);
    }

    #[test]
    fn function_with_partial_support() {
        // Depends only on x1 and x3 of four inputs.
        let spec = TruthTable::from_fn(4, |a| a[1] ^ a[3]).unwrap();
        let result = synthesize_default(&spec).unwrap();
        assert_eq!(result.gate_count, 1);
        assert_eq!(result.chains[0].simulate_outputs().unwrap()[0], spec);
    }
}
