//! Error types for the synthesis engine.

use std::error::Error;
use std::fmt;

use stp_chain::ChainError;
use stp_matrix::MatrixError;
use stp_tt::TruthTableError;

/// Errors raised by the STP synthesis engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The per-instance deadline expired before synthesis finished.
    Timeout,
    /// No realization exists within the configured gate limit.
    GateLimitExceeded {
        /// The configured maximum number of gates.
        max_gates: usize,
    },
    /// No realization exists within the explicit depth limit. Raised
    /// only when [`crate::SynthesisConfig::max_depth`] is set — the
    /// derived default depth bound surfaces as
    /// [`SynthesisError::GateLimitExceeded`] instead, because a chain's
    /// depth never exceeds its gate count.
    DepthLimitExceeded {
        /// The configured maximum depth.
        max_depth: usize,
    },
    /// A multi-output specification is malformed (empty, or the outputs
    /// disagree on arity).
    InvalidMultiSpec {
        /// What is wrong with the spec vector.
        message: String,
    },
    /// A truth-table operation failed.
    TruthTable(TruthTableError),
    /// A chain operation failed.
    Chain(ChainError),
    /// A logic-matrix operation failed.
    Matrix(MatrixError),
    /// A worker job panicked. The panic was caught at the job boundary
    /// (one tree shape, or one in-flight store solve), so sibling jobs
    /// and their solutions survive; this error surfaces only when the
    /// panicking job's result was load-bearing.
    JobPanicked {
        /// The panic payload plus job context (e.g. the shape index).
        message: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Timeout => write!(f, "synthesis deadline expired"),
            SynthesisError::GateLimitExceeded { max_gates } => {
                write!(f, "no realization with at most {max_gates} gates")
            }
            SynthesisError::DepthLimitExceeded { max_depth } => {
                write!(f, "no realization with depth at most {max_depth}")
            }
            SynthesisError::InvalidMultiSpec { message } => {
                write!(f, "invalid multi-output spec: {message}")
            }
            SynthesisError::TruthTable(e) => write!(f, "truth table error: {e}"),
            SynthesisError::Chain(e) => write!(f, "chain error: {e}"),
            SynthesisError::Matrix(e) => write!(f, "matrix error: {e}"),
            SynthesisError::JobPanicked { message } => {
                write!(f, "synthesis job panicked: {message}")
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::TruthTable(e) => Some(e),
            SynthesisError::Chain(e) => Some(e),
            SynthesisError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TruthTableError> for SynthesisError {
    fn from(e: TruthTableError) -> Self {
        SynthesisError::TruthTable(e)
    }
}

impl From<ChainError> for SynthesisError {
    fn from(e: ChainError) -> Self {
        SynthesisError::Chain(e)
    }
}

impl From<MatrixError> for SynthesisError {
    fn from(e: MatrixError) -> Self {
        SynthesisError::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SynthesisError::Timeout.to_string(), "synthesis deadline expired");
        assert!(SynthesisError::GateLimitExceeded { max_gates: 7 }.to_string().contains('7'));
        let panicked = SynthesisError::JobPanicked { message: "shape task 3: boom".to_string() };
        assert!(panicked.to_string().contains("shape task 3: boom"));
    }
}
