//! The STP-based circuit AllSAT solver (Algorithms 1–2 of the paper).
//!
//! The solver takes a 2-LUT network (a [`Chain`]) and a target value for
//! each primary output, and enumerates every primary-input assignment
//! that produces those targets — *without* any CNF translation. Each
//! gate's 4-bit truth table is read as its structural matrix: given a
//! target `T` for the gate, the matrix columns equal to `T` name the
//! fanin value pairs to propagate (Algorithm 2's `STP_calculation`), and
//! the recursion merges the per-output partial solutions (Algorithm 1's
//! `MERGE`).
//!
//! Exact synthesis uses this as its verification engine (step iv of
//! §III): a candidate chain is accepted when the assignments that set
//! its output true are exactly the ON-set of the specification.

use std::collections::BTreeSet;

use stp_chain::{Chain, OutputRef};
use stp_tt::TruthTable;

use crate::error::SynthesisError;

/// A partial primary-input assignment: `None` is the paper's `'-'`
/// (unassigned).
pub type PartialAssignment = Vec<Option<bool>>;

/// Result of a circuit AllSAT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSolutions {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// All maximal partial assignments satisfying the targets; distinct
    /// entries may overlap on their completions.
    pub partial_solutions: Vec<PartialAssignment>,
}

impl CircuitSolutions {
    /// `true` when at least one satisfying assignment exists (SAT in
    /// Algorithm 1's terms).
    pub fn is_sat(&self) -> bool {
        !self.partial_solutions.is_empty()
    }

    /// Expands the partial solutions into the set of full assignments,
    /// each encoded as a minterm index (variable `i` = bit `i`).
    pub fn full_assignments(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for partial in &self.partial_solutions {
            let free: Vec<usize> =
                partial.iter().enumerate().filter_map(|(i, v)| v.is_none().then_some(i)).collect();
            let base: usize = partial
                .iter()
                .enumerate()
                .filter_map(|(i, v)| matches!(v, Some(true)).then_some(1usize << i))
                .sum();
            for mask in 0..(1usize << free.len()) {
                let mut m = base;
                for (k, &bit) in free.iter().enumerate() {
                    if (mask >> k) & 1 == 1 {
                        m |= 1 << bit;
                    }
                }
                out.insert(m);
            }
        }
        out
    }

    /// Simulates the solution set into a truth table `f_s`: minterm `m`
    /// is true iff some solution covers it (the paper's final simulation
    /// step in Example 8).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::TruthTable`] if the input count exceeds
    /// the substrate's limit.
    pub fn to_truth_table(&self) -> Result<TruthTable, SynthesisError> {
        let assignments = self.full_assignments();
        Ok(TruthTable::from_fn(self.num_inputs, |assign| {
            let mut m = 0usize;
            for (i, &v) in assign.iter().enumerate() {
                if v {
                    m |= 1 << i;
                }
            }
            assignments.contains(&m)
        })?)
    }
}

/// Local tallies for one [`solve_circuit`] query, flushed to the global
/// metrics in a single batch (the recursion is far too hot for per-node
/// atomic updates).
#[derive(Default)]
struct SolveStats {
    /// Signals visited by [`traverse`] (Algorithm 2 invocations).
    propagation_steps: u64,
    /// [`merge`] attempts, including conflicting ones.
    merges: u64,
}

/// Merges two partial assignments; `None` when they conflict.
fn merge(a: &PartialAssignment, b: &PartialAssignment) -> Option<PartialAssignment> {
    let mut out = a.clone();
    for (slot, bv) in out.iter_mut().zip(b) {
        match (*slot, bv) {
            (Some(x), Some(y)) if x != *y => return None,
            (None, v) => *slot = *v,
            _ => {}
        }
    }
    Some(out)
}

/// Enumerates the assignments under which `signal` takes `target`.
fn traverse(
    chain: &Chain,
    signal: usize,
    target: bool,
    stats: &mut SolveStats,
) -> Vec<PartialAssignment> {
    stats.propagation_steps += 1;
    let n = chain.num_inputs();
    if signal < n {
        // Algorithm 2, lines 2–4: a PI consumes the target directly.
        let mut p = vec![None; n];
        p[signal] = Some(target);
        return vec![p];
    }
    let gate = chain.gates()[signal - n];
    let mut out = Vec::new();
    // Algorithm 2, lines 5–9: the gate's structural matrix names the
    // fanin pairs mapping to the target; recurse on each.
    for a in [false, true] {
        for b in [false, true] {
            if gate.apply(a, b) != target {
                continue;
            }
            let left = traverse(chain, gate.fanin[0], a, stats);
            if left.is_empty() {
                continue;
            }
            let right = traverse(chain, gate.fanin[1], b, stats);
            stats.merges += (left.len() * right.len()) as u64;
            for l in &left {
                for r in &right {
                    if let Some(m) = merge(l, r) {
                        out.push(m);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Runs the STP circuit AllSAT solver (Algorithm 1): finds every primary
/// input assignment under which **each** output takes its target value.
///
/// `targets` must have one entry per chain output.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the chain's output count.
///
/// # Examples
///
/// Reproduce the paper's Example 8: the Boolean chain for `0x8ff8` has
/// ten satisfying assignments.
///
/// ```
/// use stp_chain::{Chain, OutputRef};
/// use stp_synth::solve_circuit;
///
/// let mut chain = Chain::new(4);
/// let x5 = chain.add_gate(2, 3, 0x6)?;
/// let x6 = chain.add_gate(0, 1, 0x8)?;
/// let x7 = chain.add_gate(x5, x6, 0xe)?;
/// chain.add_output(OutputRef::signal(x7));
/// let solutions = solve_circuit(&chain, &[true]);
/// assert_eq!(solutions.full_assignments().len(), 10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_circuit(chain: &Chain, targets: &[bool]) -> CircuitSolutions {
    assert_eq!(targets.len(), chain.outputs().len(), "one target per primary output");
    let n = chain.num_inputs();
    let mut stats = SolveStats::default();
    // Algorithm 1: S starts as the single all-unassigned solution and is
    // merged with each output's solution set in turn.
    let mut solutions: Vec<PartialAssignment> = vec![vec![None; n]];
    for (out, &target) in chain.outputs().iter().zip(targets) {
        let s_i = match out {
            OutputRef::Signal { index, negated } => {
                traverse(chain, *index, target ^ *negated, &mut stats)
            }
            OutputRef::Constant(v) => {
                if *v == target {
                    vec![vec![None; n]]
                } else {
                    Vec::new()
                }
            }
        };
        let mut merged = Vec::new();
        stats.merges += (solutions.len() * s_i.len()) as u64;
        for s in &solutions {
            for t in &s_i {
                if let Some(m) = merge(s, t) {
                    merged.push(m);
                }
            }
        }
        merged.sort();
        merged.dedup();
        solutions = merged;
        if solutions.is_empty() {
            break;
        }
    }
    stp_telemetry::counter!("solver.queries").inc();
    stp_telemetry::counter!("solver.propagation_steps").add(stats.propagation_steps);
    stp_telemetry::counter!("solver.merges").add(stats.merges);
    CircuitSolutions { num_inputs: n, partial_solutions: solutions }
}

/// Verifies a candidate chain against a specification (step iv of
/// §III): solves the circuit for output `true`, simulates the solution
/// set to `f_s`, and accepts iff `f_s == f`.
///
/// # Errors
///
/// Returns [`SynthesisError::TruthTable`] if simulation fails (input
/// count out of range).
pub fn verify_chain(chain: &Chain, spec: &TruthTable) -> Result<bool, SynthesisError> {
    if chain.num_inputs() != spec.num_vars() {
        stp_telemetry::counter!("solver.candidates_rejected").inc();
        return Ok(false);
    }
    let solutions = solve_circuit(chain, &[true]);
    let f_s = solutions.to_truth_table()?;
    let accepted = f_s == *spec;
    if accepted {
        stp_telemetry::counter!("solver.candidates_verified").inc();
    } else {
        stp_telemetry::counter!("solver.candidates_rejected").inc();
    }
    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example7_chain() -> Chain {
        let mut chain = Chain::new(4);
        let x5 = chain.add_gate(2, 3, 0x6).unwrap();
        let x6 = chain.add_gate(0, 1, 0x8).unwrap();
        let x7 = chain.add_gate(x5, x6, 0xe).unwrap();
        chain.add_output(OutputRef::signal(x7));
        chain
    }

    #[test]
    fn example8_ten_assignments() {
        let solutions = solve_circuit(&example7_chain(), &[true]);
        assert!(solutions.is_sat());
        assert_eq!(solutions.full_assignments().len(), 10);
    }

    #[test]
    fn example8_simulation_matches_spec() {
        let solutions = solve_circuit(&example7_chain(), &[true]);
        let f_s = solutions.to_truth_table().unwrap();
        assert_eq!(f_s, TruthTable::from_hex(4, "8ff8").unwrap());
    }

    #[test]
    fn verify_accepts_correct_chain() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        assert!(verify_chain(&example7_chain(), &spec).unwrap());
    }

    #[test]
    fn verify_rejects_wrong_chain() {
        let spec = TruthTable::from_hex(4, "8ff9").unwrap();
        assert!(!verify_chain(&example7_chain(), &spec).unwrap());
        let other_arity = TruthTable::from_hex(3, "e8").unwrap();
        assert!(!verify_chain(&example7_chain(), &other_arity).unwrap());
    }

    #[test]
    fn false_target_gives_offset() {
        let solutions = solve_circuit(&example7_chain(), &[false]);
        assert_eq!(solutions.full_assignments().len(), 6); // 16 − 10
    }

    #[test]
    fn unsat_on_impossible_target() {
        // Constant-true gate structure: AND of (a OR !a)-style is not
        // expressible directly, so use a chain computing a tautology via
        // outputs: target false on a constant-true output.
        let mut chain = Chain::new(1);
        chain.add_output(OutputRef::Constant(true));
        let solutions = solve_circuit(&chain, &[false]);
        assert!(!solutions.is_sat());
    }

    #[test]
    fn shared_inputs_are_merged_consistently() {
        // f = AND(a, XOR(a, b)): a appears under both fanin branches.
        let mut chain = Chain::new(2);
        let x = chain.add_gate(0, 1, 0x6).unwrap();
        let top = chain.add_gate(0, x, 0x8).unwrap();
        chain.add_output(OutputRef::signal(top));
        let solutions = solve_circuit(&chain, &[true]);
        // a & (a ^ b): true only at a=1, b=0.
        assert_eq!(solutions.full_assignments(), BTreeSet::from([0b01]));
    }

    #[test]
    fn multi_output_targets() {
        let mut chain = Chain::new(2);
        let g_and = chain.add_gate(0, 1, 0x8).unwrap();
        let g_xor = chain.add_gate(0, 1, 0x6).unwrap();
        chain.add_output(OutputRef::signal(g_and));
        chain.add_output(OutputRef::signal(g_xor));
        // AND true and XOR true simultaneously: impossible.
        assert!(!solve_circuit(&chain, &[true, true]).is_sat());
        // AND true, XOR false: both inputs true.
        let s = solve_circuit(&chain, &[true, false]);
        assert_eq!(s.full_assignments(), BTreeSet::from([0b11]));
    }

    #[test]
    fn negated_output_target() {
        let mut chain = Chain::new(2);
        let g = chain.add_gate(0, 1, 0x8).unwrap();
        chain.add_output(OutputRef::negated_signal(g));
        // !(a & b) == true fails only at a=b=1.
        let s = solve_circuit(&chain, &[true]);
        assert_eq!(s.full_assignments().len(), 3);
    }

    #[test]
    fn verify_agrees_with_simulation_on_random_chains() {
        // Cross-check the circuit solver against bit-parallel simulation.
        let mut seed = 0xdeadbeefu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..40 {
            let n = 3 + (next() as usize) % 2;
            let mut chain = Chain::new(n);
            let gates = 2 + (next() as usize) % 4;
            for _ in 0..gates {
                let avail = chain.num_signals();
                let a = (next() as usize) % avail;
                let mut b = (next() as usize) % avail;
                if b == a {
                    b = (b + 1) % avail;
                }
                let op = stp_tt::NONTRIVIAL_OPS[(next() as usize) % 10];
                chain.add_gate(a.min(b), a.max(b), op).unwrap();
            }
            chain.add_output(OutputRef::signal(chain.num_signals() - 1));
            let spec = chain.simulate_outputs().unwrap()[0].clone();
            assert!(
                verify_chain(&chain, &spec).unwrap(),
                "circuit solver must agree with simulation"
            );
        }
    }

    #[test]
    fn partial_solutions_leave_dont_cares_unassigned() {
        // f = a (projection): b stays '-'.
        let mut chain = Chain::new(2);
        chain.add_output(OutputRef::signal(0));
        let s = solve_circuit(&chain, &[true]);
        assert_eq!(s.partial_solutions, vec![vec![Some(true), None]]);
        assert_eq!(s.full_assignments().len(), 2);
    }
}
