//! Deterministic work-stealing execution of one synthesis round.
//!
//! The paper's one-pass search (§III steps ii–iv) is embarrassingly
//! parallel across tree shapes: each `(shape → factorize → verify)`
//! unit touches only the specification, one topology, and a
//! per-worker [`Factorizer`]. This module distributes those units over
//! a `std::thread::scope` worker pool with work stealing, while keeping
//! the output **byte-identical** to the sequential search:
//!
//! * every shape is an indexed task; workers deal themselves the tasks
//!   round-robin and steal from the back of a victim's deque when their
//!   own runs dry;
//! * each worker owns its own `Factorizer` (worker-local memo table —
//!   see `DESIGN.md` for the trade-off against a shared memo), so the
//!   factorization enumeration per shape is exactly the sequential one;
//! * per-shape solution vectors land in index-addressed slots and are
//!   merged **in shape order**, then truncated to `max_solutions` — the
//!   same prefix the sequential loop materializes;
//! * a shared *completed-prefix* tracker notices as soon as the tasks
//!   `0..k` (all finished) already hold `max_solutions` verified chains
//!   and trips the cooperative cancellation flag: later tasks would be
//!   truncated away anyway, so aborting them cannot change the result.
//!
//! The same flag implements deadline propagation: a worker whose engine
//! reports [`SynthesisError::Timeout`] (and no satisfied prefix exists)
//! records the error and cancels every other worker.
//!
//! # Two scheduler levels, one budget
//!
//! Shape-level parallelism only helps inside one instance. Suite
//! workloads (Table I, `--warm-npn4`, batch rewriting) run many
//! instances, so this module also provides the **instance level**:
//! [`run_instances`] feeds whole work items to a pool of instance
//! workers, with the shape-level pool nested inside each item. Both
//! levels draw threads from a single [`JobBudget`] — `--jobs N` means
//! *N running worker threads in total, never N×N*: each instance
//! worker borrows its shape-slot allotment from the same budget it was
//! spawned from.
//!
//! The split between the levels is **static and deterministic**, not
//! demand-driven: `instance_workers = min(N, items)` and every
//! instance runs with `shape_jobs = N / instance_workers`. A dynamic
//! scheme (idle instance workers donating slots to running instances)
//! would be faster in the tail of a suite, but the per-worker memo
//! tables make counters like `factor.memo_hits` depend on the shape
//! worker count — timing-dependent borrowing would make suite counter
//! totals nondeterministic. With the static split, any suite at least
//! as wide as the budget runs every instance shape-sequentially
//! (`shape_jobs = 1`), so the suite transcript **and** its counter
//! totals are byte-identical to the plain sequential loop at any
//! `--jobs`; a single instance (`items = 1`) still gets the whole
//! budget as shape workers, preserving the PR 3 behavior.
//!
//! Instance results land in index-addressed slots and are returned in
//! instance-index order; a panicking instance is isolated into its
//! slot as an error (`par.instances_panicked`), leaving the survivors
//! untouched. Workers inherit the spawner's profile path and counter
//! scopes, so `jobs=1` and `jobs=N` runs produce structurally
//! identical span trees and identically attributed per-instance
//! counters.
//!
//! # Panic isolation
//!
//! Every shape task — sequential or parallel — runs inside
//! `catch_unwind`. A panicking task is converted into a per-shape
//! [`SynthesisError::JobPanicked`] (counted as `parallel.jobs_panicked`)
//! and **does not** cancel the round: the remaining workers keep
//! draining tasks, and the merge skips the failed slot, so the
//! surviving solution sequence is exactly the no-fault sequence minus
//! the panicked shape's contribution (in particular, the prefix before
//! the failed shape is byte-identical). Only a round whose surviving
//! shapes produced *no* solutions propagates the panic as an error —
//! a silently skipped shape could otherwise mask a wrong optimum.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use stp_chain::Chain;
use stp_fence::TreeShape;
use stp_tt::TruthTable;

use crate::error::SynthesisError;
use crate::factor::Factorizer;

/// Result of one shape task: the verified chains of that shape, in
/// candidate order, capped at `max_solutions`.
type TaskResult = Result<Vec<Chain>, SynthesisError>;

/// Outcome of one gate-count round (sequential or parallel).
#[derive(Debug)]
pub(crate) struct RoundOutcome {
    /// Verified chains in shape-index order, at most `max_solutions`.
    pub solutions: Vec<Chain>,
    /// Shapes whose factorization ran to completion. Under the solution
    /// cap or a deadline this is a lower bound on the sequential count
    /// (cancelled workers stop counting), so it is a statistic, not part
    /// of the determinism guarantee.
    pub shapes_explored: usize,
}

/// Parses the `STP_JOBS` environment variable strictly: `Ok(1)` when
/// unset (or set to the empty string, which conventionally means
/// unset), `Ok(n)` for a well-formed thread count (`0` = one per CPU),
/// and `Err` with a message naming the variable for anything else.
///
/// Binaries call this at startup and turn the error into an exit-2
/// usage failure, matching the strict `--jobs` flag contract — a typo
/// in `STP_JOBS` must never silently degrade a run to one thread.
pub fn jobs_from_env_checked() -> Result<usize, String> {
    match std::env::var("STP_JOBS") {
        Err(std::env::VarError::NotPresent) => Ok(1),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("STP_JOBS expects a thread count (0 = one per CPU), got non-UTF-8 bytes".into())
        }
        Ok(raw) => parse_jobs_value(&raw),
    }
}

/// The value-level half of [`jobs_from_env_checked`]: empty means
/// unset (`Ok(1)`), anything else must be a `usize`.
fn parse_jobs_value(raw: &str) -> Result<usize, String> {
    if raw.is_empty() {
        return Ok(1);
    }
    raw.parse::<usize>()
        .map_err(|_| format!("STP_JOBS expects a thread count (0 = one per CPU), got `{raw}`"))
}

/// Parses the `STP_JOBS` environment variable: the default worker count
/// for [`crate::SynthesisConfig`]. The **library** default stays
/// well-defined — `1` when unset *or* malformed — so embedding code
/// never aborts on a bad environment; binaries use
/// [`jobs_from_env_checked`] to reject malformed values loudly instead.
pub fn jobs_from_env() -> usize {
    jobs_from_env_checked().unwrap_or(1)
}

/// Resolves a `jobs` knob: `0` means one worker per available CPU.
pub fn resolve_jobs(jobs: usize) -> usize {
    match jobs {
        0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        j => j,
    }
}

/// The global worker-thread budget shared by the two scheduler levels.
///
/// One budget is created per batch run from the `--jobs` knob; the
/// instance pool ([`run_instances`]) acquires one slot per instance
/// worker plus that worker's shape-slot allotment from the *same*
/// account, so the number of running worker threads never exceeds
/// [`JobBudget::total`]. The accounting is an enforced invariant of
/// the static level split — see the module docs for why the split is
/// not demand-driven.
#[derive(Debug)]
pub struct JobBudget {
    total: usize,
    available: AtomicUsize,
}

impl JobBudget {
    /// A budget of `resolve_jobs(jobs)` worker threads.
    pub fn new(jobs: usize) -> JobBudget {
        let total = resolve_jobs(jobs).max(1);
        JobBudget { total, available: AtomicUsize::new(total) }
    }

    /// The total thread budget (`--jobs` after resolving `0`).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Threads currently unclaimed.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::SeqCst)
    }

    /// Claims `n` slots, failing (without partial effect) when fewer
    /// are free.
    fn acquire(&self, n: usize) -> bool {
        self.available
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |free| free.checked_sub(n))
            .is_ok()
    }

    /// Returns `n` previously acquired slots.
    fn release(&self, n: usize) {
        let prev = self.available.fetch_add(n, Ordering::SeqCst);
        debug_assert!(prev + n <= self.total, "released more job slots than acquired");
    }
}

/// Renders an instance-level panic payload as the error message parked
/// in the instance's result slot.
fn instance_panic(idx: usize, payload: Box<dyn std::any::Any + Send>) -> String {
    stp_telemetry::counter!("par.instances_panicked").inc();
    let message = format!("instance task {idx}: {}", panic_message(payload));
    stp_telemetry::error!("isolated a panicking instance job ({message})");
    message
}

/// One instance behind the panic boundary: `run` receives the instance
/// index and the shape-level `jobs` allotment its nested scheduler may
/// use. `AssertUnwindSafe` is sound for the same reason as at the
/// shape level: callers only observe an instance's state through its
/// returned value, and a panicked instance's slot holds an error, not
/// partial output.
fn run_instance_task<T, F: Fn(usize, usize) -> T>(
    run: &F,
    idx: usize,
    shape_jobs: usize,
) -> Result<T, String> {
    stp_telemetry::counter!("par.instances_run").inc();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(idx, shape_jobs)))
        .map_err(|payload| instance_panic(idx, payload))
}

/// Runs `count` work items over the instance-level pool, returning the
/// results in **instance-index order** — `Err` carries the panic
/// message of an isolated panicking item.
///
/// `run(idx, shape_jobs)` executes item `idx` and must confine any
/// nested parallelism to `shape_jobs` workers; both levels then stay
/// inside `budget` (`--jobs N` = N running threads in total). The
/// budget split is static (see the module docs): with
/// `count >= budget.total()` every item gets `shape_jobs = 1`, making
/// the pooled run — outputs *and* counter totals — byte-identical to
/// the sequential loop at any budget; a single item gets the entire
/// budget as its shape-level allotment.
///
/// With an effective width of one worker the items run inline on the
/// calling thread — no pool, no inheritance glue, byte-identical to a
/// plain `for` loop by construction.
pub fn run_instances<T: Send, F: Fn(usize, usize) -> T + Sync>(
    budget: &JobBudget,
    count: usize,
    run: F,
) -> Vec<Result<T, String>> {
    let total = budget.total();
    let workers = total.min(count).max(1);
    // Uniform shape allotment: every instance must see the same nested
    // `jobs` no matter which worker picks it up (a per-worker remainder
    // would make per-instance counters depend on the timing of the
    // claim order).
    let shape_jobs = (total / workers).max(1);
    if workers <= 1 {
        // The sequential loop: the single "instance worker" is the
        // calling thread, and its nested scheduler may use the whole
        // budget.
        return (0..count).map(|idx| run_instance_task(&run, idx, total)).collect();
    }
    // `Mutex<Option<_>>` rather than `OnceLock`: a slot is written once
    // by exactly one worker (the claim counter hands out each index
    // once), and `Mutex` only needs `T: Send` to cross the scope.
    let results: Vec<Mutex<Option<Result<T, String>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Workers inherit the spawner's open-span path and counter scopes,
    // so profiling and per-instance counter attribution are identical
    // to the inline loop.
    let base_path = stp_telemetry::profile::current_path();
    let scopes = stp_telemetry::scope::current();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let results = &results;
            let next = &next;
            let run = &run;
            let base_path = base_path.clone();
            let scopes = scopes.clone();
            scope.spawn(move || {
                // Each instance worker borrows its shape-slot allotment
                // from the shared budget: itself plus the extra threads
                // its nested shape pool may spawn. The static split
                // guarantees the claim fits; the acquire enforces it.
                let claimed = budget.acquire(shape_jobs);
                debug_assert!(claimed, "static split exceeded the job budget");
                let _inherit_path = stp_telemetry::profile::inherit_path(&base_path);
                let _inherit_scopes = stp_telemetry::scope::inherit(&scopes);
                loop {
                    let idx = next.fetch_add(1, Ordering::SeqCst);
                    if idx >= count {
                        break;
                    }
                    let outcome = run_instance_task(run, idx, shape_jobs);
                    let prev = results[idx].lock().expect("slot lock").replace(outcome);
                    debug_assert!(prev.is_none(), "instance slot {idx} claimed twice");
                }
                if claimed {
                    budget.release(shape_jobs);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every instance slot is filled before join")
        })
        .collect()
}

/// The sequential round: shapes in order, verified chains accumulated
/// until the cap binds. The parallel path reproduces this output
/// exactly; both run each shape through [`run_shape_task`] so the
/// cap/deadline/panic semantics stay in one place.
pub(crate) fn run_round_sequential(
    spec: &TruthTable,
    shapes: &[TreeShape],
    engine: &mut Factorizer,
    max_solutions: usize,
    max_depth: Option<usize>,
    cancel: &AtomicBool,
) -> Result<RoundOutcome, SynthesisError> {
    let mut solutions: Vec<Chain> = Vec::new();
    let mut shapes_explored = 0usize;
    let mut panicked = 0usize;
    let mut first_panic: Option<SynthesisError> = None;
    for (idx, shape) in shapes.iter().enumerate() {
        if solutions.len() >= max_solutions {
            break;
        }
        // Capping the task at the *remaining* room reproduces the old
        // accumulate-until-cap loop candidate for candidate.
        let remaining = max_solutions - solutions.len();
        match run_shape_task(spec, shape, idx, engine, remaining, max_depth, cancel) {
            Ok(sols) => {
                shapes_explored += 1;
                solutions.extend(sols);
            }
            Err(e @ SynthesisError::JobPanicked { .. }) => {
                panicked += 1;
                if first_panic.is_none() {
                    first_panic = Some(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    finish_round(solutions, shapes_explored, panicked, first_panic)
}

/// Shared round epilogue: panics surface as an error only when the
/// surviving shapes produced nothing (otherwise the merged solutions
/// stand, minus the failed shape's contribution).
fn finish_round(
    solutions: Vec<Chain>,
    shapes_explored: usize,
    panicked: usize,
    first_panic: Option<SynthesisError>,
) -> Result<RoundOutcome, SynthesisError> {
    if let Some(e) = first_panic {
        if solutions.is_empty() {
            return Err(e);
        }
        stp_telemetry::warn!(
            "round kept {} solution(s) despite {panicked} panicked shape job(s)",
            solutions.len()
        );
    }
    Ok(RoundOutcome { solutions, shapes_explored })
}

/// Renders a `catch_unwind` payload as text (panics carry either a
/// `&str` or a formatted `String`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One shape task behind the panic boundary: a panic anywhere in the
/// factorize/verify pipeline is caught here and converted into
/// [`SynthesisError::JobPanicked`], so sibling shapes survive.
///
/// `AssertUnwindSafe` is sound for the engine reference: the factorizer
/// only publishes memo entries for *completed* subproblems, so an
/// unwind cannot leave a half-written entry that later queries would
/// trust.
fn run_shape_task(
    spec: &TruthTable,
    shape: &TreeShape,
    idx: usize,
    engine: &mut Factorizer,
    max_solutions: usize,
    max_depth: Option<usize>,
    cancel: &AtomicBool,
) -> TaskResult {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Deterministic crash injection: the hit index is the 1-based
        // shape index within the round, identical at any worker count.
        stp_faultsim::fail_point!("parallel.shape", hit = idx as u64 + 1);
        process_task(spec, shape, engine, max_solutions, max_depth, cancel)
    }));
    caught.unwrap_or_else(|payload| {
        stp_telemetry::counter!("parallel.jobs_panicked").inc();
        let message = format!("shape task {idx}: {}", panic_message(payload));
        stp_telemetry::error!("isolated a panicking synthesis job ({message})");
        Err(SynthesisError::JobPanicked { message })
    })
}

/// One shape task: factorize, then verify candidates in order. The
/// worker checks the cancellation flag between candidates so a deadline
/// or a satisfied solution cap interrupts long verify streaks too.
/// Static per-height shape labels, so the per-shape profile span never
/// formats (and never allocates) in the round's inner loop. Heights
/// beyond the table share one overflow label; fence heights are bounded
/// by the gate count, which the roadmap caps far below 16.
const SHAPE_LABELS: [&str; 16] = [
    "shape.h0",
    "shape.h1",
    "shape.h2",
    "shape.h3",
    "shape.h4",
    "shape.h5",
    "shape.h6",
    "shape.h7",
    "shape.h8",
    "shape.h9",
    "shape.h10",
    "shape.h11",
    "shape.h12",
    "shape.h13",
    "shape.h14",
    "shape.h15",
];

fn shape_label(shape: &TreeShape) -> &'static str {
    SHAPE_LABELS.get(shape.height()).copied().unwrap_or("shape.h16plus")
}

fn process_task(
    spec: &TruthTable,
    shape: &TreeShape,
    engine: &mut Factorizer,
    max_solutions: usize,
    max_depth: Option<usize>,
    cancel: &AtomicBool,
) -> TaskResult {
    let _shape = stp_telemetry::Span::enter(shape_label(shape));
    let candidates = {
        let _factor = stp_telemetry::span!("phase.factorize");
        engine.chains_on_shape(spec, shape)?
    };
    stp_telemetry::counter!("synth.candidates").add(candidates.len() as u64);
    let _verify = stp_telemetry::span!("phase.verify");
    let mut solutions = Vec::new();
    for chain in candidates {
        // Acquire pairs with the SeqCst cancellation store: seeing the
        // flag also publishes its cause (`cap_reached`). The checkpoint
        // runs between every candidate, so it must not be a fence.
        if cancel.load(Ordering::Acquire) {
            return Err(SynthesisError::Timeout);
        }
        if solutions.len() >= max_solutions {
            break;
        }
        if max_depth.is_some_and(|d| chain.depth() > d) {
            continue;
        }
        if crate::circuit_solver::verify_chain(&chain, spec)? {
            solutions.push(chain);
        }
    }
    Ok(solutions)
}

/// The contiguous prefix of completed tasks and its solution tally.
struct Prefix {
    next: usize,
    cum: usize,
}

/// Advances the completed prefix past `results` slots that are filled
/// with `Ok`; once the prefix holds `max_solutions` chains, cancels the
/// round (ordering matters: `cap_reached` is published before `cancel`
/// so a worker that observes the cancellation also observes its cause).
fn advance_prefix(
    prefix: &Mutex<Prefix>,
    results: &[OnceLock<TaskResult>],
    max_solutions: usize,
    cap_reached: &AtomicBool,
    cancel: &AtomicBool,
) {
    let mut p = prefix.lock().expect("prefix lock poisoned");
    while p.next < results.len() {
        match results[p.next].get() {
            Some(Ok(sols)) => {
                p.cum += sols.len();
                p.next += 1;
                if p.cum >= max_solutions {
                    cap_reached.store(true, Ordering::SeqCst);
                    cancel.store(true, Ordering::SeqCst);
                    stp_telemetry::counter!("par.cap_cutoffs").inc();
                    return;
                }
            }
            _ => return,
        }
    }
}

/// Pops the next task: own deque from the front (lowest indices first,
/// which feeds the completed-prefix tracker), then victims from the
/// back.
fn next_task(w: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(idx) = queues[w].lock().expect("queue lock poisoned").pop_front() {
        return Some(idx);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        let stolen = queues[victim].lock().expect("queue lock poisoned").pop_back();
        if let Some(idx) = stolen {
            stp_telemetry::counter!("par.tasks_stolen").inc();
            return Some(idx);
        }
    }
    None
}

/// Shared state of one parallel round (everything the workers touch).
struct RoundState<'a> {
    spec: &'a TruthTable,
    shapes: &'a [TreeShape],
    queues: Vec<Mutex<VecDeque<usize>>>,
    results: Vec<OnceLock<TaskResult>>,
    prefix: Mutex<Prefix>,
    cancel: &'a AtomicBool,
    cap_reached: AtomicBool,
    first_error: Mutex<Option<(usize, SynthesisError)>>,
    shapes_done: AtomicUsize,
    max_solutions: usize,
    max_depth: Option<usize>,
}

fn worker_loop(w: usize, engine: &mut Factorizer, state: &RoundState<'_>) {
    loop {
        if state.cancel.load(Ordering::Acquire) {
            return;
        }
        let Some(idx) = next_task(w, &state.queues) else {
            return;
        };
        stp_telemetry::counter!("par.tasks_run").inc();
        let outcome = {
            // Untracked: this span only exists at jobs > 1, so keeping
            // it out of the profile tree is what makes jobs=1 and
            // jobs=N trees structurally identical.
            let _busy = stp_telemetry::Span::enter_untracked("par.worker_busy");
            run_shape_task(
                state.spec,
                &state.shapes[idx],
                idx,
                engine,
                state.max_solutions,
                state.max_depth,
                state.cancel,
            )
        };
        match outcome {
            Ok(solutions) => {
                state.shapes_done.fetch_add(1, Ordering::SeqCst);
                let _ = state.results[idx].set(Ok(solutions));
                advance_prefix(
                    &state.prefix,
                    &state.results,
                    state.max_solutions,
                    &state.cap_reached,
                    state.cancel,
                );
            }
            Err(e @ SynthesisError::JobPanicked { .. }) => {
                // An isolated panic must NOT cancel the round: park the
                // error in the slot and keep draining tasks so sibling
                // shapes' solutions survive. The completed-prefix
                // tracker stalls at this slot — a later cap cutoff is
                // forfeited (an optimization, not a correctness
                // property; the merge still truncates exactly).
                let _ = state.results[idx].set(Err(e));
            }
            Err(e) => {
                if state.cap_reached.load(Ordering::SeqCst) {
                    // Induced abort: the satisfied prefix precedes this
                    // task, so its (discarded) result is immaterial.
                    stp_telemetry::counter!("par.tasks_cancelled").inc();
                    let _ = state.results[idx].set(Ok(Vec::new()));
                } else {
                    let mut slot = state.first_error.lock().expect("error lock poisoned");
                    match &*slot {
                        Some((i, _)) if *i <= idx => {}
                        _ => *slot = Some((idx, e.clone())),
                    }
                    drop(slot);
                    let _ = state.results[idx].set(Err(e));
                    state.cancel.store(true, Ordering::SeqCst);
                }
            }
        }
    }
}

/// Runs one round across `engines.len()` workers (falling back to the
/// sequential path when one worker — or one task — makes stealing
/// pointless). `cancel` must be freshly cleared; it is left set when the
/// round was cut off (solution cap or error).
pub(crate) fn run_round_parallel(
    spec: &TruthTable,
    shapes: &[TreeShape],
    engines: &mut [Factorizer],
    max_solutions: usize,
    max_depth: Option<usize>,
    cancel: &AtomicBool,
) -> Result<RoundOutcome, SynthesisError> {
    let n_tasks = shapes.len();
    let workers = engines.len().min(n_tasks);
    if workers <= 1 {
        let engine = engines.first_mut().expect("at least one engine");
        return run_round_sequential(spec, shapes, engine, max_solutions, max_depth, cancel);
    }
    let state = RoundState {
        spec,
        shapes,
        // Round-robin deal: worker w owns tasks w, w+workers, … so the
        // lowest indices complete early and the prefix tracker can cut
        // the round off as soon as the cap is provably reached.
        queues: (0..workers).map(|w| Mutex::new((w..n_tasks).step_by(workers).collect())).collect(),
        results: (0..n_tasks).map(|_| OnceLock::new()).collect(),
        prefix: Mutex::new(Prefix { next: 0, cum: 0 }),
        cancel,
        cap_reached: AtomicBool::new(false),
        first_error: Mutex::new(None),
        shapes_done: AtomicUsize::new(0),
        max_solutions,
        max_depth,
    };
    // Workers inherit the spawner's open-span path (e.g. the
    // synth.round.rN frame), so profiled spans on worker threads land
    // at the same tree position the sequential path records them — and
    // the spawner's counter scopes, so per-instance counter
    // attribution (the bench harness) survives shape-level fan-out.
    let base_path = stp_telemetry::profile::current_path();
    let scopes = stp_telemetry::scope::current();
    std::thread::scope(|scope| {
        for (w, engine) in engines[..workers].iter_mut().enumerate() {
            let state = &state;
            let base_path = base_path.clone();
            let scopes = scopes.clone();
            scope.spawn(move || {
                let _inherit_path = stp_telemetry::profile::inherit_path(&base_path);
                let _inherit_scopes = stp_telemetry::scope::inherit(&scopes);
                worker_loop(w, engine, state)
            });
        }
    });
    let cap_reached = state.cap_reached.load(Ordering::SeqCst);
    if !cap_reached {
        if let Some((_, e)) = state.first_error.into_inner().expect("error lock poisoned") {
            return Err(e);
        }
    }
    // Merge in shape-index order and truncate: byte-identical to the
    // sequential accumulation. When the cap cut the round off, every
    // slot up to the satisfying prefix is filled, so the loop below
    // reaches the cap before it can meet an unfilled slot. `Err` slots
    // are isolated panics (genuine errors returned above): they are
    // skipped, exactly as the sequential loop skips a panicked shape.
    let mut solutions: Vec<Chain> = Vec::new();
    let mut panicked = 0usize;
    let mut first_panic: Option<SynthesisError> = None;
    for slot in state.results {
        if solutions.len() >= max_solutions {
            break;
        }
        match slot.into_inner() {
            Some(Ok(sols)) => {
                let room = max_solutions - solutions.len();
                solutions.extend(sols.into_iter().take(room));
            }
            Some(Err(e)) => {
                panicked += 1;
                if first_panic.is_none() {
                    first_panic = Some(e);
                }
            }
            None => {}
        }
    }
    debug_assert!(solutions.len() <= max_solutions);
    let shapes_explored = state.shapes_done.load(Ordering::SeqCst);
    finish_round(solutions, shapes_explored, panicked, first_panic)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time audit: everything the scoped workers share or own
    /// must cross thread boundaries.
    #[test]
    fn shared_types_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Factorizer>();
        assert_send::<TruthTable>();
        assert_sync::<TruthTable>();
        assert_send::<TreeShape>();
        assert_sync::<TreeShape>();
        assert_send::<Chain>();
        assert_sync::<Chain>();
        assert_send::<SynthesisError>();
        assert_sync::<SynthesisError>();
    }

    #[test]
    fn resolve_jobs_maps_zero_to_cpu_count() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(7), 7);
    }

    #[test]
    fn job_budget_accounts_acquires_and_releases() {
        let budget = JobBudget::new(4);
        assert_eq!(budget.total(), 4);
        assert_eq!(budget.available(), 4);
        assert!(budget.acquire(3));
        assert_eq!(budget.available(), 1);
        assert!(!budget.acquire(2), "over-claim must fail without partial effect");
        assert_eq!(budget.available(), 1);
        assert!(budget.acquire(1));
        budget.release(4);
        assert_eq!(budget.available(), 4);
    }

    #[test]
    fn run_instances_returns_results_in_index_order() {
        for jobs in [1usize, 2, 4, 8] {
            let budget = JobBudget::new(jobs);
            let results = run_instances(&budget, 10, |idx, shape_jobs| {
                assert!(shape_jobs >= 1);
                idx * idx
            });
            let values: Vec<usize> = results.into_iter().map(|r| r.expect("no panic")).collect();
            assert_eq!(values, (0..10).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
            assert_eq!(budget.available(), budget.total(), "jobs={jobs}: budget leaked");
        }
    }

    #[test]
    fn run_instances_splits_the_budget_statically() {
        // Suite at least as wide as the budget: every instance is
        // shape-sequential, so counters match the sequential loop.
        let budget = JobBudget::new(4);
        let results = run_instances(&budget, 8, |_, shape_jobs| shape_jobs);
        assert!(results.into_iter().all(|r| r == Ok(1)));
        // A single instance gets the entire budget as shape slots.
        let results = run_instances(&budget, 1, |_, shape_jobs| shape_jobs);
        assert_eq!(results, vec![Ok(4)]);
        // Fewer instances than budget: the surplus goes to shape level,
        // uniformly.
        let budget = JobBudget::new(8);
        let results = run_instances(&budget, 3, |_, shape_jobs| shape_jobs);
        assert_eq!(results, vec![Ok(2), Ok(2), Ok(2)]);
        // Zero items is a no-op, not a panic.
        assert!(run_instances(&budget, 0, |_, _| 0).is_empty());
    }

    #[test]
    fn run_instances_isolates_a_panicking_item() {
        for jobs in [1usize, 4] {
            let budget = JobBudget::new(jobs);
            let results = run_instances(&budget, 5, |idx, _| {
                if idx == 2 {
                    panic!("instance boom");
                }
                idx
            });
            assert_eq!(results.len(), 5, "jobs={jobs}");
            for (idx, r) in results.iter().enumerate() {
                if idx == 2 {
                    let message = r.as_ref().expect_err("item 2 must fail");
                    assert!(message.contains("instance task 2"), "jobs={jobs}: {message}");
                    assert!(message.contains("instance boom"), "jobs={jobs}: {message}");
                } else {
                    assert_eq!(r.as_ref().copied(), Ok(idx), "jobs={jobs}: survivor lost");
                }
            }
            assert_eq!(budget.available(), budget.total(), "jobs={jobs}: budget leaked");
        }
    }

    #[test]
    fn run_instances_inherits_counter_scopes() {
        // Counters bumped inside pooled instances land in the scope
        // open on the submitting thread, at any pool width.
        for jobs in [1usize, 4] {
            let scope = stp_telemetry::CounterScope::enter();
            let budget = JobBudget::new(jobs);
            let results = run_instances(&budget, 6, |_, _| {
                stp_telemetry::counter!("par.test.scoped_work").inc();
            });
            assert!(results.into_iter().all(|r| r.is_ok()));
            let got = scope.finish();
            assert_eq!(got.get("par.test.scoped_work"), Some(&6), "jobs={jobs}");
        }
    }

    #[test]
    fn stp_jobs_values_parse_strictly() {
        // The env var itself is process-global (the CLI tests cover it
        // end to end in fresh processes); the value grammar is pinned
        // here.
        assert_eq!(parse_jobs_value("4"), Ok(4));
        assert_eq!(parse_jobs_value("0"), Ok(0), "0 = one per CPU stays valid");
        assert_eq!(parse_jobs_value(""), Ok(1), "empty means unset");
        for bad in ["abc", "-2", "1.5", " 4", "4 ", "0x2"] {
            let err = parse_jobs_value(bad).expect_err(bad);
            assert!(err.contains("STP_JOBS"), "`{bad}`: message must name the variable: {err}");
            assert!(err.contains(bad), "`{bad}`: message must echo the value: {err}");
        }
    }

    #[test]
    fn panic_message_downcasts_common_payloads() {
        assert_eq!(panic_message(Box::new("static str")), "static str");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(42u32)), "non-string panic payload");
    }

    #[test]
    fn finish_round_propagates_panic_only_without_survivors() {
        let panic = SynthesisError::JobPanicked { message: "shape task 0: boom".into() };
        // No survivors: the panic is load-bearing and must surface.
        let err = finish_round(Vec::new(), 0, 1, Some(panic.clone())).unwrap_err();
        assert_eq!(err, panic);
        // No panic at all: plain success.
        let ok = finish_round(Vec::new(), 3, 0, None).expect("clean round");
        assert_eq!(ok.shapes_explored, 3);
        assert!(ok.solutions.is_empty());
    }

    /// End-to-end isolation: with the `parallel.shape` failpoint armed
    /// for the second shape, the sequential round still returns the
    /// survivors from every other shape and tallies the panic.
    #[cfg(feature = "faultsim")]
    #[test]
    fn sequential_round_survives_a_panicking_shape() {
        use crate::factor::{FactorConfig, Factorizer};
        use stp_fence::shapes_with_gates;

        let _guard = stp_faultsim::test_guard();
        stp_faultsim::clear_all();

        let spec = TruthTable::from_hex(4, "8ff8").expect("valid spec");
        let shapes = shapes_with_gates(3);
        assert!(shapes.len() >= 2, "need several shapes for the round");
        let mut engine = Factorizer::new(FactorConfig::default());
        let cancel = AtomicBool::new(false);

        let clean = run_round_sequential(&spec, &shapes, &mut engine, usize::MAX, None, &cancel)
            .expect("clean round");
        assert!(!clean.solutions.is_empty(), "0x8ff8 must solve at 3 gates");
        let clean_keys: Vec<String> = clean.solutions.iter().map(|c| format!("{c:?}")).collect();

        // Panic each shape in turn. When survivors exist the round must
        // succeed with a subsequence of the clean stream; when the
        // panicked shape carried every solution the error must surface.
        let mut rounds_with_survivors = 0;
        for k in 0..shapes.len() {
            stp_faultsim::set("parallel.shape", &format!("{}:panic", k + 1)).expect("valid spec");
            let mut engine = Factorizer::new(FactorConfig::default());
            match run_round_sequential(&spec, &shapes, &mut engine, usize::MAX, None, &cancel) {
                Ok(faulted) => {
                    assert_eq!(faulted.shapes_explored + 1, clean.shapes_explored);
                    // The faulted stream is a subsequence of the clean one.
                    let mut pos = 0;
                    for sol in &faulted.solutions {
                        let key = format!("{sol:?}");
                        let offset = clean_keys[pos..]
                            .iter()
                            .position(|k| *k == key)
                            .expect("faulted solution missing from clean run");
                        pos += offset + 1;
                    }
                    if !faulted.solutions.is_empty() {
                        rounds_with_survivors += 1;
                    }
                }
                Err(SynthesisError::JobPanicked { message }) => {
                    assert!(message.contains(&format!("shape task {k}")));
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        stp_faultsim::clear_all();
        assert!(rounds_with_survivors > 0, "some shape must be non-load-bearing");
    }
}
