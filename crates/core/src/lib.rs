//! STP-based exact synthesis — the core contribution of *"Exact
//! Synthesis Based on Semi-Tensor Product Circuit Solver"* (Pan & Chu,
//! DATE 2023), reimplemented in Rust.
//!
//! The engine finds **all** minimum-gate-count Boolean chains (networks
//! of arbitrary 2-input LUTs) realizing a single-output specification:
//!
//! 1. the spec is encoded as an STP canonical form
//!    ([`encode_canonical_form`]);
//! 2. candidate topologies come from the pruned Boolean-fence family
//!    (crate `stp-fence`);
//! 3. the canonical form is factored over each topology by the paper's
//!    quartering test ([`Factorizer`]), enumerating every consistent
//!    operator assignment;
//! 4. candidates are verified by the STP-based circuit AllSAT solver
//!    ([`solve_circuit`] / [`verify_chain`]) and returned in one pass
//!    ([`synthesize`]).
//!
//! # Quick start
//!
//! ```
//! use stp_synth::synthesize_default;
//! use stp_tt::TruthTable;
//!
//! // The paper's running example (Example 7).
//! let spec = TruthTable::from_hex(4, "8ff8")?;
//! let result = synthesize_default(&spec)?;
//! assert_eq!(result.gate_count, 3);
//! for chain in &result.chains {
//!     assert_eq!(chain.simulate_outputs()?[0], spec);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod circuit_solver;
mod encode;
mod error;
mod factor;
mod parallel;
mod synth;

pub use circuit_solver::{solve_circuit, verify_chain, CircuitSolutions, PartialAssignment};
pub use encode::{decode_canonical_form, encode_canonical_form};
pub use error::SynthesisError;
pub use factor::{FactorConfig, Factorizer};
pub use parallel::{jobs_from_env, jobs_from_env_checked, resolve_jobs, run_instances, JobBudget};
pub use synth::{
    objective_from_spec, synthesize, synthesize_default, synthesize_multi,
    synthesize_multi_npn_with_store, synthesize_npn, synthesize_npn_with_store,
    synthesize_with_objective, warm_classes, warm_npn4, CostObjective, DepthThenGatesObjective,
    GateCountObjective, GateProfileObjective, MultiSpec, MultiSynthesisResult, SynthesisConfig,
    SynthesisResult, WarmReport,
};
