//! Knuth-style Boolean chains of 2-input LUT nodes.
//!
//! A *Boolean chain* (§II-B of the paper, after Knuth TAOCP 4A) over
//! inputs `x_1 … x_n` is a sequence of steps `x_{n+1} … x_{n+r}`, each
//! computing a 2-input Boolean operator of two strictly earlier signals.
//! Outputs may tap any signal, optionally complemented.
//!
//! The paper's STP synthesis returns solutions as chains of *arbitrary*
//! 2-input LUTs ("all solutions are expressed as 2-LUTs, rather than
//! homogeneous logic representations"), so each gate carries its 4-bit
//! truth table, and [`Chain::cost`] lets callers rank solutions under
//! different cost models — the flexibility the paper advertises.
//!
//! # Quick start
//!
//! Build the optimum chain for the paper's running example `0x8ff8`
//! (Example 7) and check it by simulation:
//!
//! ```
//! use stp_chain::{Chain, OutputRef};
//! use stp_tt::TruthTable;
//!
//! let mut chain = Chain::new(4);
//! let x5 = chain.add_gate(2, 3, 0x6)?; // x5 = XOR(c, d)
//! let x6 = chain.add_gate(0, 1, 0x8)?; // x6 = AND(a, b)
//! let x7 = chain.add_gate(x5, x6, 0xe)?; // x7 = OR(x5, x6)
//! chain.add_output(OutputRef::signal(x7));
//! let f = chain.simulate_outputs()?;
//! assert_eq!(f[0], TruthTable::from_hex(4, "8ff8")?);
//! # Ok::<(), stp_chain::ChainError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use stp_tt::{TruthTable, TruthTableError};

/// Errors raised while building or simulating a [`Chain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A gate fanin references a signal at or beyond the gate itself.
    FaninOutOfRange {
        /// The offending fanin index.
        fanin: usize,
        /// Number of signals available when the gate was added.
        available: usize,
    },
    /// A gate's two fanins are identical; use a unary gate or wire
    /// directly instead.
    DuplicateFanin {
        /// The repeated signal index.
        fanin: usize,
    },
    /// An output references a missing signal.
    OutputOutOfRange {
        /// The offending signal index.
        index: usize,
        /// Number of signals in the chain.
        available: usize,
    },
    /// The chain's input count is not supported by the truth-table
    /// substrate.
    TruthTable(TruthTableError),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::FaninOutOfRange { fanin, available } => {
                write!(f, "fanin {fanin} must reference one of the {available} earlier signals")
            }
            ChainError::DuplicateFanin { fanin } => {
                write!(f, "gate fanins must be distinct, got {fanin} twice")
            }
            ChainError::OutputOutOfRange { index, available } => {
                write!(f, "output references signal {index} but the chain has {available}")
            }
            ChainError::TruthTable(e) => write!(f, "truth table error: {e}"),
        }
    }
}

impl Error for ChainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChainError::TruthTable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TruthTableError> for ChainError {
    fn from(e: TruthTableError) -> Self {
        ChainError::TruthTable(e)
    }
}

/// A 2-input LUT gate inside a [`Chain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    /// Fanin signal indices (inputs are `0..n`, gates follow).
    pub fanin: [usize; 2],
    /// 4-bit truth table: bit `a + 2b` is the gate value when the first
    /// fanin is `a` and the second is `b`.
    pub tt2: u8,
}

impl Gate {
    /// Evaluates the gate function.
    pub fn apply(&self, a: bool, b: bool) -> bool {
        (self.tt2 >> ((a as u8) + 2 * (b as u8))) & 1 == 1
    }

    /// `true` when the gate function depends on both fanins (it is not a
    /// constant or a projection).
    pub fn is_nontrivial(&self) -> bool {
        let f = |a: bool, b: bool| self.apply(a, b);
        let dep_a = f(false, false) != f(true, false) || f(false, true) != f(true, true);
        let dep_b = f(false, false) != f(false, true) || f(true, false) != f(true, true);
        dep_a && dep_b
    }
}

/// An output tap: a signal reference with optional complementation, or a
/// constant (Knuth's `x_0 = 0` convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputRef {
    /// A (possibly complemented) signal.
    Signal {
        /// Signal index (inputs are `0..n`, gates follow).
        index: usize,
        /// Whether the output is complemented.
        negated: bool,
    },
    /// A constant output.
    Constant(bool),
}

impl OutputRef {
    /// An uncomplemented signal tap.
    pub fn signal(index: usize) -> Self {
        OutputRef::Signal { index, negated: false }
    }

    /// A complemented signal tap.
    pub fn negated_signal(index: usize) -> Self {
        OutputRef::Signal { index, negated: true }
    }
}

/// Cost models for ranking synthesized chains.
///
/// The paper emphasizes that because STP synthesis returns *all* optimum
/// chains as generic 2-LUTs, "different costs can be considered when
/// selecting the optimal circuit" — this type is that selector.
#[derive(Debug, Clone, PartialEq)]
pub enum CostModel {
    /// Number of gates (the primary optimality criterion).
    GateCount,
    /// Length of the longest input-to-output path.
    Depth,
    /// Per-operator weights: gates whose 4-bit truth table is absent from
    /// the map cost `default`.
    WeightedOps {
        /// Cost per gate truth table.
        weights: HashMap<u8, u64>,
        /// Cost of gates not present in `weights`.
        default: u64,
    },
}

/// A Boolean chain: `num_inputs` primary inputs followed by 2-input LUT
/// gates, with explicit output taps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    num_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<OutputRef>,
}

impl Chain {
    /// Creates an empty chain over `num_inputs` primary inputs.
    pub fn new(num_inputs: usize) -> Self {
        Chain { num_inputs, gates: Vec::new(), outputs: Vec::new() }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Total number of signals (inputs + gates).
    pub fn num_signals(&self) -> usize {
        self.num_inputs + self.gates.len()
    }

    /// The gates, in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The output taps.
    pub fn outputs(&self) -> &[OutputRef] {
        &self.outputs
    }

    /// Appends a gate computing `tt2(fanin0, fanin1)` and returns its
    /// signal index.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::FaninOutOfRange`] when a fanin does not
    /// reference an earlier signal and [`ChainError::DuplicateFanin`]
    /// when the fanins coincide.
    pub fn add_gate(&mut self, fanin0: usize, fanin1: usize, tt2: u8) -> Result<usize, ChainError> {
        let available = self.num_signals();
        for fanin in [fanin0, fanin1] {
            if fanin >= available {
                return Err(ChainError::FaninOutOfRange { fanin, available });
            }
        }
        if fanin0 == fanin1 {
            return Err(ChainError::DuplicateFanin { fanin: fanin0 });
        }
        self.gates.push(Gate { fanin: [fanin0, fanin1], tt2: tt2 & 0xf });
        Ok(available)
    }

    /// Registers an output tap.
    ///
    /// Out-of-range signal references are caught by
    /// [`Chain::simulate_outputs`] and [`Chain::validate`].
    pub fn add_output(&mut self, output: OutputRef) {
        self.outputs.push(output);
    }

    /// Checks the structural invariants: every gate reads strictly
    /// earlier distinct signals and every output tap exists.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ChainError> {
        for (i, gate) in self.gates.iter().enumerate() {
            let available = self.num_inputs + i;
            for fanin in gate.fanin {
                if fanin >= available {
                    return Err(ChainError::FaninOutOfRange { fanin, available });
                }
            }
            if gate.fanin[0] == gate.fanin[1] {
                return Err(ChainError::DuplicateFanin { fanin: gate.fanin[0] });
            }
        }
        for out in &self.outputs {
            if let OutputRef::Signal { index, .. } = out {
                if *index >= self.num_signals() {
                    return Err(ChainError::OutputOutOfRange {
                        index: *index,
                        available: self.num_signals(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Simulates every signal bit-parallel, returning one truth table per
    /// signal (inputs first, then gates).
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] when the chain is structurally invalid or
    /// the input count exceeds the truth-table substrate's limit.
    pub fn simulate(&self) -> Result<Vec<TruthTable>, ChainError> {
        self.validate()?;
        let mut signals = Vec::with_capacity(self.num_signals());
        for i in 0..self.num_inputs {
            signals.push(TruthTable::variable(self.num_inputs, i)?);
        }
        for gate in &self.gates {
            let a = &signals[gate.fanin[0]];
            let b = &signals[gate.fanin[1]];
            signals.push(a.binary_op(gate.tt2, b)?);
        }
        Ok(signals)
    }

    /// Simulates the chain and returns one truth table per output tap.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Chain::simulate`].
    pub fn simulate_outputs(&self) -> Result<Vec<TruthTable>, ChainError> {
        stp_telemetry::counter!("chain.simulations").inc();
        let signals = self.simulate()?;
        let mut out = Vec::with_capacity(self.outputs.len());
        for tap in &self.outputs {
            match tap {
                OutputRef::Signal { index, negated } => {
                    let tt = signals[*index].clone();
                    out.push(if *negated { !tt } else { tt });
                }
                OutputRef::Constant(v) => {
                    out.push(TruthTable::constant(self.num_inputs, *v)?);
                }
            }
        }
        Ok(out)
    }

    /// Per-signal logic level: inputs are level 0, a gate is one more
    /// than its deepest fanin.
    pub fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.num_signals()];
        for (i, gate) in self.gates.iter().enumerate() {
            let idx = self.num_inputs + i;
            levels[idx] = 1 + gate.fanin.iter().map(|&f| levels[f]).max().unwrap_or(0);
        }
        levels
    }

    /// Depth of the chain: the maximum output level.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs
            .iter()
            .filter_map(|o| match o {
                OutputRef::Signal { index, .. } => levels.get(*index).copied(),
                OutputRef::Constant(_) => Some(0),
            })
            .max()
            .unwrap_or_else(|| levels.iter().copied().max().unwrap_or(0))
    }

    /// Evaluates the chain's cost under a [`CostModel`].
    pub fn cost(&self, model: &CostModel) -> u64 {
        match model {
            CostModel::GateCount => self.gates.len() as u64,
            CostModel::Depth => self.depth() as u64,
            CostModel::WeightedOps { weights, default } => {
                self.gates.iter().map(|g| weights.get(&g.tt2).copied().unwrap_or(*default)).sum()
            }
        }
    }

    /// `true` when every gate function depends on both of its fanins.
    pub fn all_gates_nontrivial(&self) -> bool {
        self.gates.iter().all(Gate::is_nontrivial)
    }

    /// Rewires the chain under an input permutation, input negations,
    /// and an output negation: the result `C'` satisfies
    /// `C'(z) = C(y) ^ output_negated` with
    /// `y_i = z_{perm[i]} ^ negation(perm[i])`.
    ///
    /// Input negations are absorbed into the truth tables of the gates
    /// reading those inputs, so the gate count never changes. Together
    /// with [`stp_tt::canonicalize`] this maps a chain synthesized for
    /// an NPN class representative back to any class member.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::FaninOutOfRange`] when `perm` is not a
    /// permutation of the chain's inputs.
    pub fn permute_negate(
        &self,
        perm: &[usize],
        input_negations: u32,
        output_negated: bool,
    ) -> Result<Chain, ChainError> {
        let n = self.num_inputs;
        if perm.len() != n {
            return Err(ChainError::FaninOutOfRange { fanin: perm.len(), available: n });
        }
        let mut seen = vec![false; n];
        for &p in perm {
            if p >= n || seen[p] {
                return Err(ChainError::FaninOutOfRange { fanin: p, available: n });
            }
            seen[p] = true;
        }
        let mut out = Chain::new(n);
        for gate in &self.gates {
            let mut tt2 = gate.tt2;
            let mut fanin = gate.fanin;
            for (slot, f) in fanin.iter_mut().enumerate() {
                if *f < n {
                    // Old input i reads z_{perm[i]}, complemented per the
                    // negation mask on the *new* index.
                    let old = *f;
                    if (input_negations >> perm[old]) & 1 == 1 {
                        tt2 = flip_operand(tt2, slot);
                    }
                    *f = perm[old];
                }
            }
            out.add_gate(fanin[0], fanin[1], tt2)?;
        }
        for tap in &self.outputs {
            out.add_output(match tap {
                OutputRef::Signal { index: old, negated } => {
                    let mut negated = *negated ^ output_negated;
                    let index = if *old < n {
                        // Direct input taps absorb the negation of the
                        // input they now read.
                        if (input_negations >> perm[*old]) & 1 == 1 {
                            negated = !negated;
                        }
                        perm[*old]
                    } else {
                        *old
                    };
                    OutputRef::Signal { index, negated }
                }
                OutputRef::Constant(v) => OutputRef::Constant(*v ^ output_negated),
            });
        }
        Ok(out)
    }

    /// Multi-output generalization of [`Chain::permute_negate`]: rewires
    /// the inputs as there, then reorders and rephases the output taps.
    ///
    /// `self`'s outputs are taken to be in *canonical* order: canonical
    /// position `j` holds original output `output_perm[j]`, complemented
    /// when `output_negations[j]` is set. The result's outputs are in
    /// *original* order — output `o` of the result computes
    /// `C_j(y…) ^ output_negations[j]` for the `j` with
    /// `output_perm[j] == o` and the same `y` relation as
    /// [`Chain::permute_negate`]. Together with
    /// [`stp_tt::canonicalize_multi`] this maps a chain synthesized for
    /// a multi-output class representative tuple back to the original
    /// spec vector.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::FaninOutOfRange`] when `perm` is not a
    /// permutation of the inputs and [`ChainError::OutputOutOfRange`]
    /// when `output_perm`/`output_negations` do not form a permutation
    /// and phase vector over this chain's outputs.
    pub fn permute_negate_outputs(
        &self,
        perm: &[usize],
        input_negations: u32,
        output_perm: &[usize],
        output_negations: &[bool],
    ) -> Result<Chain, ChainError> {
        let k = self.outputs.len();
        if output_perm.len() != k || output_negations.len() != k {
            return Err(ChainError::OutputOutOfRange {
                index: output_perm.len().max(output_negations.len()),
                available: k,
            });
        }
        let mut seen = vec![false; k];
        for &o in output_perm {
            if o >= k || seen[o] {
                return Err(ChainError::OutputOutOfRange { index: o, available: k });
            }
            seen[o] = true;
        }
        let base = self.permute_negate(perm, input_negations, false)?;
        let mut out = Chain { num_inputs: base.num_inputs, gates: base.gates, outputs: Vec::new() };
        for o in 0..k {
            let j = output_perm.iter().position(|&x| x == o).expect("validated permutation");
            out.outputs.push(match base.outputs[j] {
                OutputRef::Signal { index, negated } => {
                    OutputRef::Signal { index, negated: negated ^ output_negations[j] }
                }
                OutputRef::Constant(v) => OutputRef::Constant(v ^ output_negations[j]),
            });
        }
        Ok(out)
    }
}

/// Swaps the operands of a 2-input truth table: `σ'(a, b) = σ(b, a)`.
fn swap_operands(tt2: u8) -> u8 {
    let mut out = tt2 & 0b1001; // (0,0) and (1,1) fixed
    if tt2 & 0b0010 != 0 {
        out |= 0b0100;
    }
    if tt2 & 0b0100 != 0 {
        out |= 0b0010;
    }
    out
}

/// Merges chains over a common input set into one multi-output chain,
/// structurally sharing gates.
///
/// Gates are deduplicated by `(fanin, fanin, tt2)` after normalizing the
/// operand order (the lower signal index first, swapping the LUT's
/// operands to compensate), so structurally equal gates — including
/// operand-swapped spellings — appear once in the merged chain. Outputs
/// are concatenated in argument order. The merged gate count is
/// therefore never larger than the sum of the input gate counts, and
/// strictly smaller whenever the chains share structure.
///
/// Gate order is deterministic: first use wins, scanning chains left to
/// right and gates in topological order.
///
/// # Errors
///
/// Propagates [`ChainError::DuplicateFanin`] when deduplication folds a
/// gate's two fanins together — possible only when an input chain
/// already contains structurally duplicate gates (optimum chains never
/// do).
///
/// # Panics
///
/// Panics when `chains` is empty or the chains disagree on input count.
pub fn merge_chains(chains: &[&Chain]) -> Result<Chain, ChainError> {
    assert!(!chains.is_empty(), "merge_chains needs at least one chain");
    let n = chains[0].num_inputs;
    assert!(chains.iter().all(|c| c.num_inputs == n), "merge_chains requires a common input count");
    let mut merged = Chain::new(n);
    let mut dedup: HashMap<(usize, usize, u8), usize> = HashMap::new();
    for chain in chains {
        // map[s] = signal index of chain signal `s` in the merged chain.
        let mut map: Vec<usize> = (0..n).collect();
        for gate in chain.gates() {
            let mut a = map[gate.fanin[0]];
            let mut b = map[gate.fanin[1]];
            let mut tt2 = gate.tt2;
            if a > b {
                std::mem::swap(&mut a, &mut b);
                tt2 = swap_operands(tt2);
            }
            let index = match dedup.get(&(a, b, tt2)) {
                Some(&i) => i,
                None => {
                    let i = merged.add_gate(a, b, tt2)?;
                    dedup.insert((a, b, tt2), i);
                    i
                }
            };
            map.push(index);
        }
        for tap in chain.outputs() {
            merged.add_output(match tap {
                OutputRef::Signal { index, negated } => {
                    OutputRef::Signal { index: map[*index], negated: *negated }
                }
                OutputRef::Constant(v) => OutputRef::Constant(*v),
            });
        }
    }
    Ok(merged)
}

/// Builds the zero-gate chain for constants and (complemented)
/// projections, or `None` for non-trivial functions.
///
/// Every synthesis entry path checks this before paying for NPN
/// canonicalization or a solution-store round-trip, so trivial cut
/// functions stay free on the hot rewriting path.
pub fn trivial_chain(spec: &TruthTable) -> Option<Chain> {
    let n = spec.num_vars();
    let ones = spec.count_ones();
    let mut chain = Chain::new(n);
    if ones == 0 || ones == spec.num_bits() {
        chain.add_output(OutputRef::Constant(ones != 0));
        return Some(chain);
    }
    for v in 0..n {
        let proj = TruthTable::variable(n, v).ok()?;
        if *spec == proj {
            chain.add_output(OutputRef::signal(v));
            return Some(chain);
        }
        if *spec == !proj {
            chain.add_output(OutputRef::negated_signal(v));
            return Some(chain);
        }
    }
    None
}

/// Flips one operand of a 2-input truth table (`slot` 0 is the first
/// fanin): `σ'(a, b) = σ(¬a, b)` or `σ(a, ¬b)`.
fn flip_operand(tt2: u8, slot: usize) -> u8 {
    let mut out = 0u8;
    for a in 0..2u8 {
        for b in 0..2u8 {
            let (sa, sb) = if slot == 0 { (1 - a, b) } else { (a, 1 - b) };
            if (tt2 >> (sa + 2 * sb)) & 1 == 1 {
                out |= 1 << (a + 2 * b);
            }
        }
    }
    out
}

impl fmt::Display for Chain {
    /// Lists the chain in the paper's notation, e.g.
    /// `x5 = 0x6(x3, x4)` (signals are printed 1-based to match the
    /// paper).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, gate) in self.gates.iter().enumerate() {
            let idx = self.num_inputs + i + 1;
            writeln!(
                f,
                "x{idx} = 0x{:x}(x{}, x{})",
                gate.tt2,
                gate.fanin[0] + 1,
                gate.fanin[1] + 1
            )?;
        }
        for (k, out) in self.outputs.iter().enumerate() {
            match out {
                OutputRef::Signal { index, negated } => {
                    let sign = if *negated { "!" } else { "" };
                    writeln!(f, "f{} = {sign}x{}", k + 1, index + 1)?;
                }
                OutputRef::Constant(v) => writeln!(f, "f{} = {}", k + 1, *v as u8)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The parallel synthesis layer (stp-synth) moves these across
    // worker threads; keep them free of interior mutability.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn chain_types_are_send_and_sync() {
        assert_send_sync::<Chain>();
        assert_send_sync::<Gate>();
        assert_send_sync::<OutputRef>();
        assert_send_sync::<CostModel>();
        assert_send_sync::<ChainError>();
    }

    fn example7_chain() -> Chain {
        let mut chain = Chain::new(4);
        let x5 = chain.add_gate(2, 3, 0x6).unwrap();
        let x6 = chain.add_gate(0, 1, 0x8).unwrap();
        let x7 = chain.add_gate(x5, x6, 0xe).unwrap();
        chain.add_output(OutputRef::signal(x7));
        chain
    }

    #[test]
    fn example7_simulates_to_0x8ff8() {
        let chain = example7_chain();
        let out = chain.simulate_outputs().unwrap();
        assert_eq!(out[0], TruthTable::from_hex(4, "8ff8").unwrap());
    }

    #[test]
    fn example7_second_solution_also_works() {
        // x7 = 0x7(x5, x6), x6 = 0x7(a, b), x5 = 0x9(c, d).
        let mut chain = Chain::new(4);
        let x5 = chain.add_gate(2, 3, 0x9).unwrap();
        let x6 = chain.add_gate(0, 1, 0x7).unwrap();
        let x7 = chain.add_gate(x5, x6, 0x7).unwrap();
        chain.add_output(OutputRef::signal(x7));
        let out = chain.simulate_outputs().unwrap();
        assert_eq!(out[0], TruthTable::from_hex(4, "8ff8").unwrap());
    }

    #[test]
    fn fanin_ordering_enforced() {
        let mut chain = Chain::new(2);
        assert!(matches!(
            chain.add_gate(0, 2, 0x8),
            Err(ChainError::FaninOutOfRange { fanin: 2, available: 2 })
        ));
        assert!(matches!(chain.add_gate(1, 1, 0x8), Err(ChainError::DuplicateFanin { fanin: 1 })));
    }

    #[test]
    fn validate_catches_bad_outputs() {
        let mut chain = Chain::new(2);
        chain.add_output(OutputRef::signal(5));
        assert!(matches!(chain.validate(), Err(ChainError::OutputOutOfRange { index: 5, .. })));
    }

    #[test]
    fn negated_output_complements() {
        let mut chain = Chain::new(2);
        let g = chain.add_gate(0, 1, 0x8).unwrap();
        chain.add_output(OutputRef::negated_signal(g));
        let out = chain.simulate_outputs().unwrap();
        assert_eq!(out[0], TruthTable::from_hex(2, "7").unwrap());
    }

    #[test]
    fn constant_output() {
        let mut chain = Chain::new(3);
        chain.add_output(OutputRef::Constant(true));
        let out = chain.simulate_outputs().unwrap();
        assert_eq!(out[0], TruthTable::constant(3, true).unwrap());
    }

    #[test]
    fn projection_output_without_gates() {
        let mut chain = Chain::new(3);
        chain.add_output(OutputRef::signal(1));
        let out = chain.simulate_outputs().unwrap();
        assert_eq!(out[0], TruthTable::variable(3, 1).unwrap());
    }

    #[test]
    fn levels_and_depth() {
        let chain = example7_chain();
        let levels = chain.levels();
        assert_eq!(&levels[..4], &[0, 0, 0, 0]);
        assert_eq!(levels[4], 1); // x5
        assert_eq!(levels[5], 1); // x6
        assert_eq!(levels[6], 2); // x7
        assert_eq!(chain.depth(), 2);
    }

    #[test]
    fn cost_models() {
        let chain = example7_chain();
        assert_eq!(chain.cost(&CostModel::GateCount), 3);
        assert_eq!(chain.cost(&CostModel::Depth), 2);
        // XOR costs 3, everything else 1: x5 is the only XOR.
        let mut weights = HashMap::new();
        weights.insert(0x6u8, 3u64);
        let model = CostModel::WeightedOps { weights, default: 1 };
        assert_eq!(chain.cost(&model), 5);
    }

    #[test]
    fn gate_nontriviality() {
        assert!(Gate { fanin: [0, 1], tt2: 0x8 }.is_nontrivial());
        assert!(Gate { fanin: [0, 1], tt2: 0x6 }.is_nontrivial());
        // Projection onto the first fanin.
        assert!(!Gate { fanin: [0, 1], tt2: 0xa }.is_nontrivial());
        // Constant.
        assert!(!Gate { fanin: [0, 1], tt2: 0x0 }.is_nontrivial());
        let chain = example7_chain();
        assert!(chain.all_gates_nontrivial());
    }

    #[test]
    fn multi_output_simulation() {
        let mut chain = Chain::new(2);
        let g1 = chain.add_gate(0, 1, 0x8).unwrap();
        let g2 = chain.add_gate(0, 1, 0x6).unwrap();
        chain.add_output(OutputRef::signal(g1));
        chain.add_output(OutputRef::signal(g2));
        let out = chain.simulate_outputs().unwrap();
        assert_eq!(out[0].to_hex(), "8");
        assert_eq!(out[1].to_hex(), "6");
    }

    #[test]
    fn display_matches_paper_notation() {
        let chain = example7_chain();
        let text = format!("{chain}");
        assert!(text.contains("x5 = 0x6(x3, x4)"));
        assert!(text.contains("x6 = 0x8(x1, x2)"));
        assert!(text.contains("x7 = 0xe(x5, x6)"));
        assert!(text.contains("f1 = x7"));
    }

    #[test]
    fn gate_apply_semantics() {
        let g = Gate { fanin: [0, 1], tt2: 0xd }; // !a | b
        assert!(g.apply(false, false));
        assert!(!g.apply(true, false));
        assert!(g.apply(false, true));
        assert!(g.apply(true, true));
    }

    fn full_adder_chains() -> (Chain, Chain) {
        // sum = a ^ b ^ c: t = a^b, s = t^c.
        let mut sum = Chain::new(3);
        let t = sum.add_gate(0, 1, 0x6).unwrap();
        let s = sum.add_gate(t, 2, 0x6).unwrap();
        sum.add_output(OutputRef::signal(s));
        // carry = MAJ(a,b,c): t1 = a&b, t2 = b^a (operand-swapped on
        // purpose), t3 = t2&c, t4 = t1|t3.
        let mut carry = Chain::new(3);
        let t1 = carry.add_gate(0, 1, 0x8).unwrap();
        let t2 = carry.add_gate(1, 0, 0x6).unwrap();
        let t3 = carry.add_gate(t2, 2, 0x8).unwrap();
        let t4 = carry.add_gate(t1, t3, 0xe).unwrap();
        carry.add_output(OutputRef::signal(t4));
        (sum, carry)
    }

    #[test]
    fn merge_chains_shares_structurally_equal_gates() {
        let (sum, carry) = full_adder_chains();
        let merged = merge_chains(&[&sum, &carry]).unwrap();
        // a^b appears in both chains (operand-swapped in carry) and must
        // be shared: 2 + 4 gates merge into 5.
        assert_eq!(merged.num_gates(), 5);
        assert_eq!(merged.outputs().len(), 2);
        let got = merged.simulate_outputs().unwrap();
        let want_sum = sum.simulate_outputs().unwrap().remove(0);
        let want_carry = carry.simulate_outputs().unwrap().remove(0);
        assert_eq!(got, vec![want_sum, want_carry]);
    }

    #[test]
    fn merge_chains_is_identity_for_one_chain() {
        let chain = example7_chain();
        let merged = merge_chains(&[&chain]).unwrap();
        assert_eq!(merged.num_gates(), chain.num_gates());
        assert_eq!(merged.simulate_outputs().unwrap(), chain.simulate_outputs().unwrap());
    }

    #[test]
    fn permute_negate_outputs_matches_formula() {
        let (sum, carry) = full_adder_chains();
        let chain = merge_chains(&[&sum, &carry]).unwrap();
        let specs = chain.simulate_outputs().unwrap();
        let perm = [2usize, 0, 1];
        let negs = 0b011u32;
        let operm = [1usize, 0];
        let onegs = [true, false];
        let mapped = chain.permute_negate_outputs(&perm, negs, &operm, &onegs).unwrap();
        assert_eq!(mapped.num_gates(), chain.num_gates());
        let got = mapped.simulate_outputs().unwrap();
        // Result output o = C_j(y) ^ onegs[j] with operm[j] == o and
        // y_i = z_{perm[i]} ^ neg(perm[i]).
        for (o, result) in got.iter().enumerate() {
            let j = operm.iter().position(|&x| x == o).unwrap();
            let expected = TruthTable::from_fn(3, |z| {
                let y: Vec<bool> =
                    (0..3).map(|i| z[perm[i]] ^ ((negs >> perm[i]) & 1 == 1)).collect();
                specs[j].eval(&y) ^ onegs[j]
            })
            .unwrap();
            assert_eq!(*result, expected, "output {o}");
        }
    }

    #[test]
    fn permute_negate_outputs_rejects_bad_output_perm() {
        let (sum, carry) = full_adder_chains();
        let chain = merge_chains(&[&sum, &carry]).unwrap();
        let perm = [0usize, 1, 2];
        assert!(chain.permute_negate_outputs(&perm, 0, &[0, 0], &[false, false]).is_err());
        assert!(chain.permute_negate_outputs(&perm, 0, &[0], &[false]).is_err());
        assert!(chain.permute_negate_outputs(&perm, 0, &[0, 2], &[false, false]).is_err());
    }

    #[test]
    fn swap_operands_semantics() {
        // AND is symmetric; a AND NOT b (0x2) swaps to NOT a AND b (0x4).
        assert_eq!(super::swap_operands(0x8), 0x8);
        assert_eq!(super::swap_operands(0x2), 0x4);
        assert_eq!(super::swap_operands(super::swap_operands(0xd)), 0xd);
    }

    #[test]
    fn permute_negate_round_trip() {
        let chain = example7_chain();
        let spec = chain.simulate_outputs().unwrap()[0].clone();
        // Swap inputs 0<->2, negate input 1, negate output.
        let perm = [2usize, 1, 0, 3];
        let mapped = chain.permute_negate(&perm, 0b0010, true).unwrap();
        assert_eq!(mapped.num_gates(), chain.num_gates());
        let got = mapped.simulate_outputs().unwrap()[0].clone();
        // C'(z) = C(y) ^ 1 with y_i = z_{perm[i]} ^ neg(perm[i]).
        let expected = TruthTable::from_fn(4, |z| {
            let y: Vec<bool> =
                (0..4).map(|i| z[perm[i]] ^ ((0b0010u32 >> perm[i]) & 1 == 1)).collect();
            !spec.eval(&y)
        })
        .unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn permute_negate_identity_is_noop() {
        let chain = example7_chain();
        let same = chain.permute_negate(&[0, 1, 2, 3], 0, false).unwrap();
        assert_eq!(same.simulate_outputs().unwrap()[0], chain.simulate_outputs().unwrap()[0]);
    }

    #[test]
    fn permute_negate_rejects_bad_permutations() {
        let chain = example7_chain();
        assert!(chain.permute_negate(&[0, 1, 2], 0, false).is_err());
        assert!(chain.permute_negate(&[0, 1, 2, 2], 0, false).is_err());
        assert!(chain.permute_negate(&[0, 1, 2, 9], 0, false).is_err());
    }

    #[test]
    fn flip_operand_semantics() {
        // AND with first operand flipped: σ(a,b) = ¬a & b = 0x4.
        assert_eq!(super::flip_operand(0x8, 0), 0x4);
        // AND with second operand flipped: a & ¬b = 0x2.
        assert_eq!(super::flip_operand(0x8, 1), 0x2);
        // Double flip restores.
        assert_eq!(super::flip_operand(super::flip_operand(0x6, 0), 0), 0x6);
    }

    #[test]
    fn simulate_eight_input_chain() {
        let mut chain = Chain::new(8);
        let mut prev = 0usize;
        for i in 1..8 {
            prev = chain.add_gate(prev, i, 0x6).unwrap();
        }
        chain.add_output(OutputRef::signal(prev));
        let out = chain.simulate_outputs().unwrap();
        // Parity of eight inputs.
        let parity = TruthTable::from_fn(8, |a| a.iter().fold(false, |acc, &b| acc ^ b)).unwrap();
        assert_eq!(out[0], parity);
    }
}
