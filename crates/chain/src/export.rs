//! Netlist exports: Graphviz DOT and structural Verilog.
//!
//! Synthesized chains are 2-LUT networks; these exports make them
//! consumable by standard viewers and downstream flows. Each gate is
//! emitted as its explicit sum-of-products over the two fanins, so the
//! Verilog is tool-neutral (no LUT primitives required).

use std::fmt::Write as _;

use crate::{Chain, OutputRef};

impl Chain {
    /// Renders the chain as a Graphviz DOT digraph (inputs as boxes,
    /// gates as ellipses labelled with their hex truth table, outputs as
    /// double circles).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=BT;");
        for i in 0..self.num_inputs() {
            let _ = writeln!(out, "  s{i} [shape=box, label=\"x{}\"];", i + 1);
        }
        for (g, gate) in self.gates().iter().enumerate() {
            let idx = self.num_inputs() + g;
            let _ = writeln!(
                out,
                "  s{idx} [shape=ellipse, label=\"x{} = 0x{:x}\"];",
                idx + 1,
                gate.tt2
            );
            let _ = writeln!(out, "  s{} -> s{idx};", gate.fanin[0]);
            let _ = writeln!(out, "  s{} -> s{idx};", gate.fanin[1]);
        }
        for (k, tap) in self.outputs().iter().enumerate() {
            let _ = writeln!(out, "  f{k} [shape=doublecircle, label=\"f{}\"];", k + 1);
            match tap {
                OutputRef::Signal { index, negated } => {
                    let style = if *negated { " [style=dashed]" } else { "" };
                    let _ = writeln!(out, "  s{index} -> f{k}{style};");
                }
                OutputRef::Constant(v) => {
                    let _ = writeln!(out, "  c{k} [shape=box, label=\"{}\"];", *v as u8);
                    let _ = writeln!(out, "  c{k} -> f{k};");
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Renders the chain as structural Verilog with one `assign` per
    /// gate (explicit sum-of-products of the 4-bit LUT).
    pub fn to_verilog(&self, module: &str) -> String {
        let mut out = String::new();
        let inputs: Vec<String> = (0..self.num_inputs()).map(|i| format!("x{}", i + 1)).collect();
        let outputs: Vec<String> =
            (0..self.outputs().len()).map(|k| format!("f{}", k + 1)).collect();
        let _ = writeln!(out, "module {module}({}, {});", inputs.join(", "), outputs.join(", "));
        let _ = writeln!(out, "  input {};", inputs.join(", "));
        let _ = writeln!(out, "  output {};", outputs.join(", "));
        let signal = |s: usize| {
            if s < self.num_inputs() {
                format!("x{}", s + 1)
            } else {
                format!("w{}", s + 1)
            }
        };
        for (g, gate) in self.gates().iter().enumerate() {
            let idx = self.num_inputs() + g;
            let _ = writeln!(out, "  wire w{};", idx + 1);
            let a = signal(gate.fanin[0]);
            let b = signal(gate.fanin[1]);
            let mut terms = Vec::new();
            for (av, bv) in [(0u8, 0u8), (1, 0), (0, 1), (1, 1)] {
                if (gate.tt2 >> (av + 2 * bv)) & 1 == 1 {
                    let ta = if av == 1 { a.clone() } else { format!("~{a}") };
                    let tb = if bv == 1 { b.clone() } else { format!("~{b}") };
                    terms.push(format!("({ta} & {tb})"));
                }
            }
            let expr = if terms.is_empty() { "1'b0".to_string() } else { terms.join(" | ") };
            let _ = writeln!(out, "  assign w{} = {expr};", idx + 1);
        }
        for (k, tap) in self.outputs().iter().enumerate() {
            let rhs = match tap {
                OutputRef::Signal { index, negated } => {
                    let s = signal(*index);
                    if *negated {
                        format!("~{s}")
                    } else {
                        s
                    }
                }
                OutputRef::Constant(v) => format!("1'b{}", *v as u8),
            };
            let _ = writeln!(out, "  assign f{} = {rhs};", k + 1);
        }
        let _ = writeln!(out, "endmodule");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_tt::TruthTable;

    fn example7_chain() -> Chain {
        let mut chain = Chain::new(4);
        let x5 = chain.add_gate(2, 3, 0x6).unwrap();
        let x6 = chain.add_gate(0, 1, 0x8).unwrap();
        let x7 = chain.add_gate(x5, x6, 0xe).unwrap();
        chain.add_output(OutputRef::signal(x7));
        chain
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dot = example7_chain().to_dot("example7");
        assert!(dot.contains("digraph example7"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("0x6"));
        assert!(dot.contains("s4 -> s6") || dot.contains("s4 -> s5"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn dot_negated_output_is_dashed() {
        let mut chain = Chain::new(2);
        let g = chain.add_gate(0, 1, 0x8).unwrap();
        chain.add_output(OutputRef::negated_signal(g));
        assert!(chain.to_dot("t").contains("style=dashed"));
    }

    #[test]
    fn verilog_structure() {
        let v = example7_chain().to_verilog("example7");
        assert!(v.starts_with("module example7(x1, x2, x3, x4, f1);"));
        assert!(v.contains("wire w5;"));
        assert!(v.contains("assign f1 = w7;"));
        assert!(v.trim_end().ends_with("endmodule"));
        // XOR gate: two product terms.
        assert!(v.contains("assign w5 = (x3 & ~x4) | (~x3 & x4);"));
    }

    #[test]
    fn verilog_semantics_spot_check() {
        // Evaluate the generated SOP mentally for AND: single term.
        let mut chain = Chain::new(2);
        let g = chain.add_gate(0, 1, 0x8).unwrap();
        chain.add_output(OutputRef::signal(g));
        let v = chain.to_verilog("and2");
        assert!(v.contains("assign w3 = (x1 & x2);"));
        // And the chain still simulates correctly.
        assert_eq!(chain.simulate_outputs().unwrap()[0], TruthTable::from_hex(2, "8").unwrap());
    }

    #[test]
    fn constant_output_verilog() {
        let mut chain = Chain::new(1);
        chain.add_output(OutputRef::Constant(true));
        assert!(chain.to_verilog("k").contains("assign f1 = 1'b1;"));
    }
}
