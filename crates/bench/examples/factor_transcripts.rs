//! Dumps the full solution transcript (gate count + every chain, in
//! order) for the NPN4 classes and the quick-profile FDSD6 suite —
//! the byte-equivalence artifact used when changing the factorization
//! engine. Run with `--jobs <n>` to exercise the parallel scheduler.

use stp_bench::{fdsd, npn4};
use stp_synth::{synthesize, SynthesisConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            if let Some(v) = it.next() {
                jobs = v.parse().unwrap_or(1);
            }
        }
    }
    let config = SynthesisConfig { jobs, ..SynthesisConfig::default() };
    for suite in [npn4(), fdsd(6, 40, 6)] {
        for spec in &suite.functions {
            let result = synthesize(spec, &config).expect("suite instance must solve");
            println!("== {} {spec} gates={}", suite.name, result.gate_count);
            for chain in &result.chains {
                print!("{chain}");
            }
        }
    }
}
