//! The Table I measurement harness.
//!
//! Runs each algorithm (BMS / FEN / ABC-like / STP) over a suite with a
//! per-instance wall-clock timeout and aggregates the quantities the
//! paper reports: mean solve time over solved instances, the number of
//! timeouts (`#t/o`), the number solved (`#ok`), and — for STP — the
//! per-solution mean time and the average solution count. Failures are
//! split into timeouts and hard errors ([`InstanceFailure`]); only the
//! former land in the `#t/o` column.
//!
//! Suites run through the two-level scheduler
//! ([`stp_synth::run_instances`]): the instance-level pool distributes
//! whole specs across workers, each worker's synthesis nests the
//! shape-level pool, and one global `jobs` budget covers both levels.
//! Results are merged in instance-index order, so the rendered table,
//! the per-instance transcript, and the summed counter totals are
//! identical to the sequential loop at any jobs count (counters are
//! attributed per instance with [`stp_telemetry::CounterScope`], not
//! global snapshot deltas, so concurrent instances cannot bleed into
//! each other). One caveat: when a shared store coalesces duplicate NPN
//! classes at `jobs > 1`, the solve's counters land on whichever
//! duplicate won the race — per-instance attribution shifts, suite
//! totals do not.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use stp_baselines::{
    abc_synthesize, bms_synthesize, fen_synthesize, BaselineConfig, BaselineError,
};
use stp_chain::Chain;
use stp_store::Store;
use stp_synth::{
    synthesize, synthesize_npn_with_store, JobBudget, SynthesisConfig, SynthesisError,
};
use stp_tt::TruthTable;

use crate::suites::Suite;

/// The four algorithms of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Busy Man's Synthesis (single-solver SSV encoding).
    Bms,
    /// Fence enumeration with topological constraints.
    Fen,
    /// CEGAR minterm refinement (the ABC-like reference).
    Abc,
    /// The paper's STP-based engine.
    Stp,
}

impl Algorithm {
    /// All four, in the paper's column order.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Bms, Algorithm::Fen, Algorithm::Abc, Algorithm::Stp];

    /// Column label used in the rendered table.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Bms => "BMS",
            Algorithm::Fen => "FEN",
            Algorithm::Abc => "ABC",
            Algorithm::Stp => "STP",
        }
    }
}

/// Why an instance went unsolved — the split behind Table I's `#t/o`
/// column versus the error tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceFailure {
    /// The per-instance wall-clock budget expired (counted in `#t/o`).
    Timeout,
    /// The engine failed for a non-budget reason — gate-limit
    /// exhaustion, an internal error, or a panicking worker. Counted as
    /// an error, never as a timeout: a crash must not masquerade as a
    /// budget problem.
    Error(String),
}

/// Outcome of one (algorithm, instance) run.
#[derive(Debug, Clone)]
pub struct InstanceOutcome {
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Optimum gate count, when solved.
    pub gate_count: Option<usize>,
    /// Number of optimum solutions found (1 for the CNF baselines; the
    /// full solution-set size for STP).
    pub num_solutions: usize,
    /// Whether the instance was solved before the timeout.
    pub solved: bool,
    /// Why the instance went unsolved (`None` iff `solved`).
    pub failure: Option<InstanceFailure>,
    /// The optimum chains found (every optimum for STP, the single
    /// solution for the CNF baselines, empty when unsolved) — the
    /// basis of suite-level determinism transcripts.
    pub chains: Vec<Chain>,
    /// Telemetry counters attributable to this run: everything recorded
    /// on this thread (and its shape workers) while the instance ran,
    /// captured with [`stp_telemetry::CounterScope`] so concurrent
    /// instances do not observe each other's work.
    pub counters: BTreeMap<String, u64>,
}

impl InstanceOutcome {
    /// An error-slot outcome for an instance whose task never produced
    /// a result (e.g. the worker panicked at the pool boundary).
    fn error_slot(message: String) -> InstanceOutcome {
        InstanceOutcome {
            elapsed: Duration::ZERO,
            gate_count: None,
            num_solutions: 0,
            solved: false,
            failure: Some(InstanceFailure::Error(message)),
            chains: Vec::new(),
            counters: BTreeMap::new(),
        }
    }
}

/// Runs one instance under a timeout.
///
/// `jobs` is the STP engine's worker-thread knob (`0` = one per CPU,
/// `1` = sequential); the CNF baselines are single-threaded and ignore
/// it. Gate limits and other failures are folded into `solved = false`,
/// as a bench harness should never abort the whole table on one
/// instance.
pub fn run_instance(
    algorithm: Algorithm,
    spec: &TruthTable,
    timeout: Duration,
    jobs: usize,
) -> InstanceOutcome {
    run_instance_with_store(algorithm, spec, timeout, jobs, None)
}

/// [`run_instance`] with an optional shared NPN solution store.
///
/// With `Some(store)` the STP engine routes through
/// [`synthesize_npn_with_store`]: repeated (or pre-warmed) NPN classes
/// answer from the store instead of re-running the search. The CNF
/// baselines never use the store — their columns measure raw solver
/// time.
pub fn run_instance_with_store(
    algorithm: Algorithm,
    spec: &TruthTable,
    timeout: Duration,
    jobs: usize,
    store: Option<&Store>,
) -> InstanceOutcome {
    let scope = stp_telemetry::CounterScope::enter();
    let start = Instant::now();
    let deadline = Some(start + timeout);
    let (gate_count, num_solutions, chains, failure) = match algorithm {
        Algorithm::Stp => {
            let config = SynthesisConfig { deadline, jobs, ..SynthesisConfig::default() };
            let result = match store {
                Some(store) => synthesize_npn_with_store(spec, &config, store),
                None => synthesize(spec, &config),
            };
            match result {
                Ok(result) => (Some(result.gate_count), result.chains.len(), result.chains, None),
                Err(SynthesisError::Timeout) => {
                    (None, 0, Vec::new(), Some(InstanceFailure::Timeout))
                }
                Err(e) => (None, 0, Vec::new(), Some(InstanceFailure::Error(e.to_string()))),
            }
        }
        baseline => {
            let config = BaselineConfig { deadline, ..BaselineConfig::default() };
            let result = match baseline {
                Algorithm::Bms => bms_synthesize(spec, &config),
                Algorithm::Fen => fen_synthesize(spec, &config),
                Algorithm::Abc => abc_synthesize(spec, &config),
                Algorithm::Stp => unreachable!("handled above"),
            };
            match result {
                Ok(r) => (Some(r.gate_count), 1, vec![r.chain], None),
                Err(BaselineError::Timeout) => {
                    (None, 0, Vec::new(), Some(InstanceFailure::Timeout))
                }
                Err(e) => (None, 0, Vec::new(), Some(InstanceFailure::Error(e.to_string()))),
            }
        }
    };
    let elapsed = start.elapsed();
    let counters = scope.finish();
    InstanceOutcome {
        elapsed,
        gate_count,
        num_solutions,
        solved: failure.is_none(),
        failure,
        chains,
        counters,
    }
}

/// A budget-escalation ladder for instances that exhaust their
/// timeout: each rung is offered in order until one solves (or the
/// ladder runs out).
///
/// The ladder composes with the store's negative cache: a class
/// recorded as [`stp_store::Entry::Exhausted`] at budget `b` is only
/// re-attempted by a rung *strictly greater* than `b`, so doubling
/// rungs each re-run the search exactly once instead of replaying
/// failed budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// The per-attempt wall-clock budgets, offered in order. Never
    /// empty (see [`RetryPolicy::escalating`]).
    pub budgets: Vec<Duration>,
}

impl RetryPolicy {
    /// A single attempt at `timeout` — the no-retry baseline.
    pub fn single(timeout: Duration) -> RetryPolicy {
        RetryPolicy { budgets: vec![timeout] }
    }

    /// A doubling ladder: `attempts` rungs starting at `base`
    /// (`[t, 2t, 4t, …]`), clamped to at least one rung.
    pub fn escalating(base: Duration, attempts: usize) -> RetryPolicy {
        let budgets =
            (0..attempts.max(1)).map(|i| base.saturating_mul(1u32 << i.min(31))).collect();
        RetryPolicy { budgets }
    }
}

/// [`run_instance_with_store`] under a [`RetryPolicy`]: rungs are
/// offered in order until one solves. The reported outcome carries the
/// *cumulative* elapsed time over every attempt (the cost actually
/// paid) but the **last attempt's** counters — summing over failed
/// attempts would make `factor.candidates` etc. describe work the
/// reported solve never did. When more than one rung actually ran, the
/// cumulative sums are still available under the `bench.retry.`
/// prefix (e.g. `bench.retry.solver.queries`), alongside
/// `bench.retry.attempts`.
pub fn run_instance_with_retry(
    algorithm: Algorithm,
    spec: &TruthTable,
    policy: &RetryPolicy,
    jobs: usize,
    store: Option<&Store>,
) -> InstanceOutcome {
    let mut elapsed = Duration::ZERO;
    let mut cumulative: BTreeMap<String, u64> = BTreeMap::new();
    let mut attempts_run = 0usize;
    let mut last: Option<InstanceOutcome> = None;
    for (attempt, &budget) in policy.budgets.iter().enumerate() {
        if attempt > 0 {
            stp_telemetry::counter!("bench.retry_attempts").inc();
        }
        attempts_run += 1;
        let outcome = run_instance_with_store(algorithm, spec, budget, jobs, store);
        elapsed += outcome.elapsed;
        for (name, delta) in &outcome.counters {
            *cumulative.entry(name.clone()).or_insert(0) += delta;
        }
        let solved = outcome.solved;
        last = Some(outcome);
        if solved {
            if attempt > 0 {
                stp_telemetry::counter!("bench.retry_rescues").inc();
            }
            break;
        }
    }
    let mut outcome = last.expect("RetryPolicy budgets are never empty");
    outcome.elapsed = elapsed;
    if attempts_run > 1 {
        let retry: Vec<(String, u64)> =
            cumulative.into_iter().map(|(name, v)| (format!("bench.retry.{name}"), v)).collect();
        outcome.counters.extend(retry);
        outcome.counters.insert("bench.retry.attempts".to_string(), attempts_run as u64);
    }
    outcome
}

/// Aggregated results of one algorithm over one suite — one cell group
/// of Table I.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// Suite name.
    pub suite: &'static str,
    /// Mean solve time over *solved* instances (the paper's `mean`).
    pub mean_time: Duration,
    /// Number of instances hitting the timeout (`#t/o`).
    pub timeouts: usize,
    /// Number of instances failing for a non-budget reason
    /// ([`InstanceFailure::Error`]) — kept out of `#t/o` so a crash
    /// cannot masquerade as a budget problem.
    pub errors: usize,
    /// Number of solved instances (`#ok`).
    pub solved: usize,
    /// Total time over solved instances (basis of the STP `Total`
    /// column).
    pub total_time: Duration,
    /// Average number of solutions over solved instances (STP's
    /// `number` column; 1 for the baselines).
    pub mean_solutions: f64,
    /// Optimum gate counts per solved instance (index-aligned with the
    /// suite, `None` for unsolved) — used by the cross-checks.
    pub gate_counts: Vec<Option<usize>>,
    /// Telemetry counters summed over every instance (solved or not).
    pub counters: BTreeMap<String, u64>,
}

impl SuiteReport {
    /// Mean time per solution (the STP `mean` column).
    pub fn mean_time_per_solution(&self) -> Duration {
        if self.mean_solutions > 0.0 && self.solved > 0 {
            Duration::from_secs_f64(self.mean_time.as_secs_f64() / self.mean_solutions)
        } else {
            Duration::ZERO
        }
    }
}

/// Runs one algorithm over a whole suite; `jobs` as in
/// [`run_instance`].
pub fn run_suite(
    algorithm: Algorithm,
    suite: &Suite,
    timeout: Duration,
    jobs: usize,
) -> SuiteReport {
    run_suite_with_store(algorithm, suite, timeout, jobs, None)
}

/// [`run_suite`] with an optional shared NPN solution store (see
/// [`run_instance_with_store`]).
pub fn run_suite_with_store(
    algorithm: Algorithm,
    suite: &Suite,
    timeout: Duration,
    jobs: usize,
    store: Option<&Store>,
) -> SuiteReport {
    run_suite_with_retry(algorithm, suite, &RetryPolicy::single(timeout), jobs, store)
}

/// Runs every instance of a suite through the two-level scheduler and
/// returns the per-instance outcomes in suite order.
///
/// `jobs` is the **single global budget** shared by both scheduler
/// levels: it is split statically between instance-level workers and
/// each worker's nested shape-level pool (see
/// [`stp_synth::run_instances`]), so `jobs = N` never runs more than
/// `N` synthesis threads. The outcome vector is index-aligned with
/// `suite.functions` regardless of which worker ran which instance; an
/// instance whose task panicked yields an
/// [`InstanceFailure::Error`]-slot outcome instead of poisoning the
/// suite.
pub fn run_suite_outcomes(
    algorithm: Algorithm,
    suite: &Suite,
    policy: &RetryPolicy,
    jobs: usize,
    store: Option<&Store>,
) -> Vec<InstanceOutcome> {
    // Suite names are `'static`, so under --profile every suite gets
    // its own subtree (and the synthesis phases nest beneath it) with
    // no per-run label allocation.
    let _suite = stp_telemetry::Span::enter(suite.name);
    let budget = JobBudget::new(jobs);
    let results = stp_synth::run_instances(&budget, suite.functions.len(), |idx, shape_jobs| {
        stp_faultsim::fail_point!("bench.instance", hit = idx as u64 + 1);
        run_instance_with_retry(algorithm, &suite.functions[idx], policy, shape_jobs, store)
    });
    results.into_iter().map(|result| result.unwrap_or_else(InstanceOutcome::error_slot)).collect()
}

/// [`run_suite_with_store`] under a [`RetryPolicy`] (see
/// [`run_instance_with_retry`]).
pub fn run_suite_with_retry(
    algorithm: Algorithm,
    suite: &Suite,
    policy: &RetryPolicy,
    jobs: usize,
    store: Option<&Store>,
) -> SuiteReport {
    let outcomes = run_suite_outcomes(algorithm, suite, policy, jobs, store);
    let mut total = Duration::ZERO;
    let mut timeouts = 0usize;
    let mut errors = 0usize;
    let mut solved = 0usize;
    let mut solutions_sum = 0usize;
    let mut gate_counts = Vec::with_capacity(outcomes.len());
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for outcome in &outcomes {
        if outcome.solved {
            solved += 1;
            total += outcome.elapsed;
            solutions_sum += outcome.num_solutions;
        } else if matches!(outcome.failure, Some(InstanceFailure::Error(_))) {
            errors += 1;
        } else {
            timeouts += 1;
        }
        for (name, delta) in &outcome.counters {
            *counters.entry(name.clone()).or_insert(0) += delta;
        }
        gate_counts.push(outcome.gate_count);
    }
    let mean_time = if solved > 0 { total / (solved as u32) } else { Duration::ZERO };
    let mean_solutions = if solved > 0 { solutions_sum as f64 / solved as f64 } else { 0.0 };
    SuiteReport {
        algorithm,
        suite: suite.name,
        mean_time,
        timeouts,
        errors,
        solved,
        total_time: total,
        mean_solutions,
        gate_counts,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::npn4;

    #[test]
    fn stp_solves_running_example_quickly() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let out = run_instance(Algorithm::Stp, &spec, Duration::from_secs(30), 1);
        assert!(out.solved);
        assert!(out.failure.is_none());
        assert_eq!(out.gate_count, Some(3));
        assert!(out.num_solutions >= 2);
        assert_eq!(out.chains.len(), out.num_solutions);
        // The run must attribute pipeline counters to the instance.
        assert!(out.counters.contains_key("synth.rounds"));
        assert!(out.counters.contains_key("fence.fences_generated"));
    }

    #[test]
    fn all_algorithms_agree_on_easy_instances() {
        for hex in ["8ff8", "6996"] {
            let spec = TruthTable::from_hex(4, hex).unwrap();
            let mut counts = Vec::new();
            for algo in Algorithm::ALL {
                let out = run_instance(algo, &spec, Duration::from_secs(60), 1);
                assert!(out.solved, "{} on {hex}", algo.label());
                counts.push(out.gate_count.unwrap());
            }
            assert!(counts.windows(2).all(|w| w[0] == w[1]), "gate counts {counts:?} on {hex}");
        }
    }

    #[test]
    fn zero_timeout_reports_unsolved() {
        let spec = TruthTable::from_hex(4, "1ee1").unwrap();
        let out = run_instance(Algorithm::Stp, &spec, Duration::ZERO, 1);
        assert!(!out.solved);
        assert_eq!(out.gate_count, None);
        // A budget expiry is a timeout, never an error.
        assert_eq!(out.failure, Some(InstanceFailure::Timeout));
        assert!(out.chains.is_empty());
    }

    #[test]
    fn retry_policy_ladders_double() {
        let p = RetryPolicy::escalating(Duration::from_millis(10), 3);
        assert_eq!(
            p.budgets,
            vec![Duration::from_millis(10), Duration::from_millis(20), Duration::from_millis(40)]
        );
        assert_eq!(RetryPolicy::escalating(Duration::from_secs(1), 0).budgets.len(), 1);
    }

    #[test]
    fn retry_rescues_an_instance_past_an_exhausted_budget() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let store = Store::new();
        // Rung 1 (zero budget) fails and is cached as exhausted; rung 2
        // is strictly richer, so the store re-attempts and solves.
        let policy = RetryPolicy { budgets: vec![Duration::ZERO, Duration::from_secs(30)] };
        let out = run_instance_with_retry(Algorithm::Stp, &spec, &policy, 1, Some(&store));
        assert!(out.solved, "the richer rung must rescue the instance");
        assert_eq!(out.gate_count, Some(3));
        // The exhausted entry was upgraded, not duplicated.
        assert_eq!(store.len(), 1);
        // The headline counters describe the *last* attempt only; the
        // cumulative sums over both attempts live under bench.retry.*.
        assert_eq!(out.counters.get("bench.retry.attempts"), Some(&2));
        let last = *out.counters.get("solver.queries").unwrap_or(&0);
        let cumulative = *out.counters.get("bench.retry.solver.queries").unwrap_or(&0);
        assert!(last > 0, "the solving attempt must have queried the solver");
        assert!(
            cumulative >= last,
            "cumulative retry counters ({cumulative}) must cover the last attempt ({last})"
        );
    }

    #[test]
    fn single_attempt_runs_carry_no_retry_counters() {
        let spec = TruthTable::from_hex(4, "8ff8").unwrap();
        let policy = RetryPolicy::single(Duration::from_secs(30));
        let out = run_instance_with_retry(Algorithm::Stp, &spec, &policy, 1, None);
        assert!(out.solved);
        assert!(
            !out.counters.keys().any(|k| k.starts_with("bench.retry.")),
            "a one-attempt run must not grow a retry section: {:?}",
            out.counters.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn suite_report_aggregates() {
        let mut suite = npn4();
        suite.functions.truncate(10);
        let report = run_suite(Algorithm::Stp, &suite, Duration::from_secs(20), 1);
        assert_eq!(report.solved + report.timeouts + report.errors, 10);
        assert_eq!(report.errors, 0, "a healthy suite must report no errors");
        assert_eq!(report.gate_counts.len(), 10);
        assert!(report.solved > 0);
        assert!(report.mean_solutions >= 1.0);
        assert!(*report.counters.get("solver.queries").unwrap_or(&0) > 0);
    }
}
