//! Rendering of the Table I reproduction.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::harness::{Algorithm, SuiteReport};

fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Renders the collected reports in the layout of the paper's Table I:
/// one row per suite; `mean(s) / #t/o / #ok` for BMS, FEN and ABC;
/// `Total(s) / mean(s) / #t/o / #ok / number` for STP.
///
/// `reports` must contain one entry per (suite, algorithm) pair; rows
/// appear in first-seen suite order.
///
/// Hard errors (instances failing for a non-budget reason) never count
/// toward `#t/o` — the table's column shape matches the paper, so any
/// cell with errors is flagged in footnote lines appended after the
/// table instead.
pub fn render_table(reports: &[SuiteReport]) -> String {
    let mut suites: Vec<&'static str> = Vec::new();
    let mut index: HashMap<(&'static str, Algorithm), &SuiteReport> = HashMap::new();
    for r in reports {
        if !suites.contains(&r.suite) {
            suites.push(r.suite);
        }
        index.insert((r.suite, r.algorithm), r);
    }
    let mut out = String::new();
    let _ = writeln!(out, "TABLE I: Experimental Results (reproduction)");
    let _ = writeln!(
        out,
        "{:<9}| {:>9} {:>6} {:>6} | {:>9} {:>6} {:>6} | {:>9} {:>6} {:>6} | {:>9} {:>9} {:>6} {:>6} {:>7}",
        "", "BMS", "", "", "FEN", "", "", "ABC", "", "", "STP", "", "", "", ""
    );
    let _ = writeln!(
        out,
        "{:<9}| {:>9} {:>6} {:>6} | {:>9} {:>6} {:>6} | {:>9} {:>6} {:>6} | {:>9} {:>9} {:>6} {:>6} {:>7}",
        "Functions",
        "mean(s)", "#t/o", "#ok",
        "mean(s)", "#t/o", "#ok",
        "mean(s)", "#t/o", "#ok",
        "Total(s)", "mean(s)", "#t/o", "#ok", "number"
    );
    for suite in &suites {
        let cell = |algo: Algorithm| index.get(&(*suite, algo));
        let mut row = format!("{suite:<9}|");
        for algo in [Algorithm::Bms, Algorithm::Fen, Algorithm::Abc] {
            match cell(algo) {
                Some(r) => {
                    let _ = write!(
                        row,
                        " {:>9} {:>6} {:>6} |",
                        secs(r.mean_time),
                        r.timeouts,
                        r.solved
                    );
                }
                None => {
                    let _ = write!(row, " {:>9} {:>6} {:>6} |", "-", "-", "-");
                }
            }
        }
        match cell(Algorithm::Stp) {
            Some(r) => {
                let _ = write!(
                    row,
                    " {:>9} {:>9} {:>6} {:>6} {:>7.1}",
                    secs(r.mean_time),
                    secs(r.mean_time_per_solution()),
                    r.timeouts,
                    r.solved,
                    r.mean_solutions
                );
            }
            None => {
                let _ = write!(row, " {:>9} {:>9} {:>6} {:>6} {:>7}", "-", "-", "-", "-", "-");
            }
        }
        let _ = writeln!(out, "{row}");
    }
    for r in reports {
        if r.errors > 0 {
            let _ = writeln!(
                out,
                "note: {} on {}: {} instance(s) errored (excluded from #t/o)",
                r.algorithm.label(),
                r.suite,
                r.errors
            );
        }
    }
    out
}

/// Renders the telemetry counters aggregated per (suite, algorithm) —
/// the per-instance deltas summed by [`run_suite`](crate::run_suite).
///
/// Rows with no recorded counters are skipped; an all-empty input
/// yields a placeholder line so callers can print unconditionally.
pub fn render_counters(reports: &[SuiteReport]) -> String {
    let mut out = String::new();
    for r in reports {
        if r.counters.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{} on {}:", r.algorithm.label(), r.suite);
        for (name, value) in &r.counters {
            let _ = writeln!(out, "  {name:<32} {value:>12}");
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry counters recorded)\n");
    }
    out
}

/// Renders the headline comparisons the paper derives from Table I: the
/// speedup of STP over each baseline (ratio of mean solve times, best
/// across suites) and the timeout reduction on the suite with the most
/// baseline timeouts.
pub fn render_headlines(reports: &[SuiteReport]) -> String {
    let mut out = String::new();
    let stp: HashMap<&'static str, &SuiteReport> =
        reports.iter().filter(|r| r.algorithm == Algorithm::Stp).map(|r| (r.suite, r)).collect();
    for algo in [Algorithm::Bms, Algorithm::Fen, Algorithm::Abc] {
        let mut best: Option<(&'static str, f64)> = None;
        let mut timeout_cut: Option<(&'static str, usize, usize)> = None;
        for r in reports.iter().filter(|r| r.algorithm == algo) {
            if let Some(s) = stp.get(r.suite) {
                if r.solved > 0 && s.solved > 0 && s.mean_time.as_secs_f64() > 0.0 {
                    let speedup = r.mean_time.as_secs_f64() / s.mean_time.as_secs_f64();
                    if best.is_none_or(|(_, b)| speedup > b) {
                        best = Some((r.suite, speedup));
                    }
                }
                if r.timeouts > 0 && s.timeouts < r.timeouts {
                    let better = timeout_cut.is_none_or(|(_, base, _)| r.timeouts > base);
                    if better {
                        timeout_cut = Some((r.suite, r.timeouts, s.timeouts));
                    }
                }
            }
        }
        if let Some((suite, speedup)) = best {
            let _ = writeln!(
                out,
                "STP vs {}: best mean-time speedup {speedup:.1}x (suite {suite})",
                algo.label()
            );
        }
        if let Some((suite, base, stp_t)) = timeout_cut {
            let pct = 100.0 * (base - stp_t) as f64 / base as f64;
            let _ = writeln!(
                out,
                "STP vs {}: timeouts {base} -> {stp_t} on {suite} ({pct:.0}% fewer)",
                algo.label()
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no comparable suite data)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(
        suite: &'static str,
        algorithm: Algorithm,
        mean_ms: u64,
        timeouts: usize,
        solved: usize,
        mean_solutions: f64,
    ) -> SuiteReport {
        SuiteReport {
            algorithm,
            suite,
            mean_time: Duration::from_millis(mean_ms),
            timeouts,
            errors: 0,
            solved,
            total_time: Duration::from_millis(mean_ms * solved as u64),
            mean_solutions,
            gate_counts: Vec::new(),
            counters: Default::default(),
        }
    }

    #[test]
    fn table_layout_contains_all_cells() {
        let reports = vec![
            fake_report("NPN4", Algorithm::Bms, 235, 0, 222, 1.0),
            fake_report("NPN4", Algorithm::Fen, 208, 0, 222, 1.0),
            fake_report("NPN4", Algorithm::Abc, 167, 0, 222, 1.0),
            fake_report("NPN4", Algorithm::Stp, 136, 0, 222, 24.0),
        ];
        let table = render_table(&reports);
        assert!(table.contains("NPN4"));
        assert!(table.contains("0.235"));
        assert!(table.contains("222"));
        assert!(table.contains("24.0"));
    }

    #[test]
    fn errored_cells_footnote_without_reshaping_the_table() {
        let clean = vec![fake_report("NPN4", Algorithm::Stp, 136, 0, 222, 24.0)];
        let clean_table = render_table(&clean);
        assert!(!clean_table.contains("errored"));
        let mut broken = fake_report("NPN4", Algorithm::Stp, 136, 1, 219, 24.0);
        broken.errors = 2;
        let table = render_table(&[broken]);
        // Same column layout as the clean table…
        assert_eq!(table.lines().next(), clean_table.lines().next());
        assert!(table.lines().any(|l| l.starts_with("NPN4")));
        // …with the errors surfaced as a footnote, not folded into #t/o.
        assert!(table.contains("note: STP on NPN4: 2 instance(s) errored (excluded from #t/o)"));
    }

    #[test]
    fn missing_cells_render_dashes() {
        let reports = vec![fake_report("PDSD8", Algorithm::Stp, 100, 9, 91, 192.0)];
        let table = render_table(&reports);
        assert!(table.contains('-'));
        assert!(table.contains("192.0"));
    }

    #[test]
    fn counters_render_per_cell() {
        let mut with = fake_report("NPN4", Algorithm::Stp, 136, 0, 222, 24.0);
        with.counters.insert("synth.rounds".to_string(), 700);
        with.counters.insert("solver.queries".to_string(), 5000);
        let text = render_counters(&[with]);
        assert!(text.contains("STP on NPN4:"));
        assert!(text.contains("synth.rounds"));
        assert!(text.contains("5000"));
        let empty = render_counters(&[fake_report("NPN4", Algorithm::Bms, 1, 0, 1, 1.0)]);
        assert!(empty.contains("no telemetry counters"));
    }

    #[test]
    fn headlines_report_speedup_and_timeout_cut() {
        let reports = vec![
            fake_report("FDSD8", Algorithm::Bms, 10602, 0, 100, 1.0),
            fake_report("FDSD8", Algorithm::Stp, 47, 0, 100, 48.0),
            fake_report("PDSD8", Algorithm::Bms, 189935, 14, 86, 1.0),
            fake_report("PDSD8", Algorithm::Stp, 117475, 9, 91, 192.0),
        ];
        let text = render_headlines(&reports);
        assert!(text.contains("STP vs BMS"));
        assert!(text.contains("speedup"));
        assert!(text.contains("14 -> 9"));
    }
}
