//! Workload suites and the Table I regeneration harness.
//!
//! This crate regenerates the evaluation of *"Exact Synthesis Based on
//! Semi-Tensor Product Circuit Solver"* (Pan & Chu, DATE 2023):
//!
//! * [`suites`] — the five function suites of §IV (NPN4, FDSD6, FDSD8,
//!   PDSD6, PDSD8);
//! * [`harness`] — per-instance timeout measurement of the four
//!   algorithms (BMS, FEN, ABC-like, STP);
//! * [`report`] — the Table I renderer and the headline
//!   speedup/timeout-reduction summary.
//!
//! Binaries:
//!
//! * `table1` — regenerates Table I (`--full` for paper-scale counts);
//! * `fence_census` — prints the fence families of Fig. 2 and the DAG
//!   families of Fig. 3;
//! * `factor_bench` — the factorization perf baseline
//!   (`BENCH_factor.json`);
//! * `mo_bench` — the multi-output shared-synthesis baseline
//!   (`BENCH_mo.json`, see [`mo`]);
//! * `stpprof` — profile rendering/diffing and the baseline drift
//!   verdict (see [`profdiff`]).
//!
//! Criterion benches cover the Table I suites, fence enumeration, the
//! STP kernels, and the two design-choice ablations from `DESIGN.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod mo;
pub mod profdiff;
pub mod report;
pub mod suites;

pub use harness::{
    run_instance, run_instance_with_retry, run_instance_with_store, run_suite, run_suite_outcomes,
    run_suite_with_retry, run_suite_with_store, Algorithm, InstanceFailure, InstanceOutcome,
    RetryPolicy, SuiteReport,
};
pub use profdiff::{bench_drift, diff, load_profile, render_diff, DiffRow, DriftReport, DriftRow};
pub use report::{render_counters, render_headlines, render_table};
pub use suites::{fdsd, npn4, pdsd, standard_suites, wide, Scale, Suite};
