//! Multi-output shared-synthesis baseline workloads (`BENCH_mo.json`).
//!
//! One fixed slice of multi-output specs is synthesized as shared
//! chains ([`stp_synth::synthesize_multi`]) and one 2-output cut cone
//! is rewritten jointly ([`stp_network::rewrite`] with
//! `multi_output: true`). The `mo_bench` binary records the results in
//! `BENCH_mo.json` at the repo root; the `mo_baseline` integration test
//! re-measures the same slice at `jobs = 1` and `jobs = 4` and fails on
//! any drift in the deterministic fields (gate totals, shared-node
//! savings, replacement counts — wall-clock is informational).

use std::time::{Duration, Instant};

use stp_network::{rewrite, Network, RewriteConfig, SynthesisCache};
use stp_synth::{synthesize_multi, GateCountObjective, MultiSpec, SynthesisConfig};
use stp_tt::TruthTable;

/// One multi-output workload: `k` hex truth tables over a common
/// support, synthesized as a single shared chain.
pub struct MoCase {
    /// Stable case name, the join key against the committed baseline.
    pub name: &'static str,
    /// Common input arity of every output.
    pub num_vars: usize,
    /// Hex truth tables, one per output.
    pub specs: &'static [&'static str],
}

/// The committed multi-output slice: small enough to re-run in CI at
/// two jobs counts, varied enough to pin zero-, one- and two-gate
/// sharing wins across 2-, 3- and 4-input supports.
pub const MO_CASES: &[MoCase] = &[
    MoCase { name: "xor-and", num_vars: 2, specs: &["6", "8"] },
    MoCase { name: "full-adder", num_vars: 3, specs: &["96", "e8"] },
    MoCase { name: "parity-pair", num_vars: 3, specs: &["96", "69"] },
    MoCase { name: "full-adder-triple", num_vars: 3, specs: &["96", "e8", "80"] },
    MoCase { name: "example7-parity4", num_vars: 4, specs: &["8ff8", "6996"] },
];

/// The deterministic outcome of one [`MoCase`]: everything but `wall`
/// must reproduce exactly at any jobs count.
pub struct MoMeasurement {
    /// Gates in the shared chain.
    pub shared_gates: usize,
    /// Optimum gate count of each output synthesized alone.
    pub per_output_gates: Vec<usize>,
    /// Per-output sum minus shared gates.
    pub gates_saved: usize,
    /// Solution combinations scored by the shared merge.
    pub combinations_tried: usize,
    /// Wall-clock of the shared synthesis (machine-dependent).
    pub wall: Duration,
}

/// Synthesizes `case` as one shared chain under the gate-count
/// objective. Panics on any synthesis failure — baseline workloads are
/// sized to finish well inside `timeout`.
pub fn measure_case(case: &MoCase, timeout: Duration, jobs: usize) -> MoMeasurement {
    let specs: Vec<TruthTable> = case
        .specs
        .iter()
        .map(|hex| {
            TruthTable::from_hex(case.num_vars, hex)
                .unwrap_or_else(|e| panic!("case {}: bad spec {hex}: {e}", case.name))
        })
        .collect();
    let multi =
        MultiSpec::new(specs).unwrap_or_else(|e| panic!("case {}: bad spec set: {e}", case.name));
    let config = SynthesisConfig {
        deadline: Some(Instant::now() + timeout),
        jobs,
        ..SynthesisConfig::default()
    };
    let start = Instant::now();
    let result = synthesize_multi(&multi, &GateCountObjective, &config)
        .unwrap_or_else(|e| panic!("case {}: synthesis failed: {e}", case.name));
    MoMeasurement {
        shared_gates: result.chain.num_gates(),
        per_output_gates: result.per_output_gates,
        gates_saved: result.gates_saved,
        combinations_tried: result.combinations_tried,
        wall: start.elapsed(),
    }
}

/// The committed 2-output rewrite case: a full adder built without
/// shared logic (carry in SOP form, so structural hashing cannot
/// pre-share the XOR). Every single-root cone is already optimal —
/// only the joint rewrite of the `{sum, carry}` pair over the shared
/// 3-leaf cut can improve it, from 6 gates to the 5-gate shared chain.
pub fn unshared_full_adder() -> Network {
    let mut net = Network::new(3);
    let (a, b, c) = (net.input(0), net.input(1), net.input(2));
    let x1 = net.xor(a, b).expect("gate");
    let sum = net.xor(x1, c).expect("gate");
    let u = net.and(a, b).expect("gate");
    let v = net.or(a, b).expect("gate");
    let w = net.and(v, c).expect("gate");
    let m = net.or(u, w).expect("gate");
    net.add_output(sum);
    net.add_output(m);
    net
}

/// The deterministic outcome of the rewrite case: everything but
/// `wall` must reproduce exactly at any jobs count.
pub struct RewriteMeasurement {
    /// Live gates before rewriting.
    pub gates_before: usize,
    /// Live gates after single-root rewriting (`multi_output: false`).
    pub gates_single: usize,
    /// Live gates after joint multi-output rewriting.
    pub gates_shared: usize,
    /// Joint (multi-root) replacements applied by the shared run.
    pub mo_replacements: usize,
    /// Wall-clock of both rewrite runs (machine-dependent).
    pub wall: Duration,
}

/// Rewrites [`unshared_full_adder`] twice — single-root only, then
/// with joint multi-output rewriting — and records both gate counts.
/// Panics on rewrite errors or functional drift.
pub fn measure_rewrite(timeout: Duration, jobs: usize) -> RewriteMeasurement {
    let net = unshared_full_adder();
    let before = net.simulate_outputs().expect("simulable");
    let config = |multi_output| RewriteConfig {
        synthesis_budget: timeout,
        jobs,
        multi_output,
        ..RewriteConfig::default()
    };
    let start = Instant::now();
    let single =
        rewrite(&net, &config(false), &SynthesisCache::new()).expect("single-root rewrite");
    let shared = rewrite(&net, &config(true), &SynthesisCache::new()).expect("joint rewrite");
    let wall = start.elapsed();
    for result in [&single, &shared] {
        assert_eq!(
            result.network.simulate_outputs().expect("simulable"),
            before,
            "rewriting must preserve the output functions"
        );
    }
    RewriteMeasurement {
        gates_before: net.live_gate_count(),
        gates_single: single.gates_after,
        gates_shared: shared.gates_after,
        mo_replacements: shared.replacements.iter().filter(|r| r.roots.len() > 1).count(),
        wall,
    }
}
