//! Sharded store-warming farm: emits `BENCH_warm.json`.
//!
//! Usage (parent): `warm --store <path> [--shards <n>] [--jobs <n>]
//!                       [--timeout <secs>] [--retries <n>] [--seed <u64>]
//!                       [--sample5 <n>] [--sample6 <n>] [--out <path>]`
//!
//! The parent draws a seeded, deduplicated sample of NPN5/NPN6 class
//! representatives (fully-DSD functions, the arity-5/6 classes
//! rewriting cuts actually produce), writes a resumable **manifest**
//! (`<store>.manifest`) assigning each class to a shard, and spawns one
//! child OS process per shard. Each child warms its slice into its own
//! journaled shard store (`<store>.shard<i>`) under the escalating
//! retry ladder, then saves an atomic v2 snapshot. The parent folds the
//! shard snapshots with [`Store::merge_files`], saves the single merged
//! v2 snapshot at `--store`, re-answers every manifest class from it
//! (asserting **zero** `store.misses`), and emits a `BENCH_warm.json`
//! document with per-shard wall clock and retry counts.
//!
//! **Crash safety / resume.** The manifest is written once, atomically;
//! re-running the same command after a crash (or a killed shard) reuses
//! it, so the class list and shard assignment never drift mid-farm.
//! Children open their shard stores with [`Store::open`], so classes
//! journaled before a kill are recovered and counted as `cached` — only
//! the lost tail is re-solved. The `warm_farm` integration test pins
//! this with a faultsim kill window (`store.journal.pre_append`).
//!
//! Exit codes: 0 success, 1 warm/merge/verify failure (re-run to
//! resume), 2 usage error.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stp_bench::RetryPolicy;
use stp_store::Store;
use stp_synth::{synthesize_npn_with_store, warm_classes, SynthesisConfig};
use stp_telemetry::Json;
use stp_tt::{canonicalize, random_fdsd, TruthTable};

/// Default sample seed ("WARMFARM" in ASCII, truncated).
const DEFAULT_SEED: u64 = 0x5741_524d_4641_524d;

/// A malformed or missing flag value: report it and exit 2, so scripts
/// can tell usage errors from warm failures (exit 1).
fn flag_error(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Parses the value of a `--flag <value>` pair, failing loudly: a
/// missing or unparsable value is an error, never a silent fallback.
fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>, expects: &str) -> T {
    let Some(raw) = value else {
        flag_error(format!("{flag} expects {expects}"));
    };
    raw.parse().unwrap_or_else(|_| flag_error(format!("{flag} expects {expects}, got `{raw}`")))
}

/// A warm failure (as opposed to a usage error): report and exit 1.
fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

/// The farm parameters shared by the parent and the manifest.
struct Params {
    shards: usize,
    seed: u64,
    sample5: usize,
    sample6: usize,
}

/// One manifest record: a class representative assigned to a shard.
struct ManifestClass {
    shard: usize,
    rep: TruthTable,
}

/// Draws the seeded NPN5/NPN6 sample: fully-DSD random functions,
/// canonicalized and deduplicated into distinct class representatives,
/// assigned to shards round-robin. Deterministic in `params`.
fn sample_classes(params: &Params) -> Vec<ManifestClass> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut reps: Vec<TruthTable> = Vec::new();
    for (num_vars, count) in [(5, params.sample5), (6, params.sample6)] {
        let mut seen = 0usize;
        while seen < count {
            let rep = canonicalize(&random_fdsd(num_vars, &mut rng)).representative;
            if !reps.contains(&rep) {
                reps.push(rep);
                seen += 1;
            }
        }
    }
    reps.into_iter()
        .enumerate()
        .map(|(i, rep)| ManifestClass { shard: i % params.shards, rep })
        .collect()
}

/// Serializes the manifest: a versioned header, the sharding
/// parameters, then one `class <shard> <nvars> <hex>` line per class.
fn render_manifest(params: &Params, classes: &[ManifestClass]) -> String {
    let mut out = String::from("stp-warm-manifest v1\n");
    out.push_str(&format!(
        "params shards={} seed={} sample5={} sample6={}\n",
        params.shards, params.seed, params.sample5, params.sample6
    ));
    for c in classes {
        out.push_str(&format!("class {} {} {}\n", c.shard, c.rep.num_vars(), c.rep.to_hex()));
    }
    out
}

/// Writes the manifest atomically (tmp + fsync + rename), so a crash
/// mid-write can never leave a torn manifest behind for a resume.
fn write_manifest(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("manifest.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(text.as_bytes())?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)
}

/// Parses a manifest back, validating the header and the sharding
/// parameters against the current invocation: resuming with different
/// parameters would silently warm a different class set.
fn parse_manifest(path: &Path, params: &Params) -> Vec<ManifestClass> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read manifest {}: {e}", path.display())));
    let mut lines = text.lines();
    if lines.next() != Some("stp-warm-manifest v1") {
        fail(format!("{}: missing manifest header", path.display()));
    }
    let want = format!(
        "params shards={} seed={} sample5={} sample6={}",
        params.shards, params.seed, params.sample5, params.sample6
    );
    match lines.next() {
        Some(line) if line == want => {}
        Some(line) => flag_error(format!(
            "{}: manifest was written by a different invocation ({line}); \
             re-run with matching flags or delete it to re-sample",
            path.display()
        )),
        None => fail(format!("{}: truncated manifest", path.display())),
    }
    let mut classes = Vec::new();
    for (idx, line) in lines.enumerate() {
        let mut parts = line.split_whitespace();
        let (tag, shard, nvars, hex) = (parts.next(), parts.next(), parts.next(), parts.next());
        let (Some("class"), Some(shard), Some(nvars), Some(hex), None) =
            (tag, shard, nvars, hex, parts.next())
        else {
            fail(format!("{}: bad manifest line {}: `{line}`", path.display(), idx + 3));
        };
        let shard: usize =
            shard.parse().ok().filter(|s| *s < params.shards).unwrap_or_else(|| {
                fail(format!("{}: bad shard on line {}", path.display(), idx + 3))
            });
        let nvars: usize = nvars
            .parse()
            .unwrap_or_else(|_| fail(format!("{}: bad arity on line {}", path.display(), idx + 3)));
        let rep = TruthTable::from_hex(nvars, hex).unwrap_or_else(|e| {
            fail(format!("{}: bad class on line {}: {e:?}", path.display(), idx + 3))
        });
        classes.push(ManifestClass { shard, rep });
    }
    if classes.is_empty() {
        fail(format!("{}: manifest lists no classes", path.display()));
    }
    classes
}

/// The path of shard `i`'s snapshot (its journal is `<path>.journal`).
fn shard_path(store: &str, shard: usize) -> PathBuf {
    PathBuf::from(format!("{store}.shard{shard}"))
}

/// Per-shard stats as printed by the child on stdout (one line) and
/// parsed back by the parent.
#[derive(Default)]
struct ShardStats {
    shard: usize,
    classes: usize,
    solved: usize,
    cached: usize,
    exhausted: usize,
    attempts: usize,
    retries: usize,
    wall_s: f64,
}

/// Child mode: warm this shard's manifest slice into a journaled shard
/// store under the escalating retry ladder, save, and print stats.
fn run_child(
    shard: usize,
    manifest_path: &Path,
    store_path: &Path,
    params: &Params,
    jobs: usize,
    base_timeout: Duration,
    rungs: usize,
) -> ! {
    let start = Instant::now();
    let classes = parse_manifest(manifest_path, params);
    let reps: Vec<TruthTable> =
        classes.into_iter().filter(|c| c.shard == shard).map(|c| c.rep).collect();
    // `Store::open` replays the shard journal, so a shard killed
    // mid-warm resumes with its already-solved classes cached.
    let store = Store::open(store_path)
        .unwrap_or_else(|e| fail(format!("shard {shard}: cannot open shard store: {e}")));
    let config = SynthesisConfig { jobs, ..SynthesisConfig::default() };
    let ladder = RetryPolicy::escalating(base_timeout, rungs);
    let mut stats = ShardStats { shard, classes: reps.len(), ..ShardStats::default() };
    for (attempt, &budget) in ladder.budgets.iter().enumerate() {
        let report = warm_classes(&store, &config, Some(budget), &reps)
            .unwrap_or_else(|e| fail(format!("shard {shard}: warm failed: {e}")));
        stats.attempts = attempt + 1;
        stats.retries = attempt;
        stats.solved += report.solved;
        if attempt == 0 {
            stats.cached = report.cached;
        }
        stats.exhausted = report.exhausted;
        if report.exhausted == 0 {
            break;
        }
    }
    if stats.exhausted > 0 {
        fail(format!(
            "shard {shard}: {} class(es) still exhausted after {} rung(s); \
             re-run with a larger --timeout or more --retries to resume",
            stats.exhausted, stats.attempts
        ));
    }
    store
        .save(store_path)
        .unwrap_or_else(|e| fail(format!("shard {shard}: cannot save shard snapshot: {e}")));
    stats.wall_s = (start.elapsed().as_secs_f64() * 1000.0).round() / 1000.0;
    println!(
        "warm-shard shard={} classes={} solved={} cached={} exhausted={} \
         attempts={} retries={} wall_s={}",
        stats.shard,
        stats.classes,
        stats.solved,
        stats.cached,
        stats.exhausted,
        stats.attempts,
        stats.retries,
        stats.wall_s
    );
    std::process::exit(0);
}

/// Parses the child's `warm-shard key=value…` stats line.
fn parse_stats(stdout: &str, shard: usize) -> ShardStats {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("warm-shard "))
        .unwrap_or_else(|| fail(format!("shard {shard}: no stats line in child output")));
    fn field<T: std::str::FromStr>(shard: usize, pair: &str, value: &str) -> T {
        value.parse().unwrap_or_else(|_| fail(format!("shard {shard}: bad stats value `{pair}`")))
    }
    let mut stats = ShardStats::default();
    for pair in line.trim_start_matches("warm-shard ").split_whitespace() {
        let Some((key, value)) = pair.split_once('=') else {
            fail(format!("shard {shard}: bad stats field `{pair}`"));
        };
        match key {
            "shard" => stats.shard = field(shard, pair, value),
            "classes" => stats.classes = field(shard, pair, value),
            "solved" => stats.solved = field(shard, pair, value),
            "cached" => stats.cached = field(shard, pair, value),
            "exhausted" => stats.exhausted = field(shard, pair, value),
            "attempts" => stats.attempts = field(shard, pair, value),
            "retries" => stats.retries = field(shard, pair, value),
            "wall_s" => stats.wall_s = field(shard, pair, value),
            other => fail(format!("shard {shard}: unknown stats field `{other}`")),
        }
    }
    stats
}

fn run_parent(
    store: &str,
    params: &Params,
    jobs: usize,
    base_timeout: Duration,
    rungs: usize,
    out: Option<&str>,
) -> ! {
    let start = Instant::now();
    let manifest_path = PathBuf::from(format!("{store}.manifest"));
    let resumed = manifest_path.exists();
    let classes = if resumed {
        eprintln!("warm: resuming from manifest {}", manifest_path.display());
        parse_manifest(&manifest_path, params)
    } else {
        let classes = sample_classes(params);
        write_manifest(&manifest_path, &render_manifest(params, &classes)).unwrap_or_else(|e| {
            fail(format!("cannot write manifest {}: {e}", manifest_path.display()))
        });
        classes
    };

    // One OS process per shard, all in flight at once.
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| fail(format!("cannot locate the warm binary: {e}")));
    let mut children = Vec::new();
    for shard in 0..params.shards {
        let child = Command::new(&exe)
            .arg("--child-shard")
            .arg(shard.to_string())
            .arg("--manifest")
            .arg(&manifest_path)
            .arg("--store")
            .arg(store)
            .arg("--shards")
            .arg(params.shards.to_string())
            .arg("--seed")
            .arg(params.seed.to_string())
            .arg("--sample5")
            .arg(params.sample5.to_string())
            .arg("--sample6")
            .arg(params.sample6.to_string())
            .arg("--jobs")
            .arg(jobs.to_string())
            .arg("--timeout")
            .arg(base_timeout.as_secs_f64().to_string())
            .arg("--retries")
            .arg(rungs.to_string())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| fail(format!("cannot spawn shard {shard}: {e}")));
        children.push((shard, child));
    }
    let mut per_shard = Vec::new();
    let mut failed = false;
    for (shard, child) in children {
        let output = child
            .wait_with_output()
            .unwrap_or_else(|e| fail(format!("shard {shard} did not report: {e}")));
        if !output.status.success() {
            eprintln!("warm: shard {shard} failed ({}); its journal survives", output.status);
            failed = true;
            continue;
        }
        per_shard.push(parse_stats(&String::from_utf8_lossy(&output.stdout), shard));
    }
    if failed {
        fail(format!(
            "one or more shards failed; re-run the same command to resume from \
             {} and the surviving shard journals",
            manifest_path.display()
        ));
    }

    // Fold the shard snapshots into the single merged v2 snapshot.
    let shard_paths: Vec<PathBuf> = (0..params.shards).map(|i| shard_path(store, i)).collect();
    let merged = Store::merge_files(&shard_paths)
        .unwrap_or_else(|e| fail(format!("shard merge failed: {e}")));
    let merge_records = merged.merged_classes();
    merged
        .save(store)
        .unwrap_or_else(|e| fail(format!("cannot save merged snapshot {store}: {e}")));

    // Verification: the merged snapshot must answer every manifest
    // class without a single fresh synthesis.
    let reloaded =
        Store::load(store).unwrap_or_else(|e| fail(format!("cannot re-load {store}: {e}")));
    let config = SynthesisConfig { jobs: 1, ..SynthesisConfig::default() };
    for c in &classes {
        synthesize_npn_with_store(&c.rep, &config, &reloaded)
            .unwrap_or_else(|e| fail(format!("merged store failed to answer a warmed class: {e}")));
    }
    let misses = reloaded.misses();
    if misses != 0 {
        fail(format!("merged store re-synthesized {misses} warmed class(es)"));
    }

    let totals = |f: fn(&ShardStats) -> usize| per_shard.iter().map(f).sum::<usize>() as u64;
    let doc = Json::obj(vec![
        ("schema", Json::Str("stp-bench-warm v1".to_string())),
        ("shards", Json::UInt(params.shards as u64)),
        ("jobs", Json::UInt(jobs as u64)),
        ("base_timeout_s", Json::Num(base_timeout.as_secs_f64())),
        ("retry_rungs", Json::UInt(rungs as u64)),
        ("seed", Json::UInt(params.seed)),
        ("sample5", Json::UInt(params.sample5 as u64)),
        ("sample6", Json::UInt(params.sample6 as u64)),
        ("classes", Json::UInt(classes.len() as u64)),
        ("resumed", Json::Bool(resumed)),
        ("solved", Json::UInt(totals(|s| s.solved))),
        ("cached", Json::UInt(totals(|s| s.cached))),
        ("exhausted", Json::UInt(totals(|s| s.exhausted))),
        (
            "per_shard",
            Json::Arr(
                per_shard
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("shard", Json::UInt(s.shard as u64)),
                            ("classes", Json::UInt(s.classes as u64)),
                            ("solved", Json::UInt(s.solved as u64)),
                            ("cached", Json::UInt(s.cached as u64)),
                            ("exhausted", Json::UInt(s.exhausted as u64)),
                            ("attempts", Json::UInt(s.attempts as u64)),
                            ("retries", Json::UInt(s.retries as u64)),
                            ("wall_s", Json::Num(s.wall_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "merge",
            Json::obj(vec![
                ("classes", Json::UInt(merged.len() as u64)),
                ("records", Json::UInt(merge_records)),
            ]),
        ),
        (
            "verify",
            Json::obj(vec![
                ("answered", Json::UInt(classes.len() as u64)),
                ("misses", Json::UInt(misses)),
            ]),
        ),
        ("wall_s", Json::Num((start.elapsed().as_secs_f64() * 1000.0).round() / 1000.0)),
    ]);
    let text = format!("{doc}\n");
    match out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| {
                fail(format!("error writing {path}: {e}"));
            });
            eprintln!("warm: wrote {path}");
        }
        None => print!("{text}"),
    }
    std::process::exit(0);
}

fn main() {
    stp_telemetry::init_from_env();
    let env_jobs = stp_synth::jobs_from_env_checked().unwrap_or_else(|e| flag_error(e));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store: Option<String> = None;
    let mut shards = 3usize;
    let mut jobs = env_jobs;
    let mut timeout = 10.0f64;
    let mut retries = 3usize;
    let mut seed = DEFAULT_SEED;
    let mut sample5 = 8usize;
    let mut sample6 = 4usize;
    let mut out: Option<String> = None;
    let mut child_shard: Option<usize> = None;
    let mut manifest: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                let Some(v) = it.next() else { flag_error("--store expects a path".to_string()) };
                store = Some(v.clone());
            }
            "--shards" => shards = parse_flag_value(a, it.next(), "a shard count ≥ 1"),
            "--jobs" => {
                jobs = parse_flag_value(a, it.next(), "a thread count (0 = one per CPU)");
            }
            "--timeout" => {
                timeout = parse_flag_value(a, it.next(), "a number of seconds");
            }
            "--retries" => retries = parse_flag_value(a, it.next(), "a rung count ≥ 1"),
            "--seed" => seed = parse_flag_value(a, it.next(), "a u64 seed"),
            "--sample5" => sample5 = parse_flag_value(a, it.next(), "an NPN5 class count"),
            "--sample6" => sample6 = parse_flag_value(a, it.next(), "an NPN6 class count"),
            "--out" => {
                let Some(v) = it.next() else { flag_error("--out expects a path".to_string()) };
                out = Some(v.clone());
            }
            "--child-shard" => {
                child_shard = Some(parse_flag_value(a, it.next(), "a shard index"));
            }
            "--manifest" => {
                let Some(v) = it.next() else {
                    flag_error("--manifest expects a path".to_string())
                };
                manifest = Some(v.clone());
            }
            other => flag_error(format!("unknown option `{other}`")),
        }
    }
    if shards == 0 {
        flag_error("--shards expects a shard count ≥ 1".to_string());
    }
    if !timeout.is_finite() || timeout <= 0.0 {
        flag_error("--timeout expects a finite number of seconds > 0".to_string());
    }
    if retries == 0 {
        flag_error("--retries expects a rung count ≥ 1".to_string());
    }
    if sample5 + sample6 == 0 {
        flag_error("the sample is empty: raise --sample5 or --sample6".to_string());
    }
    let Some(store) = store else { flag_error("--store is required".to_string()) };
    let params = Params { shards, seed, sample5, sample6 };
    let base_timeout = Duration::from_secs_f64(timeout);
    match child_shard {
        Some(shard) => {
            let Some(manifest) = manifest else {
                flag_error("--child-shard requires --manifest".to_string())
            };
            if shard >= shards {
                flag_error(format!("--child-shard {shard} out of range for {shards} shard(s)"));
            }
            run_child(
                shard,
                Path::new(&manifest),
                &shard_path(&store, shard),
                &params,
                jobs,
                base_timeout,
                retries,
            )
        }
        None => run_parent(&store, &params, jobs, base_timeout, retries, out.as_deref()),
    }
}
