//! Prints the fence families of Fig. 2 and the valid partial DAGs of
//! Fig. 3.
//!
//! Usage: `fence_census [--max-k <k>] [--dags]`

use stp_fence::{all_fences, dags_for_fence, pruned_fences};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_k = 6usize;
    let show_dags = args.iter().any(|a| a == "--dags");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-k" {
            if let Some(v) = it.next() {
                max_k = v.parse().unwrap_or(max_k);
            }
        }
    }
    for k in 1..=max_k {
        let full = all_fences(k);
        let pruned = pruned_fences(k);
        println!("F_{k}: {} fences, {} after pruning (Fig. 2)", full.len(), pruned.len());
        println!("  full family:   {}", full.iter().map(|f| f.to_string()).collect::<Vec<_>>().join(" "));
        println!("  pruned family: {}", pruned.iter().map(|f| f.to_string()).collect::<Vec<_>>().join(" "));
        if show_dags || k == 3 {
            let mut total = 0usize;
            for fence in &pruned {
                let dags = dags_for_fence(fence);
                println!("  fence {fence}: {} valid DAG(s) (Fig. 3)", dags.len());
                for dag in &dags {
                    for line in dag.to_string().lines() {
                        println!("    {line}");
                    }
                    println!("    --");
                    total += 1;
                }
            }
            println!("  total valid DAGs over pruned F_{k}: {total}");
        }
    }
}
