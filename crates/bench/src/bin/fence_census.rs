//! Prints the fence families of Fig. 2 and the valid partial DAGs of
//! Fig. 3.
//!
//! Usage: `fence_census [--max-k <k>] [--dags] [--log <level>]
//!                      [--profile] [--profile-folded <path>]`
//!
//! Output goes through the telemetry reporter: the census itself is
//! emitted at `info` (the default level, so output is unchanged unless
//! the level is lowered), and `--log off` silences it entirely.
//! `--profile` prints the aggregated span profile (per fence size `k`)
//! to stderr after the census; `--profile-folded <path>` writes
//! flamegraph-compatible folded stacks.

use stp_fence::{all_fences, dags_for_fence, pruned_fences};
use stp_telemetry::report;

// With --features alloc-profile, heap traffic is attributed to the
// innermost open profile span (an extra bytes column under --profile).
#[cfg(feature = "alloc-profile")]
stp_telemetry::install_alloc_profiler!();

/// A malformed or missing flag value: report it and exit 2, so scripts
/// can tell usage errors from census failures (exit 1).
fn flag_error(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn main() {
    stp_telemetry::init_from_env();
    // fence_census itself is single-threaded, but a malformed STP_JOBS
    // is still a usage error: every bin in the workspace diagnoses it
    // up front rather than letting one tool silently accept what the
    // others reject.
    if let Err(message) = stp_synth::jobs_from_env_checked() {
        flag_error(message);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_k = 6usize;
    let mut show_dags = false;
    let mut folded: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dags" => show_dags = true,
            "--profile" => stp_telemetry::profile::set_enabled(true),
            "--profile-folded" => {
                let Some(path) = it.next() else {
                    flag_error("--profile-folded expects a path".to_string());
                };
                folded = Some(path.clone());
                stp_telemetry::profile::set_enabled(true);
            }
            "--max-k" => {
                let Some(raw) = it.next() else {
                    flag_error("--max-k expects a fence size".to_string());
                };
                max_k = raw.parse().unwrap_or_else(|_| {
                    flag_error(format!("--max-k expects a fence size, got `{raw}`"))
                });
            }
            "--log" => {
                let Some(level) = it.next().and_then(|v| stp_telemetry::Level::parse(v)) else {
                    flag_error("--log expects off|error|warn|info|debug|trace".to_string());
                };
                stp_telemetry::set_level(level);
            }
            other => {
                flag_error(format!("unknown option `{other}`"));
            }
        }
    }
    for k in 1..=max_k {
        let _k = stp_telemetry::span!("census.k{}", k);
        let full = all_fences(k);
        let pruned = pruned_fences(k);
        report!("F_{k}: {} fences, {} after pruning (Fig. 2)", full.len(), pruned.len());
        report!(
            "  full family:   {}",
            full.iter().map(|f| f.to_string()).collect::<Vec<_>>().join(" ")
        );
        report!(
            "  pruned family: {}",
            pruned.iter().map(|f| f.to_string()).collect::<Vec<_>>().join(" ")
        );
        if show_dags || k == 3 {
            let mut total = 0usize;
            for fence in &pruned {
                let dags = dags_for_fence(fence);
                report!("  fence {fence}: {} valid DAG(s) (Fig. 3)", dags.len());
                for dag in &dags {
                    for line in dag.to_string().lines() {
                        report!("    {line}");
                    }
                    report!("    --");
                    total += 1;
                }
            }
            report!("  total valid DAGs over pruned F_{k}: {total}");
        }
    }
    if let Some(tree) = stp_telemetry::profile::finish(folded.as_deref().map(std::path::Path::new))
    {
        eprint!("{}", tree.render_text());
    }
}
