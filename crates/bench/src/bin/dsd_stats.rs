//! Prints the DSD composition of 4-cut functions in benchmark circuits.
//!
//! The paper's premise is that exact synthesis lives or dies on
//! DSD-structured functions because those dominate the small cut
//! functions real optimizers extract (FDSD "occur frequently in
//! practical synthesis and technology mapping applications", §IV). This
//! binary measures that claim on this workspace's own circuits: it
//! enumerates every 4-feasible cut, classifies the cut function as
//! trivial / fully-DSD / partially-or-non-DSD, and prints the
//! distribution.
//!
//! Usage: `dsd_stats [--log <level>]`
//!
//! Output goes through the telemetry reporter at `info` (the default
//! level, so output is unchanged by default); `--log off` silences it.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stp_network::{
    cut_function, enumerate_cuts, equality_comparator, mux_tree, random_network,
    ripple_carry_adder, ripple_carry_adder_sop, Network,
};
use stp_telemetry::report;
use stp_tt::{is_full_dsd, project_to_vars};

fn census(name: &str, net: &Network) {
    let cuts = enumerate_cuts(net, 4, 8);
    let (mut trivial, mut full, mut partial) = (0usize, 0usize, 0usize);
    for s in 0..net.num_signals() {
        if !net.is_gate(s) {
            continue;
        }
        for cut in &cuts.cuts[s] {
            if cut.leaves.len() < 2 {
                continue;
            }
            let f = match cut_function(net, s, cut) {
                Ok(f) => f,
                Err(_) => continue,
            };
            if f.is_trivial() {
                trivial += 1;
            } else {
                let sup = f.support();
                let reduced = project_to_vars(&f, &sup);
                if is_full_dsd(&reduced) {
                    full += 1;
                } else {
                    partial += 1;
                }
            }
        }
    }
    let total = trivial + full + partial;
    if total == 0 {
        report!("{name:<24} (no cuts)");
        return;
    }
    report!(
        "{name:<24} {total:>5} cuts | trivial {:>5.1}% | full-DSD {:>5.1}% | prime/partial {:>5.1}%",
        100.0 * trivial as f64 / total as f64,
        100.0 * full as f64 / total as f64,
        100.0 * partial as f64 / total as f64,
    );
}

fn main() {
    stp_telemetry::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--log" {
            if let Some(level) = it.next().and_then(|v| stp_telemetry::Level::parse(v)) {
                stp_telemetry::set_level(level);
            }
        }
    }
    report!("DSD composition of 4-cut functions (the paper's FDSD-dominance premise):\n");
    census("ripple_carry_adder(4)", &ripple_carry_adder(4).expect("construction"));
    census("adder_sop(3)", &ripple_carry_adder_sop(3).expect("construction"));
    census("equality_comparator(4)", &equality_comparator(4).expect("construction"));
    census("mux_tree(3)", &mux_tree(3).expect("construction"));
    let mut rng = SmallRng::seed_from_u64(7);
    census("random_network(8,40)", &random_network(8, 40, 4, &mut rng).expect("construction"));
    report!(
        "\nfully-DSD cut functions are where the STP factorization walks straight\n\
         down the structure — the suites FDSD6/FDSD8 model exactly this regime."
    );
}
