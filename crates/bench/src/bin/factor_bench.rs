//! Factorization-kernel perf baseline: emits `BENCH_factor.json`.
//!
//! Usage: `factor_bench [--jobs <n>] [--timeout <seconds>] [--out <path>]
//!                      [--slice] [--profile] [--profile-folded <path>]`
//!
//! Runs the STP engine **cold** (store-free, straight [`synthesize`]
//! per instance) over four workloads — the deterministic NPN4 24-class
//! slice used by the CI drift gate, the full 222-class NPN4 suite, the
//! quick-profile FDSD6 suite, and the 9–12-input WIDE suite that pins
//! the multi-word fast path — and reports per-suite wall-clock
//! plus the `factor.*` counter deltas. The counter totals at `--jobs 1`
//! are exact and machine-independent, so the committed
//! `BENCH_factor.json` doubles as a regression baseline: the
//! `factor_baseline` integration test re-runs the slice and fails when
//! the counters drift (wall-clock fields are informational only), and
//! `stpprof --drift` renders the same verdict from two documents.
//!
//! `--slice` restricts the run to the NPN4 slice — the fast way to
//! produce a drift-check candidate in CI. `--profile` aggregates the
//! span profile tree over the whole run and embeds it in the output
//! document (each suite is a subtree, named by the suite);
//! `--profile-folded <path>` additionally writes flamegraph-compatible
//! folded stacks.
//!
//! [`synthesize`]: stp_synth::synthesize

use std::time::{Duration, Instant};

use stp_bench::profdiff::PINNED_COUNTERS;
use stp_bench::{fdsd, npn4, run_suite, wide, Algorithm, Suite};
use stp_telemetry::Json;

// With --features alloc-profile, heap traffic is attributed to the
// innermost open profile span (an extra bytes column under --profile).
#[cfg(feature = "alloc-profile")]
stp_telemetry::install_alloc_profiler!();

/// The NPN4 prefix used by the CI drift gate — the same slice as the
/// `determinism` integration test, fast enough for debug-build CI.
fn npn4_slice() -> Suite {
    let mut suite = npn4();
    suite.functions.truncate(24);
    Suite { name: "NPN4[0..24]", functions: suite.functions }
}

fn measure(suite: &Suite, timeout: Duration, jobs: usize) -> Json {
    let start = Instant::now();
    let report = run_suite(Algorithm::Stp, suite, timeout, jobs);
    let wall = start.elapsed();
    let mut counters: Vec<(String, Json)> = Vec::new();
    for name in PINNED_COUNTERS {
        counters.push((name.to_string(), Json::UInt(*report.counters.get(name).unwrap_or(&0))));
    }
    Json::obj(vec![
        ("suite", Json::Str(suite.name.to_string())),
        ("instances", Json::UInt(suite.functions.len() as u64)),
        ("solved", Json::UInt(report.solved as u64)),
        ("timeouts", Json::UInt(report.timeouts as u64)),
        ("errors", Json::UInt(report.errors as u64)),
        ("wall_s", Json::Num((wall.as_secs_f64() * 1000.0).round() / 1000.0)),
        ("counters", Json::Obj(counters)),
    ])
}

/// A malformed or missing flag value: report it and exit 2, so scripts
/// can tell usage errors from bench failures (exit 1).
fn flag_error(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Parses the value of a `--flag <value>` pair, failing loudly: a
/// missing or unparsable value is an error, never a silent fallback to
/// the default.
fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>, expects: &str) -> T {
    let Some(raw) = value else {
        flag_error(format!("{flag} expects {expects}"));
    };
    raw.parse().unwrap_or_else(|_| flag_error(format!("{flag} expects {expects}, got `{raw}`")))
}

fn main() {
    stp_telemetry::init_from_env();
    // A malformed STP_JOBS is a usage error, diagnosed up front — not a
    // silent fall-back to sequential.
    let env_jobs = stp_synth::jobs_from_env_checked().unwrap_or_else(|e| flag_error(e));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = env_jobs;
    let mut timeout = 60.0f64;
    let mut out: Option<String> = None;
    let mut slice_only = false;
    let mut profile = false;
    let mut folded: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = parse_flag_value(a, it.next(), "a thread count (0 = one per CPU)");
            }
            "--timeout" => {
                timeout = parse_flag_value(a, it.next(), "a number of seconds");
            }
            "--out" => {
                let Some(v) = it.next() else {
                    flag_error("--out expects a path".to_string());
                };
                out = Some(v.clone());
            }
            "--slice" => slice_only = true,
            "--profile" => profile = true,
            "--profile-folded" => {
                let Some(v) = it.next() else {
                    flag_error("--profile-folded expects a path".to_string());
                };
                folded = Some(v.clone());
            }
            other => {
                flag_error(format!("unknown option `{other}`"));
            }
        }
    }
    if profile || folded.is_some() {
        stp_telemetry::profile::set_enabled(true);
    }
    let timeout = Duration::from_secs_f64(timeout);
    let all = if slice_only {
        vec![npn4_slice()]
    } else {
        vec![npn4_slice(), npn4(), fdsd(6, 40, 6), wide()]
    };
    let mut suites = Vec::new();
    for suite in all {
        eprintln!("factor_bench: running {} ({} instances)…", suite.name, suite.functions.len());
        suites.push(measure(&suite, timeout, jobs));
    }
    let mut fields = vec![
        ("schema", Json::Str("stp-bench-factor v1".to_string())),
        ("jobs", Json::UInt(jobs as u64)),
        ("timeout_s", Json::Num(timeout.as_secs_f64())),
        ("suites", Json::Arr(suites)),
    ];
    if let Some(tree) = stp_telemetry::profile::finish(folded.as_deref().map(std::path::Path::new))
    {
        fields.push(("profile", tree.to_json()));
    }
    let doc = Json::obj(fields);
    let text = format!("{doc}\n");
    match out {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("error writing {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("factor_bench: wrote {path}");
        }
        None => print!("{text}"),
    }
}
