//! `stpprof` — profile analysis for STP synthesis runs.
//!
//! ```text
//! Usage: stpprof <run>                    render one run's profile tree
//!        stpprof <old> <new>              sorted profile diff (Δtotal)
//!        stpprof --folded <run>           re-emit flamegraph folded stacks
//!        stpprof --drift <baseline.json> <candidate.json>
//!                                         factor_bench counter drift verdict
//! ```
//!
//! `<run>` is either a file containing a `--stats` RunReport line
//! (produced under `--profile`, so the report embeds the profile tree)
//! or a `--trace-json` span trace, which is reconstructed into the same
//! aggregated tree. `--drift` compares the pinned `factor.*` counters
//! of two `factor_bench` documents (both at `--jobs 1`, where the
//! totals are exact and machine-independent) and exits 1 when they
//! moved — the CLI form of the committed `BENCH_factor.json` contract.
//!
//! Exit codes: 0 clean, 1 drift detected or file/parse failure, 2
//! usage error.

use std::process::ExitCode;

use stp_bench::profdiff;
use stp_telemetry::Json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: stpprof <run> | stpprof <old> <new> | stpprof --folded <run> | \
         stpprof --drift <baseline.json> <candidate.json>"
    );
    ExitCode::from(2)
}

fn fail(message: String) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn drift(baseline_path: &str, candidate_path: &str) -> ExitCode {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    match profdiff::bench_drift(&baseline, &candidate) {
        Ok(report) => {
            print!("{}", report.render());
            if report.drifted() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => fail(e),
    }
}

fn main() -> ExitCode {
    stp_telemetry::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        ["--drift", baseline, candidate] => drift(baseline, candidate),
        ["--folded", run] => match profdiff::load_profile(run) {
            Ok(tree) => {
                print!("{}", tree.folded());
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        [run] if !run.starts_with("--") => match profdiff::load_profile(run) {
            Ok(tree) => {
                print!("{}", tree.render_text());
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        [old, new] if !old.starts_with("--") && !new.starts_with("--") => {
            match (profdiff::load_profile(old), profdiff::load_profile(new)) {
                (Ok(a), Ok(b)) => {
                    print!("{}", profdiff::render_diff(&profdiff::diff(&a, &b)));
                    ExitCode::SUCCESS
                }
                (Err(e), _) | (_, Err(e)) => fail(e),
            }
        }
        _ => usage(),
    }
}
