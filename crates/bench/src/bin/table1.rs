//! Regenerates Table I of the paper.
//!
//! Usage: `table1 [--full] [--timeout <seconds>] [--suite <name>]...
//!                [--jobs <n>] [--retries <n>] [--store <path>]
//!                [--warm-npn4] [--counters] [--log <level>]
//!                [--profile] [--profile-folded <path>]`
//!
//! The default (quick) profile uses reduced instance counts and a short
//! per-instance timeout so the whole table runs in minutes; `--full`
//! switches to the paper's counts (222/1000/100/1000/100) and a
//! 180-second timeout. `--jobs` sets the STP engine's worker-thread
//! count (`0` = one per CPU; default from `STP_JOBS`, else 1) — the
//! CNF baselines are single-threaded and ignore it. `--retries <n>`
//! offers each timed-out instance a doubling budget ladder of `n`
//! rungs (`t, 2t, 4t, …`); with a store attached the ladder composes
//! with the exhausted-budget cache so each rung re-searches at most
//! once. `--store <path>` opens the persistent NPN solution store
//! (snapshot plus crash journal) and saves it back after the run;
//! `--warm-npn4` pre-synthesizes every NPN class of arity ≤ 4 first,
//! so the STP column of the NPN4 suite answers entirely from the store
//! (the baselines never use it). `--counters` appends the aggregated
//! telemetry counters per (suite, algorithm) cell; `--log` sets the
//! stderr diagnostic level (also via `STP_LOG`). `--profile` prints
//! the aggregated span profile tree (one subtree per suite) to stderr
//! after the table; `--profile-folded <path>` also writes
//! flamegraph-compatible folded stacks.

use std::time::Duration;

use stp_bench::{
    render_counters, render_headlines, render_table, run_suite_with_retry, Algorithm, RetryPolicy,
    Scale,
};
use stp_store::Store;
use stp_synth::{warm_npn4, SynthesisConfig};

// With --features alloc-profile, heap traffic is attributed to the
// innermost open profile span (an extra bytes column under --profile).
#[cfg(feature = "alloc-profile")]
stp_telemetry::install_alloc_profiler!();

/// A malformed or missing flag value: report it and exit 2, so scripts
/// can tell usage errors from bench failures (exit 1).
fn flag_error(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Parses the value of a `--flag <value>` pair, failing loudly: a
/// missing or unparsable value is an error, never a silent fallback to
/// the default.
fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>, expects: &str) -> T {
    let Some(raw) = value else {
        flag_error(format!("{flag} expects {expects}"));
    };
    raw.parse().unwrap_or_else(|_| flag_error(format!("{flag} expects {expects}, got `{raw}`")))
}

fn main() {
    stp_telemetry::init_from_env();
    // A malformed STP_JOBS is a usage error, diagnosed up front — not a
    // silent fall-back to sequential.
    let env_jobs = stp_synth::jobs_from_env_checked().unwrap_or_else(|e| flag_error(e));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut timeout = if full { 180.0f64 } else { 10.0 };
    let mut only_suites: Vec<String> = Vec::new();
    let mut counters = false;
    let mut jobs = env_jobs;
    let mut retries = 1usize;
    let mut store_path: Option<String> = None;
    let mut warm = false;
    let mut folded: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => {}
            "--profile" => stp_telemetry::profile::set_enabled(true),
            "--profile-folded" => {
                let Some(path) = it.next() else {
                    flag_error("--profile-folded expects a path".to_string());
                };
                folded = Some(path.clone());
                stp_telemetry::profile::set_enabled(true);
            }
            "--timeout" => {
                timeout = parse_flag_value(a, it.next(), "a number of seconds");
            }
            "--jobs" => {
                jobs = parse_flag_value(a, it.next(), "a thread count (0 = one per CPU)");
            }
            "--retries" => {
                retries = parse_flag_value(a, it.next(), "a positive attempt count");
                if retries == 0 {
                    flag_error("--retries expects a positive attempt count, got `0`".to_string());
                }
            }
            "--suite" => {
                let Some(v) = it.next() else {
                    flag_error("--suite expects a suite name".to_string());
                };
                only_suites.push(v.to_uppercase());
            }
            "--store" => {
                let Some(v) = it.next() else {
                    flag_error("--store expects a path".to_string());
                };
                store_path = Some(v.clone());
            }
            "--warm-npn4" => warm = true,
            "--counters" => counters = true,
            "--log" => {
                let Some(level) = it.next().and_then(|v| stp_telemetry::Level::parse(v)) else {
                    flag_error("--log expects off|error|warn|info|debug|trace".to_string());
                };
                stp_telemetry::set_level(level);
            }
            other => {
                flag_error(format!("unknown option `{other}`"));
            }
        }
    }
    let scale = if full { Scale::Full } else { Scale::Quick };
    let timeout = Duration::from_secs_f64(timeout);
    let policy = RetryPolicy::escalating(timeout, retries);
    // The optional shared NPN solution store for the STP column.
    let store = if store_path.is_some() || warm {
        let store = match &store_path {
            Some(p) => match Store::open(p) {
                Ok(s) => {
                    if !s.is_empty() {
                        eprintln!("store: loaded {} classes from {p}", s.len());
                    }
                    s
                }
                Err(e) => {
                    eprintln!("error loading store: {e}");
                    std::process::exit(1);
                }
            },
            None => Store::new(),
        };
        if warm {
            let config = SynthesisConfig { jobs, ..SynthesisConfig::default() };
            match warm_npn4(&store, &config, Some(timeout)) {
                Ok(r) => eprintln!(
                    "store: warmed {} classes ({} solved, {} cached, {} exhausted)",
                    r.classes, r.solved, r.cached, r.exhausted
                ),
                Err(e) => {
                    eprintln!("error warming store: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(store)
    } else {
        None
    };
    let suites = stp_bench::standard_suites(scale);
    let mut reports = Vec::new();
    for suite in &suites {
        if !only_suites.is_empty() && !only_suites.iter().any(|s| s == suite.name) {
            continue;
        }
        for algo in Algorithm::ALL {
            eprintln!(
                "running {} on {} ({} instances, timeout {:?}, {} attempt(s))…",
                algo.label(),
                suite.name,
                suite.functions.len(),
                timeout,
                policy.budgets.len()
            );
            reports.push(run_suite_with_retry(algo, suite, &policy, jobs, store.as_ref()));
        }
    }
    if let (Some(store), Some(p)) = (&store, &store_path) {
        match store.save(p) {
            Ok(()) => eprintln!("store: saved {} classes to {p}", store.len()),
            Err(e) => {
                eprintln!("error saving store: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{}", render_table(&reports));
    println!("{}", render_headlines(&reports));
    if counters {
        println!("telemetry counters (summed per cell):");
        println!("{}", render_counters(&reports));
    }
    if let Some(tree) = stp_telemetry::profile::finish(folded.as_deref().map(std::path::Path::new))
    {
        eprint!("{}", tree.render_text());
    }
}
